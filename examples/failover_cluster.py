"""Streaming through a replicated delivery tier that loses a server.

Run:  python examples/failover_cluster.py

Starts three segment servers over one catalog and streams through
``FailoverSegmentClient`` — circuit breakers, a global retry budget,
round-robin over healthy replicas. The first session runs against the
healthy tier; then one server is killed and a second session streams
anyway, with the client's metrics showing exactly how the outage was
absorbed (failovers, no degradation).
"""

import tempfile

from repro import (
    ConstantBandwidth,
    IngestConfig,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
    start_server,
)
from repro.obs import MetricsRegistry
from repro.serve import FailoverConfig, serve_session
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

DURATION = 4.0
REPLICAS = 3


def main() -> None:
    db = VisualCloud(tempfile.mkdtemp(prefix="visualcloud-"))
    config = IngestConfig(
        grid=TileGrid(2, 4),
        qualities=(Quality.HIGH, Quality.LOW),
        gop_frames=10,
        fps=10.0,
    )
    frames = synthetic_video(
        "venice", width=128, height=64, fps=10, duration=DURATION, seed=6
    )
    db.ingest("venice", frames, config)

    trace = ViewerPopulation(seed=11).trace(0, DURATION, rate=10.0)
    session = SessionConfig(
        policy=PredictiveTilingPolicy(),
        bandwidth=ConstantBandwidth(150_000),
        predictor="static",
    )

    handles = [start_server(db.storage) for _ in range(REPLICAS)]
    urls = [handle.base_url for handle in handles]
    print("replica tier:")
    for url in urls:
        print(f"  {url}")

    failover = FailoverConfig(failure_threshold=2, reset_timeout=0.5)
    try:
        for label, outage in (("healthy tier", False), ("replica 0 down", True)):
            if outage:
                handles[0].stop()
            registry = MetricsRegistry()
            report = serve_session(
                urls, "venice", trace, session, registry=registry, failover=failover
            )
            counters = registry.snapshot()["counters"]

            def total(name):
                return sum(
                    value
                    for key, value in counters.items()
                    if key.startswith(name)
                )

            events = sum(len(record.events) for record in report.records)
            print(
                f"\n{label}: {report.total_bytes} bytes delivered, "
                f"{report.stall_time:.2f}s stalled, {events} resilience events"
            )
            print(
                f"  failover client: {total('failover.requests'):.0f} requests, "
                f"{total('failover.failovers'):.0f} failovers, "
                f"{total('failover.hedges'):.0f} hedges"
            )
    finally:
        for handle in handles:
            handle.stop()


if __name__ == "__main__":
    main()
