"""The demo floor: many headsets, one server uplink.

Run:  python examples/shared_server.py

Recreates the demonstration's physical setup — several attendees watching
the same 360 video through one server — with the shared-bottleneck
scheduler. The uplink is sized to carry exactly two naive full-quality
streams; the experiment shows how many viewers each delivery strategy
actually sustains on it.
"""

import tempfile

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.bench.harness import format_table
from repro.core.multisession import SharedLinkStreamer
from repro.stream.estimator import HarmonicMeanEstimator
from repro.stream.network import SimulatedLink
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

DURATION = 8.0


def main() -> None:
    db = VisualCloud(tempfile.mkdtemp(prefix="visualcloud-"))
    config = IngestConfig(
        grid=TileGrid(4, 8),
        qualities=(Quality.HIGH, Quality.LOWEST),
        gop_frames=10,
        fps=10.0,
    )
    print("ingesting the demo video ...")
    frames = synthetic_video("venice", width=256, height=128, fps=10, duration=DURATION, seed=12)
    db.ingest("demo", frames, config)

    manifest = db.storage.build_manifest("demo")
    one_stream = sum(
        manifest.full_sphere_size(window, Quality.HIGH)
        for window in range(manifest.window_count)
    ) / manifest.duration
    uplink_rate = 2.0 * one_stream
    print(f"uplink sized for exactly 2 naive streams ({uplink_rate:.0f} B/s)\n")

    population = ViewerPopulation(seed=77)
    streamer = SharedLinkStreamer(db.storage, db.prediction)
    rows = []
    for label, policy_factory, use_estimator in [
        ("naive", NaiveFullQuality, False),
        ("predictive", PredictiveTilingPolicy, True),
    ]:
        for viewers in (2, 4, 6):
            sessions = [
                (
                    "demo",
                    population.trace(user, DURATION, rate=10.0),
                    SessionConfig(
                        policy=policy_factory(),
                        bandwidth=ConstantBandwidth(1e9),  # ignored: shared link rules
                        predictor="static",
                        margin=0,
                        estimator=HarmonicMeanEstimator() if use_estimator else None,
                    ),
                )
                for user in range(viewers)
            ]
            reports = streamer.serve_all(
                sessions, SimulatedLink(ConstantBandwidth(uplink_rate))
            )
            rows.append(
                {
                    "strategy": label,
                    "viewers": viewers,
                    "stall_s/viewer": round(
                        sum(r.stall_time for r in reports) / viewers, 2
                    ),
                    "viewed@top_%": round(
                        100 * sum(r.mean_visible_at_best for r in reports) / viewers, 1
                    ),
                }
            )
    print(format_table("viewers sharing one uplink", rows))
    print(
        "\nReading: naive delivery saturates the link at its design point\n"
        "(2 viewers) and rebuffers hard beyond it; predictive tiling's\n"
        "~2x byte savings carry roughly twice the audience on the same\n"
        "wire, which was the demonstration's operational pitch."
    )


if __name__ == "__main__":
    main()
