"""The demo floor: many headsets, one server uplink.

Run:  python examples/shared_server.py [--duration S] [--metrics-out PATH]

Recreates the demonstration's physical setup — several attendees watching
the same 360 video through one server — with the shared-bottleneck
scheduler. The uplink is sized to carry exactly two naive full-quality
streams; the experiment shows how many viewers each delivery strategy
actually sustains on it.

``--metrics-out`` dumps the database's full metrics snapshot (cache,
storage, per-window streaming, shared-link utilisation) as JSON — the
same registry ``python -m repro metrics`` exports.
"""

import argparse
import json
import tempfile

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.bench.harness import format_table
from repro.stream.estimator import HarmonicMeanEstimator
from repro.stream.network import SimulatedLink
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=8.0, help="video seconds")
    parser.add_argument(
        "--metrics-out", default=None, help="write the metrics snapshot JSON here"
    )
    args = parser.parse_args()
    duration = args.duration

    db = VisualCloud(tempfile.mkdtemp(prefix="visualcloud-"))
    config = IngestConfig(
        grid=TileGrid(4, 8),
        qualities=(Quality.HIGH, Quality.LOWEST),
        gop_frames=10,
        fps=10.0,
    )
    print("ingesting the demo video ...")
    frames = synthetic_video("venice", width=256, height=128, fps=10, duration=duration, seed=12)
    db.ingest("demo", frames, config)

    manifest = db.storage.build_manifest("demo")
    one_stream = sum(
        manifest.full_sphere_size(window, Quality.HIGH)
        for window in range(manifest.window_count)
    ) / manifest.duration
    uplink_rate = 2.0 * one_stream
    print(f"uplink sized for exactly 2 naive streams ({uplink_rate:.0f} B/s)\n")

    population = ViewerPopulation(seed=77)
    rows = []
    for label, policy_factory, use_estimator in [
        ("naive", NaiveFullQuality, False),
        ("predictive", PredictiveTilingPolicy, True),
    ]:
        for viewers in (2, 4, 6):
            sessions = [
                (
                    population.trace(user, duration, rate=10.0),
                    SessionConfig(
                        policy=policy_factory(),
                        bandwidth=ConstantBandwidth(1e9),  # ignored: shared link rules
                        predictor="static",
                        margin=0,
                        estimator=HarmonicMeanEstimator() if use_estimator else None,
                    ),
                )
                for user in range(viewers)
            ]
            reports = db.serve(
                "demo", sessions, link=SimulatedLink(ConstantBandwidth(uplink_rate))
            )
            rows.append(
                {
                    "strategy": label,
                    "viewers": viewers,
                    "stall_s/viewer": round(
                        sum(r.stall_time for r in reports) / viewers, 2
                    ),
                    "viewed@top_%": round(
                        100 * sum(r.mean_visible_at_best for r in reports) / viewers, 1
                    ),
                }
            )
    print(format_table("viewers sharing one uplink", rows))
    print(
        "\nReading: naive delivery saturates the link at its design point\n"
        "(2 viewers) and rebuffers hard beyond it; predictive tiling's\n"
        "~2x byte savings carry roughly twice the audience on the same\n"
        "wire, which was the demonstration's operational pitch."
    )

    snapshot = db.metrics.snapshot()
    windows = db.metrics.counter("stream.windows").total()
    print(
        f"\nmetrics: {windows:.0f} windows served, "
        f"cache hits {db.metrics.counter('cache.hits').total():.0f} / "
        f"misses {db.metrics.counter('cache.misses').total():.0f}, "
        f"link utilisation {db.metrics.gauge('sharedlink.utilisation').value():.2f}"
    )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics snapshot to {args.metrics_out}")


if __name__ == "__main__":
    main()
