"""Head-movement prediction study: who can say where you'll look?

Run:  python examples/prediction_study.py

Generates a viewer population with the stochastic head-movement model,
trains the Markov tile-transition predictor on half of it, and scores
every predictor on the held-out viewers — orientation error by horizon,
and the recall/overhead of the tile sets the streamer would ship.
"""

import math

from repro import TileGrid, Viewport
from repro.bench.harness import format_table
from repro.predict.evaluate import orientation_error_by_horizon, tile_prediction_scores
from repro.predict.predictors import (
    DeadReckoningPredictor,
    LinearRegressionPredictor,
    MarkovPredictor,
    OraclePredictor,
    StaticPredictor,
)
from repro.workloads.users import ViewerPopulation

GRID = TileGrid(4, 8)
HORIZONS = [0.5, 1.0, 2.0]
DURATION = 40.0


def main() -> None:
    population = ViewerPopulation(seed=21)
    train_users, test_users = population.split(8)
    training = [population.trace(user, DURATION, rate=10.0) for user in train_users]
    held_out = [population.trace(user, DURATION, rate=10.0) for user in test_users]

    markov = MarkovPredictor(GRID, step_duration=0.5)
    markov.train(training)
    predictors = [
        ("static", StaticPredictor()),
        ("dead-reckoning", DeadReckoningPredictor()),
        ("linear (ridge)", LinearRegressionPredictor()),
        ("markov (trained)", markov),
    ]

    error_rows = []
    for label, predictor in predictors + [("oracle", OraclePredictor(held_out[0]))]:
        accumulated = {horizon: 0.0 for horizon in HORIZONS}
        for trace in held_out:
            instance = OraclePredictor(trace) if label == "oracle" else predictor
            for horizon, value in orientation_error_by_horizon(
                instance, trace, HORIZONS
            ).items():
                accumulated[horizon] += value / len(held_out)
        error_rows.append(
            {"predictor": label}
            | {
                f"err@{horizon}s (deg)": round(math.degrees(accumulated[horizon]), 1)
                for horizon in HORIZONS
            }
        )
    print(format_table("orientation error by horizon", error_rows))

    tile_rows = []
    viewport = Viewport()
    for label, predictor in predictors:
        margin = 0 if label.startswith("markov") else 1
        recall = precision = tiles = 0.0
        for trace in held_out:
            scores = tile_prediction_scores(
                predictor, trace, GRID, viewport, horizon=1.0, margin=margin
            )
            recall += scores.recall / len(held_out)
            precision += scores.precision / len(held_out)
            tiles += scores.mean_predicted / len(held_out)
        tile_rows.append(
            {
                "predictor": label,
                "recall_%": round(100 * recall, 1),
                "precision_%": round(100 * precision, 1),
                "tiles of 32": round(tiles, 1),
            }
        )
    print()
    print(format_table("tile-set prediction at a 1 s horizon", tile_rows))
    print(
        "\nReading: recall is the fraction of what the viewer actually saw\n"
        "that was shipped in high quality (QoE); tile count is what those\n"
        "bytes cost. The trained Markov model buys the best trade-off;\n"
        "holding the current pose ('static') is a strong baseline, which\n"
        "is why sub-second delivery windows matter."
    )


if __name__ == "__main__":
    main()
