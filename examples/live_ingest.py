"""Live ingest: append arriving GOPs and serve from the growing store.

Run:  python examples/live_ingest.py

Simulates a live 360 camera feed: the producer appends one-second
chunks, each append committing a new immutable version; a viewer joining
mid-stream is served from whatever the latest committed version holds,
while a reader pinned to an old version is unaffected (snapshot
isolation by construction).
"""

import itertools
import os
import tempfile
import time

from repro import (
    ConstantBandwidth,
    IngestConfig,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video


def main() -> None:
    db = VisualCloud(tempfile.mkdtemp(prefix="visualcloud-"))
    # A live feed must keep up with the camera: fan each chunk's
    # (tile, quality) encodes across every core. The committed bytes are
    # identical at any worker count, so this is purely a latency knob.
    workers = os.cpu_count() or 1
    config = IngestConfig(
        grid=TileGrid(2, 4),
        qualities=(Quality.HIGH, Quality.LOWEST),
        gop_frames=10,
        fps=10.0,
        workers=workers,
    )

    # The "camera": an infinite frame source we consume in 1 s chunks.
    camera = iter(
        synthetic_video("timelapse", width=128, height=64, fps=10, duration=30, seed=4)
    )

    def next_second():
        return list(itertools.islice(camera, 10))

    # First chunk creates the video; subsequent chunks append.
    start = time.perf_counter()
    db.ingest("live", next_second(), config, streaming=True)
    print(f"v{db.meta('live').version}: {db.meta('live').duration:.0f}s committed")

    for _ in range(4):
        db.append("live", next_second())
        meta = db.meta("live")
        print(f"v{meta.version}: {meta.duration:.0f}s committed (streaming={meta.streaming})")
    elapsed = time.perf_counter() - start
    ingested_frames = db.meta("live").gop_count * config.gop_frames
    print(
        f"ingest rate: {ingested_frames / elapsed:.1f} frames/sec with "
        f"{workers} encode worker(s) (camera produces 10.0 frames/sec)"
    )

    # A reader pinned to version 2 sees exactly the first two seconds,
    # no matter how far the live edge has advanced.
    pinned = db.meta("live", version=2)
    print(f"pinned reader at v2 sees {pinned.duration:.0f}s; latest has "
          f"{db.meta('live').duration:.0f}s")

    # A viewer joins and streams the latest committed content.
    trace = ViewerPopulation(seed=8).trace(0, duration=5.0, rate=10.0)
    report = db.serve(
        "live",
        (
            trace,
            SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=ConstantBandwidth(15_000),
                predictor="static",
                margin=0,
            ),
        ),
    )
    print(
        f"viewer streamed {len(report.records)} windows, "
        f"{report.total_bytes} bytes, {report.stall_time:.2f}s stalled"
    )


if __name__ == "__main__":
    main()
