"""The demonstration scenario: one viewer, four delivery strategies.

Run:  python examples/predictive_streaming.py

Recreates what a demo attendee saw: the same 360 video streamed to the
same head-movement trace under naive full-quality delivery, un-tiled
adaptive streaming, and VisualCloud's predictive tiling (with and
without the trained Markov predictor) — then prints the bandwidth/QoE
comparison table.
"""

import tempfile

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    UniformAdaptive,
    VisualCloud,
)
from repro.bench.harness import format_table
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

DURATION = 8.0


def main() -> None:
    db = VisualCloud(tempfile.mkdtemp(prefix="visualcloud-"))
    # Delivery unions predictions across each window; tighten the Markov
    # model's probability-coverage target so its hedging stays selective.
    db.prediction.markov_coverage = 0.8
    config = IngestConfig(
        grid=TileGrid(4, 8),
        qualities=(Quality.HIGH, Quality.MEDIUM, Quality.LOWEST),
        gop_frames=10,
        fps=10.0,
    )
    print("ingesting the 'coaster' reference video ...")
    frames = synthetic_video("coaster", width=256, height=128, fps=10, duration=DURATION, seed=2)
    db.ingest("coaster", frames, config)

    # Train the Markov predictor on other viewers of the same content,
    # then evaluate on a held-out viewer.
    population = ViewerPopulation(seed=5)
    train_users, test_users = population.split(26, train_fraction=0.92)
    db.train_predictor(
        "coaster", [population.trace(user, DURATION, rate=10.0) for user in train_users]
    )
    trace = population.trace(test_users[0], DURATION, rate=10.0)

    manifest = db.storage.build_manifest("coaster")
    naive_rate = (
        sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        )
        / manifest.duration
    )
    link = ConstantBandwidth(naive_rate)

    strategies = [
        ("naive", NaiveFullQuality(), "static", 1),
        ("uniform DASH", UniformAdaptive(), "static", 1),
        ("predictive (static)", PredictiveTilingPolicy(), "static", 1),
        ("predictive (markov)", PredictiveTilingPolicy(), "markov", 0),
    ]
    rows = []
    baseline = None
    for label, policy, predictor, margin in strategies:
        report = db.serve(
            "coaster",
            (
                trace,
                SessionConfig(
                    policy=policy,
                    bandwidth=link,
                    predictor=predictor,
                    margin=margin,
                    evaluate_quality=True,
                ),
            ),
        )
        if baseline is None:
            baseline = report
        rows.append(
            {
                "strategy": label,
                "bytes": report.total_bytes,
                "saved_%": round(100 * report.bytes_saved_vs(baseline), 1),
                "viewport_psnr": round(report.mean_viewport_psnr, 1),
                "viewed@top_%": round(100 * report.mean_visible_at_best, 1),
                "stalls_s": round(report.stall_time, 2),
            }
        )
    print(format_table("one viewer, four delivery strategies", rows))
    print(
        "\nReading: 'uniform DASH' matches predictive byte counts only by\n"
        "degrading the pixels the viewer is actually looking at (low\n"
        "viewport PSNR); predictive tiling keeps the viewport at top\n"
        "quality and spends the savings behind the viewer's head."
    )

    metrics = db.metrics
    read = metrics.histogram("storage.read_segment.seconds").summary()
    print(
        f"\nmetrics: {metrics.counter('stream.windows').total():.0f} windows served, "
        f"{metrics.counter('stream.bytes_sent').total():.0f} bytes on the wire; "
        f"cache hit rate "
        f"{100 * db.storage.segment_cache.stats.hit_rate:.1f}%; "
        f"segment read p50 {1e3 * read.get('p50', 0.0):.2f} ms "
        f"over {read['count']} reads"
    )


if __name__ == "__main__":
    main()
