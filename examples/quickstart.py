"""Quickstart: ingest a 360 video, query it, stream it to a viewer.

Run:  python examples/quickstart.py

Walks the three verbs of the VisualCloud API — ingest, execute, serve —
against a procedurally generated 360 clip, printing what happened at
each step. Total runtime is a few seconds.
"""

import os
import tempfile
import time

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    Scan,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.core import udfs
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video


def main() -> None:
    # 1. A VisualCloud database is a directory.
    root = tempfile.mkdtemp(prefix="visualcloud-")
    db = VisualCloud(root)
    print(f"database at {root}")

    # 2. Ingest: segment spatiotemporally (1 s windows x a 4x8 angular
    #    grid) and encode every segment at two quality rungs. Every
    #    (window, tile, quality) segment is an independent closed GOP, so
    #    `workers` fans the encodes across that many processes (the
    #    default, workers=None, uses every core; the bytes written are
    #    identical at any worker count).
    workers = os.cpu_count() or 1
    config = IngestConfig(
        grid=TileGrid(4, 8),
        qualities=(Quality.HIGH, Quality.LOWEST),
        gop_frames=10,
        fps=10.0,
        workers=workers,
    )
    frames = synthetic_video("venice", width=256, height=128, fps=10, duration=6, seed=1)
    start = time.perf_counter()
    meta = db.ingest("venice", frames, config)
    elapsed = time.perf_counter() - start
    stored = db.storage.total_bytes("venice")
    frame_count = meta.gop_count * config.gop_frames
    print(
        f"ingested {meta.duration:.0f}s as {meta.gop_count} windows x "
        f"{meta.grid.tile_count} tiles x {len(meta.qualities)} qualities "
        f"({stored} bytes on disk)"
    )
    print(
        f"  {frame_count / elapsed:.1f} frames/sec with {workers} encode "
        f"worker(s) ({elapsed:.2f}s wall)"
    )

    # 3. Query: declarative pipelines; aligned selections never decode.
    result = db.execute(Scan("venice").select(time=(2.0, 4.0)))
    print(
        f"temporal select executed via {result.stats.operator_paths[-1]} "
        f"(decodes: {result.stats.decode_ops})"
    )
    db.execute(Scan("venice").select(time=(0.0, 2.0)).map(udfs.grayscale).store("gray"))
    print(f"stored query result 'gray'; catalog now holds {db.list_videos()}")

    # 4. Serve: one simulated viewer, naive vs. predictive delivery.
    trace = ViewerPopulation(seed=3).trace(0, duration=6.0, rate=10.0)
    link = ConstantBandwidth(20_000)  # bytes/second
    naive = db.serve(
        "venice", (trace, SessionConfig(policy=NaiveFullQuality(), bandwidth=link))
    )
    predictive = db.serve(
        "venice",
        (
            trace,
            SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=link,
                predictor="static",
                margin=0,
            ),
        ),
    )
    print(
        f"naive delivery:      {naive.total_bytes} bytes, "
        f"{naive.stall_time:.2f}s stalled"
    )
    print(
        f"predictive delivery: {predictive.total_bytes} bytes, "
        f"{predictive.stall_time:.2f}s stalled "
        f"({100 * predictive.bytes_saved_vs(naive):.0f}% saved)"
    )


if __name__ == "__main__":
    main()
