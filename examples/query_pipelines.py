"""Declarative query pipelines and the homomorphic planner.

Run:  python examples/query_pipelines.py

Shows the query layer on three workloads — a watermark overlay, an
angular crop, and a transcode — and prints, for each, which physical
path the planner chose (homomorphic byte moves vs. decode/re-encode).
"""

import math
import tempfile

import numpy as np

from repro import IngestConfig, Quality, Scan, TileGrid, VisualCloud
from repro.core import udfs
from repro.workloads.videos import synthetic_video


def describe(label: str, result) -> None:
    stats = result.stats
    print(f"{label}:")
    print(f"  operator paths : {' -> '.join(stats.operator_paths)}")
    print(
        f"  homomorphic ops: {stats.homomorphic_ops}, decodes: {stats.decode_ops}, "
        f"re-encodes: {stats.encode_ops}"
    )


def main() -> None:
    db = VisualCloud(tempfile.mkdtemp(prefix="visualcloud-"))
    config = IngestConfig(
        grid=TileGrid(2, 4),
        qualities=(Quality.HIGH, Quality.LOW),
        gop_frames=8,
        fps=8.0,
    )
    frames = synthetic_video("venice", width=128, height=64, fps=8, duration=3, seed=6)
    db.ingest("venice", frames, config)

    # 1. Watermark overlay: decode path (a pixel transformation).
    mark = np.full((8, 24), 235, dtype=np.uint8)
    watermark_query = (
        Scan("venice")
        .select(time=(0.0, 2.0))
        .map(udfs.watermark(mark, x0=0, y0=0))
        .store("marked")
    )
    describe("watermark overlay", db.execute(watermark_query))

    # 2. Angular crop on tile boundaries: pure byte moves, no decode.
    hemisphere = Scan("venice").select(theta=(0.0, math.pi), time=(0.0, 3.0))
    describe("hemisphere select (tile-aligned)", db.execute(hemisphere))

    # 3. The same crop off the grid lines: the planner must decode.
    skewed = Scan("venice").select(theta=(0.3, math.pi - 0.3))
    describe("hemisphere select (unaligned)", db.execute(skewed))

    # 4. Mixed-quality union: high-quality front hemisphere over a
    #    low-quality base sphere — the tile substitution the streamer
    #    uses, expressed as a query. Homomorphic end to end.
    base = Scan("venice", quality=Quality.LOW)
    front = Scan("venice", quality=Quality.HIGH).select(theta=(0.0, math.pi / 2))
    describe("mixed-quality union", db.execute(base.union(front).store("hybrid")))

    # 5. Transcode: re-encode the whole video one rung down.
    describe("transcode to LOW", db.execute(Scan("venice").encode(Quality.LOW)))

    print(f"\ncatalog: {db.list_videos()}")


if __name__ == "__main__":
    main()
