"""Projection analysis: why equirectangular storage oversamples the poles.

Run:  python examples/projection_analysis.py

Quantifies the nonuniform-sampling problem the paper's data model calls
out: an equirectangular raster spends the same pixels on every latitude
row even though polar rows cover almost no solid angle. Compares the
sampling-density profile against a cubemap at an equal pixel budget, and
shows where codec bytes go by latitude — plus the tile-popularity heat
map that motivates popularity-planned storage.
"""

import math

import numpy as np

from repro.geometry import (
    CubemapProjection,
    EquirectangularProjection,
    TileGrid,
    Viewport,
)
from repro.core.popularity import tile_popularity
from repro.video.frame import Frame
from repro.video.gop import GopCodec
from repro.video.quality import Quality
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

WIDTH, HEIGHT = 256, 128


def density_profile() -> None:
    projection = EquirectangularProjection(WIDTH, HEIGHT)
    density = projection.sampling_density()
    print("equirectangular sampling density by latitude (equator = 1.0):")
    for row in range(0, HEIGHT, HEIGHT // 8):
        _, phi = projection.pixel_to_angle(0, row)
        latitude = 90 - math.degrees(phi)
        bar = "#" * min(60, int(density[row]))
        print(f"  {latitude:+6.1f} deg  density {density[row]:7.2f}  {bar}")
    # A cubemap with the same pixel budget: 6 * n^2 = W * H.
    face = int(math.sqrt(WIDTH * HEIGHT / 6))
    print(
        f"\ncubemap at the same budget: 6 faces of {face}x{face}; worst/best "
        "texel solid-angle ratio ~ 1.7 (vs unbounded for equirectangular)."
    )


def bytes_by_latitude() -> None:
    frames = list(
        synthetic_video("venice", width=WIDTH, height=HEIGHT, fps=8, duration=1, seed=3)
    )
    grid = TileGrid(4, 8)
    codec = GopCodec(Quality.HIGH)
    print("\nencoded bytes by latitude band (same content everywhere):")
    tile_height = HEIGHT // grid.rows
    tile_width = WIDTH // grid.cols
    for row in range(grid.rows):
        total = 0
        for col in range(grid.cols):
            x0, y0 = col * tile_width, row * tile_height
            tile_frames = [
                frame.crop(x0, y0, x0 + tile_width, y0 + tile_height)
                for frame in frames
            ]
            total += len(codec.encode_gop(tile_frames))
        rect = grid.rect(row, 0)
        band = f"phi {math.degrees(rect.phi0):5.1f}-{math.degrees(rect.phi1):5.1f} deg"
        print(f"  {band}: {total:6d} B for {2 * math.pi:.2f} rad of azimuth")


def popularity_heatmap() -> None:
    grid = TileGrid(4, 8)
    traces = ViewerPopulation(seed=9).traces(8, duration=20.0, rate=5.0)
    popularity = tile_popularity(traces, grid, Viewport())
    shades = " .:-=+*#%@"
    print("\ntile popularity over 8 viewers (rows = latitude, cols = azimuth):")
    for row in range(grid.rows):
        cells = "".join(
            shades[min(len(shades) - 1, int(popularity[row, col] * (len(shades) - 1) + 0.5))]
            for col in range(grid.cols)
        )
        print(f"  |{cells}|")
    print(
        "  equatorial hotspots dominate — the skew popularity-planned\n"
        "  storage (repro.core.popularity) converts into storage savings."
    )


def main() -> None:
    density_profile()
    bytes_by_latitude()
    popularity_heatmap()


if __name__ == "__main__":
    main()
