"""Segment delivery over a real socket.

Run:  python examples/http_server.py

Starts the asyncio segment server on a loopback port, streams three
viewers against it through the unified ``db.serve(..., transport="http")``
entry point, and shows the two properties the wire path promises: the
QoE reports are identical to the simulated path (playback timing stays
on the session's bandwidth model), and the server's metrics registry
records what actually crossed the socket.
"""

import json
import tempfile

from repro import (
    ConstantBandwidth,
    HttpSegmentClient,
    IngestConfig,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
    start_server,
)
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

DURATION = 4.0


def main() -> None:
    db = VisualCloud(tempfile.mkdtemp(prefix="visualcloud-"))
    config = IngestConfig(
        grid=TileGrid(2, 4),
        qualities=(Quality.HIGH, Quality.LOW),
        gop_frames=10,
        fps=10.0,
    )
    frames = synthetic_video("venice", width=128, height=64, fps=10, duration=DURATION, seed=6)
    db.ingest("venice", frames, config)

    population = ViewerPopulation(seed=11)
    sessions = [
        (
            population.trace(user, DURATION, rate=10.0),
            SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=ConstantBandwidth(150_000),
                predictor="static",
            ),
        )
        for user in range(3)
    ]

    # Reference: the same sessions on the simulated path.
    simulated = db.serve("venice", sessions)

    with start_server(db.storage) as handle:
        print(f"segment server listening on {handle.base_url}")
        wire = db.serve(
            "venice", sessions, transport="http", base_url=handle.base_url
        )
        with HttpSegmentClient(handle.base_url) as client:
            snapshot = client.fetch_metrics()

    for index, (sim, http) in enumerate(zip(simulated, wire)):
        same = json.dumps(sim.summary(), sort_keys=True) == json.dumps(
            http.summary(), sort_keys=True
        )
        print(
            f"viewer {index}: {http.total_bytes} bytes over the wire, "
            f"{http.stall_time:.2f}s stalled, "
            f"QoE {'identical to' if same else 'DIVERGED from'} simulation"
        )

    counters = snapshot["counters"]
    requests = sum(
        value for key, value in counters.items() if key.startswith("serve.requests")
    )
    latency = next(
        summary
        for key, summary in snapshot["histograms"].items()
        if key.startswith("serve.request_seconds") and "segment" in key
    )
    print(
        f"\nserver metrics: {requests:.0f} requests, "
        f"{counters.get('serve.bytes_sent', 0):.0f} bytes sent; "
        f"segment latency p50 {1e3 * latency['p50']:.2f} ms, "
        f"p99 {1e3 * latency['p99']:.2f} ms over {latency['count']} requests"
    )


if __name__ == "__main__":
    main()
