"""Command-line interface: ``python -m repro <command>``.

The operational surface a deployment needs:

.. code-block:: text

    python -m repro ingest demo --profile venice --duration 6  --root /tmp/db
    python -m repro ls                 --root /tmp/db
    python -m repro info demo          --root /tmp/db
    python -m repro serve demo --policy predictive --bandwidth 20000
    python -m repro serve demo --transport http     # real-socket delivery
    python -m repro bench-serve --smoke             # wire load harness
    python -m repro bench-serve --smoke --controller  # flash-crowd differential
    python -m repro control http://127.0.0.1:8600   # live control-plane state
    python -m repro query demo --select-time 0:2 --grayscale --store gray
    python -m repro export demo /tmp/demo.mp4
    python -m repro metrics demo --sessions 4 --format prom
    python -m repro drop demo

Every command operates on the database directory given by ``--root``
(default ``./visualcloud-db``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.errors import VisualCloudError
from repro.core.export import export_video, import_video
from repro.core.query import Scan
from repro.core.server import VisualCloud
from repro.core.storage import IngestConfig
from repro.core.streamer import SessionConfig
from repro.core.predictor import PREDICTOR_KINDS
from repro.geometry.grid import TileGrid
from repro.stream.abr import NaiveFullQuality, PredictiveTilingPolicy, UniformAdaptive
from repro.stream.network import ConstantBandwidth
from repro.video.quality import Quality
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import PROFILES, synthetic_video

POLICIES = {
    "naive": NaiveFullQuality,
    "uniform": UniformAdaptive,
    "predictive": PredictiveTilingPolicy,
}


def _parse_grid(text: str) -> TileGrid:
    try:
        rows, cols = (int(part) for part in text.lower().split("x"))
        return TileGrid(rows, cols)
    except (ValueError, TypeError) as error:
        raise argparse.ArgumentTypeError(f"grid must look like 4x8, got {text!r}") from error


def _parse_workers(text: str) -> int:
    try:
        workers = int(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"workers must be an integer, got {text!r}") from error
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {workers}")
    return workers


def _parse_qualities(text: str) -> tuple[Quality, ...]:
    try:
        return tuple(Quality.from_label(label.strip()) for label in text.split(","))
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def _parse_time_range(text: str) -> tuple[float, float]:
    try:
        start, end = (float(part) for part in text.split(":"))
        return (start, end)
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"time range must look like 0:2.5, got {text!r}"
        ) from error


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VisualCloud: a DBMS for virtual-reality (360) video",
    )
    parser.add_argument(
        "--root",
        default="./visualcloud-db",
        help="database directory (default: ./visualcloud-db)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("ls", help="list stored videos")

    ingest = commands.add_parser("ingest", help="ingest a procedural 360 video")
    ingest.add_argument("name")
    ingest.add_argument("--profile", choices=sorted(PROFILES), default="venice")
    ingest.add_argument("--width", type=int, default=256)
    ingest.add_argument("--height", type=int, default=128)
    ingest.add_argument("--fps", type=float, default=10.0)
    ingest.add_argument("--duration", type=float, default=6.0)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--grid", type=_parse_grid, default=TileGrid(4, 8))
    ingest.add_argument(
        "--qualities", type=_parse_qualities, default=(Quality.HIGH, Quality.LOWEST)
    )
    ingest.add_argument("--gop-frames", type=int, default=10)
    ingest.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        help="encode worker processes (default: all cores; 1 = serial)",
    )
    ingest.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="how raw frames reach encode workers: shared-memory blocks, "
        "pickled job payloads, or auto (shm where available)",
    )

    info = commands.add_parser("info", help="show a video's metadata")
    info.add_argument("name")
    info.add_argument("--version", type=int, default=None)

    serve = commands.add_parser(
        "serve", help="stream to a viewer (simulated link or real HTTP socket)"
    )
    serve.add_argument("name")
    serve.add_argument("--policy", choices=sorted(POLICIES), default="predictive")
    serve.add_argument("--predictor", choices=PREDICTOR_KINDS, default="static")
    serve.add_argument("--bandwidth", type=float, default=20_000.0, help="bytes/second")
    serve.add_argument("--margin", type=int, default=0)
    serve.add_argument("--viewer-seed", type=int, default=0)
    serve.add_argument("--probe", action="store_true", help="compute viewport PSNR")
    serve.add_argument(
        "--transport",
        choices=("sim", "http"),
        default="sim",
        help="sim = in-process simulated link; http = fetch segments "
        "over a real socket",
    )
    serve.add_argument(
        "--url",
        default=None,
        help="segment server to stream from (with --transport http); "
        "omitted, a loopback server over --root is started for the session",
    )

    bench_serve = commands.add_parser(
        "bench-serve",
        help="wire delivery load harness: N concurrent localhost sessions "
        "against the asyncio segment server (writes BENCH_serve.json)",
    )
    bench_serve.add_argument("--sessions", type=int, default=32)
    bench_serve.add_argument("--bandwidth", type=float, default=200_000.0)
    bench_serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve from N replicas through the failover client",
    )
    bench_serve.add_argument(
        "--kill-after",
        type=float,
        default=None,
        help="hard-stop replica 0 this many seconds into the run "
        "(needs --replicas >= 2, or --shards with --replication-factor >= 2)",
    )
    bench_serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve from N shard nodes on a consistent-hash ring "
        "(0 disables sharding; mutually exclusive with --replicas > 1)",
    )
    bench_serve.add_argument(
        "--replication-factor",
        type=int,
        default=2,
        help="owners per segment on the shard ring (with --shards)",
    )
    bench_serve.add_argument(
        "--connections",
        type=int,
        default=128,
        help="concurrent sockets in the saturating load phase",
    )
    bench_serve.add_argument(
        "--pipeline",
        type=int,
        default=4,
        help="back-to-back GETs per connection round",
    )
    bench_serve.add_argument(
        "--warmup", type=float, default=1.0, help="seconds excluded from measurement"
    )
    bench_serve.add_argument(
        "--measure-seconds",
        type=float,
        default=5.0,
        help="fixed measurement window per load mode",
    )
    bench_serve.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker count for the multi-process load mode",
    )
    bench_serve.add_argument(
        "--pin-budget",
        type=int,
        default=None,
        help="hot-set pin budget in bytes for the pinned load modes",
    )
    bench_serve.add_argument(
        "--skip-load",
        action="store_true",
        help="run only the QoE phase (no saturating load modes)",
    )
    bench_serve.add_argument(
        "--controller",
        action="store_true",
        help="run the flash-crowd phase: predictive control plane on vs off",
    )
    bench_serve.add_argument("--output", default="BENCH_serve.json")
    bench_serve.add_argument("--smoke", action="store_true")

    control = commands.add_parser(
        "control",
        help="inspect or drive a live segment server's control plane "
        "(GET/POST /control)",
    )
    control.add_argument("url", help="base URL of a running segment server")
    control.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="set the admission ceiling (0 = unlimited)",
    )
    control.add_argument(
        "--pin-budget",
        type=int,
        default=None,
        help="resize the RAM hot-set budget in bytes",
    )
    control.add_argument(
        "--prewarm",
        default=None,
        metavar="VIDEO",
        help="pre-warm VIDEO's segments hottest-first under the pin budget",
    )

    query = commands.add_parser("query", help="run a fixed query pipeline")
    query.add_argument("name")
    query.add_argument("--select-time", type=_parse_time_range, default=None)
    query.add_argument("--grayscale", action="store_true")
    query.add_argument("--invert", action="store_true")
    query.add_argument("--store", default=None, help="store the result under this name")

    vrql = commands.add_parser("vrql", help="run a textual VRQL query")
    vrql.add_argument(
        "text",
        help='e.g. "SCAN(venice) >> SELECT(time=0:2) >> MAP(grayscale) >> STORE(out)"',
    )

    export = commands.add_parser("export", help="flatten one quality to a single file")
    export.add_argument("name")
    export.add_argument("output")
    export.add_argument("--quality", type=Quality.from_label, default=None)

    imported = commands.add_parser("import", help="ingest an exported file")
    imported.add_argument("name")
    imported.add_argument("input")

    drop = commands.add_parser("drop", help="remove a video and its segments")
    drop.add_argument("name")

    vacuum = commands.add_parser(
        "vacuum", help="drop old versions and unreferenced segment files"
    )
    vacuum.add_argument("name")
    vacuum.add_argument("--keep", type=int, default=1, help="versions to retain")

    commands.add_parser("stats", help="catalog and cache statistics")

    fsck = commands.add_parser(
        "fsck",
        help="audit the catalog for crash debris (uncommitted versions, "
        "orphan temp files, damaged segments); exits nonzero if unclean",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="fix what the audit finds: adopt valid marker-less versions, "
        "delete torn ones, sweep orphan temp/segment files",
    )

    scrub = commands.add_parser(
        "scrub",
        help="verify every committed segment's bytes against its content "
        "checksum (bit-rot detection); exits nonzero on any corruption",
    )
    scrub.add_argument(
        "name",
        nargs="?",
        default=None,
        help="restrict the scrub to one video (default: the whole catalog)",
    )

    metrics = commands.add_parser(
        "metrics",
        help="export live metrics (JSON or Prometheus text), optionally after "
        "exercising a multi-session delivery run",
    )
    metrics.add_argument(
        "name",
        nargs="?",
        default=None,
        help="video to stream to --sessions simulated viewers over one shared "
        "link before exporting (omit to export whatever has accrued)",
    )
    metrics.add_argument(
        "--sessions", type=int, default=4, help="simulated viewers (default 4)"
    )
    metrics.add_argument(
        "--bandwidth",
        type=float,
        default=200_000.0,
        help="shared uplink capacity in bytes/second",
    )
    metrics.add_argument(
        "--viewer-seed", type=int, default=0, help="viewer population seed"
    )
    metrics.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        dest="export_format",
        help="json = registry snapshot; prom = Prometheus text exposition",
    )
    metrics.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )

    chaos = commands.add_parser(
        "chaos",
        help="replay a chaos scenario (fault-injected streaming under "
        "invariant checks); exits nonzero on any violation",
    )
    chaos.add_argument("--plan", required=True, help="scenario JSON file")
    chaos.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the scenario's seed (same seed => identical report)",
    )
    chaos.add_argument(
        "--output", default=None, help="write the invariant report JSON here"
    )
    chaos.add_argument(
        "--wire",
        action="store_true",
        help="force wire mode: replay over real sockets through the "
        "fault-injecting proxy and the failover client",
    )

    return parser


def _command_ls(db: VisualCloud, args) -> None:
    videos = db.list_videos()
    if not videos:
        print("(no videos)")
        return
    for name in videos:
        meta = db.meta(name)
        print(
            f"{name}  v{meta.version}  {meta.duration:.1f}s  "
            f"{meta.width}x{meta.height}@{meta.fps:g}fps  "
            f"grid {meta.grid.rows}x{meta.grid.cols}  "
            f"ladder [{', '.join(quality.label for quality in meta.qualities)}]"
        )


def _command_ingest(db: VisualCloud, args) -> None:
    config = IngestConfig(
        grid=args.grid,
        qualities=args.qualities,
        gop_frames=args.gop_frames,
        fps=args.fps,
        workers=args.workers,
        transport=args.transport,
    )
    frames = synthetic_video(
        args.profile,
        width=args.width,
        height=args.height,
        fps=args.fps,
        duration=args.duration,
        seed=args.seed,
    )
    meta = db.ingest(args.name, frames, config)
    print(
        f"ingested {args.name!r}: {meta.gop_count} windows, "
        f"{db.storage.total_bytes(args.name)} bytes stored"
    )


def _command_info(db: VisualCloud, args) -> None:
    meta = db.meta(args.name, args.version)
    print(f"name        : {meta.name}")
    print(f"version     : {meta.version} (streaming={meta.streaming})")
    print(f"dimensions  : {meta.width}x{meta.height} @ {meta.fps:g} fps")
    print(f"projection  : {meta.projection}")
    print(f"duration    : {meta.duration:.2f}s in {meta.gop_count} windows")
    print(f"grid        : {meta.grid.rows}x{meta.grid.cols} tiles")
    print(f"ladder      : {', '.join(quality.label for quality in meta.qualities)}")
    print(f"segments    : {len(meta.entries)}")
    print(f"stored bytes: {db.storage.total_bytes(args.name, args.version)}")


def _command_serve(db: VisualCloud, args) -> None:
    meta = db.meta(args.name)
    trace = ViewerPopulation(seed=args.viewer_seed).trace(
        0, duration=meta.duration, rate=10.0
    )
    config = SessionConfig(
        policy=POLICIES[args.policy](),
        bandwidth=ConstantBandwidth(args.bandwidth),
        predictor=args.predictor,
        margin=args.margin,
        evaluate_quality=args.probe,
    )
    from repro.control import ClusterConfig

    if args.transport == "http":
        if args.probe:
            raise VisualCloudError("--probe needs decoded access; not available over http")
        if args.url is not None:
            report = db.serve(
                args.name,
                (trace, config),
                cluster=ClusterConfig(transport="http", base_url=args.url),
            )
        else:
            from repro.serve import start_server

            with start_server(db.storage) as handle:
                print(f"(loopback segment server at {handle.base_url})")
                report = db.serve(
                    args.name,
                    (trace, config),
                    cluster=ClusterConfig(
                        transport="http", base_url=handle.base_url
                    ),
                )
    else:
        report = db.serve(args.name, (trace, config), cluster=ClusterConfig())
    for key, value in report.summary().items():
        print(f"{key:>18}: {value}")


def _command_query(db: VisualCloud, args) -> None:
    from repro.core import udfs

    expr = Scan(args.name)
    if args.select_time is not None:
        expr = expr.select(time=args.select_time)
    if args.grayscale:
        expr = expr.map(udfs.grayscale)
    if args.invert:
        expr = expr.map(udfs.invert)
    if args.store:
        expr = expr.store(args.store)
    result = db.execute(expr)
    print("plan:", " -> ".join(result.stats.operator_paths))
    print(
        f"homomorphic ops: {result.stats.homomorphic_ops}, "
        f"decodes: {result.stats.decode_ops}, re-encodes: {result.stats.encode_ops}"
    )
    if args.store:
        print(f"stored as {args.store!r}")


def _command_vrql(db: VisualCloud, args) -> None:
    result = db.vrql(args.text)
    print("plan:", " -> ".join(result.stats.operator_paths))
    print(
        f"homomorphic ops: {result.stats.homomorphic_ops}, "
        f"decodes: {result.stats.decode_ops}, re-encodes: {result.stats.encode_ops}"
    )


def _command_export(db: VisualCloud, args) -> None:
    written = export_video(db.storage, args.name, args.output, quality=args.quality)
    print(f"wrote {written} bytes to {args.output}")


def _command_import(db: VisualCloud, args) -> None:
    meta = import_video(db.storage, args.name, args.input)
    print(f"imported {args.name!r}: {meta.gop_count} windows at v{meta.version}")


def _command_drop(db: VisualCloud, args) -> None:
    db.drop(args.name)
    print(f"dropped {args.name!r}")


def _command_vacuum(db: VisualCloud, args) -> None:
    files, freed = db.vacuum(args.name, keep_versions=args.keep)
    print(f"vacuumed {args.name!r}: removed {files} files, freed {freed} bytes")


def _command_metrics(db: VisualCloud, args) -> None:
    import json

    from repro.stream.estimator import HarmonicMeanEstimator
    from repro.stream.network import SimulatedLink

    if args.name is not None:
        meta = db.meta(args.name)
        population = ViewerPopulation(seed=args.viewer_seed)
        sessions = []
        for viewer in range(max(1, args.sessions)):
            trace = population.trace(viewer, duration=meta.duration, rate=10.0)
            config = SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=ConstantBandwidth(args.bandwidth),
                predictor="static",
                estimator=HarmonicMeanEstimator(),
            )
            sessions.append((trace, config))
        link = SimulatedLink(ConstantBandwidth(args.bandwidth))
        db.serve(args.name, sessions, link=link)

    if args.export_format == "prom":
        rendered = db.metrics.to_prometheus()
    else:
        rendered = json.dumps(db.metrics.snapshot(), indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote metrics to {args.output}")
    else:
        print(rendered)


def _command_bench_serve(db: VisualCloud, args) -> int:
    # Self-provisioning like the other bench harnesses: the load run
    # ingests into a throwaway store; --root is left untouched.
    from repro.bench.serve import main as bench_serve_main

    argv = [
        "--sessions", str(args.sessions),
        "--bandwidth", str(args.bandwidth),
        "--replicas", str(args.replicas),
        "--connections", str(args.connections),
        "--pipeline", str(args.pipeline),
        "--warmup", str(args.warmup),
        "--measure-seconds", str(args.measure_seconds),
        "--output", args.output,
    ]
    if args.kill_after is not None:
        argv += ["--kill-after", str(args.kill_after)]
    if args.shards:
        argv += [
            "--shards", str(args.shards),
            "--replication-factor", str(args.replication_factor),
        ]
    if args.processes is not None:
        argv += ["--processes", str(args.processes)]
    if args.pin_budget is not None:
        argv += ["--pin-budget", str(args.pin_budget)]
    if args.skip_load:
        argv.append("--skip-load")
    if args.controller:
        argv.append("--controller")
    if args.smoke:
        argv.append("--smoke")
    return bench_serve_main(argv)


def _command_control(db: VisualCloud, args) -> int:
    """Operate a live server's control plane over its HTTP endpoints.

    With no action flags, prints the current ``GET /control`` state.
    Actions are versioned: each one reads the server's active plan
    version and submits version+1, so a concurrent controller's newer
    plan makes the CLI's request fail with 409 instead of silently
    rolling the tier back.
    """
    import json

    from repro.serve.client import HttpSegmentClient

    with HttpSegmentClient(args.url) as client:
        state = client.fetch_control()
        actions = [args.max_inflight, args.pin_budget, args.prewarm]
        if all(value is None for value in actions):
            print(json.dumps(state, indent=2, sort_keys=True))
            return 0
        version = int(state["version"]) + 1
        if args.prewarm is not None or args.pin_budget is not None:
            payload: dict = {"version": version, "prewarm": []}
            if args.pin_budget is not None:
                payload["pin_budget_bytes"] = args.pin_budget
            if args.prewarm is not None:
                from repro.control import default_segment_weights

                manifest = client.fetch_manifest(args.prewarm)
                weights = default_segment_weights(manifest)
                ranked = sorted(
                    weights, key=lambda key: (-weights[key], key.to_path())
                )
                payload["prewarm"] = [
                    [
                        f"/segment/{args.prewarm}/{key.to_path()}",
                        max(1, int(1000 * weights[key])),
                    ]
                    for key in ranked
                ]
            result = client.post_control("prewarm", payload)
            print(
                f"v{result['version']}: pinned {result['pinned']} segments "
                f"({result['dropped']} dropped), pin budget "
                f"{result['pin_budget_bytes']} bytes"
            )
            version += 1
        if args.max_inflight is not None:
            ceiling = None if args.max_inflight == 0 else args.max_inflight
            result = client.post_control(
                "limits", {"version": version, "max_inflight": ceiling}
            )
            rendered = "unlimited" if ceiling is None else str(ceiling)
            print(f"v{result['version']}: max_inflight -> {rendered}")
        print(json.dumps(client.fetch_control(), indent=2, sort_keys=True))
    return 0


def _command_chaos(db: VisualCloud, args) -> int:
    # The scenario ingests its own synthetic video into a throwaway
    # directory; the --root database is deliberately left untouched.
    from repro.chaos import Scenario, ScenarioRunner

    scenario = Scenario.load(Path(args.plan), seed=args.seed)
    if args.wire:
        scenario.sessions["mode"] = "wire"
    report = ScenarioRunner(scenario).run()
    rendered = report.dumps()
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)
    failed = [check.name for check in report.checks if not check.ok]
    if failed:
        print(
            f"chaos: scenario {scenario.name!r} (seed {scenario.seed}) VIOLATED: "
            + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos: scenario {scenario.name!r} (seed {scenario.seed}) ok — "
        f"{len(report.checks)} invariants held, "
        f"{len(report.events)} degradation events",
        file=sys.stderr,
    )
    return 0


def _command_fsck(db: VisualCloud, args) -> int:
    report = db.fsck(repair=args.repair)
    print(f"videos checked: {report['videos_checked']}")
    for key in (
        "adopted_versions",
        "rolled_back_versions",
        "dangling_markers",
        "dropped_videos",
        "orphan_tmp",
        "orphan_segments",
    ):
        values = report.get(key, [])
        if values:
            print(f"{key.replace('_', ' ')}: {', '.join(str(v) for v in values)}")
    if report["clean"]:
        print("clean")
        return 0
    if args.repair:
        # Everything fsck reports under --repair it also fixed; the
        # catalog is consistent now even though the audit found debris.
        print("repaired")
        return 0
    print("NOT CLEAN (re-run with --repair to fix)")
    return 1


def _command_scrub(db: VisualCloud, args) -> int:
    report = db.scrub(video=args.name)
    corrupt = report["corrupt"]
    print(
        f"scrubbed {report['segments_checked']} segment files: "
        f"{len(corrupt)} corrupt"
    )
    for item in corrupt:
        print(f"  corrupt: {item}")
    return 0 if not corrupt else 1


def _command_stats(db: VisualCloud, args) -> None:
    snapshot = db.stats()
    for name, info in snapshot["videos"].items():
        print(
            f"{name}: v{info['version']} ({info['versions']} versions), "
            f"{info['duration_s']}s, {info['bytes']} bytes, "
            f"{info['segments']} segments"
        )
    cache = snapshot["cache"]
    if cache is None:
        print("cache: disabled")
    else:
        hit_rate = cache["hit_rate"]
        rendered = "n/a" if hit_rate != hit_rate else f"{100 * hit_rate:.1f}%"
        print(
            f"cache: {cache['entries']} entries, {cache['bytes']}/{cache['capacity']} "
            f"bytes, hit rate {rendered}, {cache['evictions']} evictions"
        )


_COMMANDS = {
    "ls": _command_ls,
    "ingest": _command_ingest,
    "info": _command_info,
    "serve": _command_serve,
    "query": _command_query,
    "vrql": _command_vrql,
    "export": _command_export,
    "import": _command_import,
    "drop": _command_drop,
    "vacuum": _command_vacuum,
    "fsck": _command_fsck,
    "scrub": _command_scrub,
    "stats": _command_stats,
    "metrics": _command_metrics,
    "bench-serve": _command_bench_serve,
    "control": _command_control,
    "chaos": _command_chaos,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    db = VisualCloud(Path(args.root))
    try:
        result = _COMMANDS[args.command](db, args)
    except VisualCloudError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head);
        # that is the consumer's prerogative, not an error.
        return 0
    return int(result or 0)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
