"""Motion-constrained tiles: independently decodable frame subregions.

Each GOP of a 360-degree video is split along the angular tile grid and
every tile is encoded as its own closed GOP. Because the codec's
prediction never crosses tile boundaries (zero-motion residuals), a tile's
bytes can be extracted, replaced, or recombined without touching any other
tile — the *homomorphic* operators (`select`, `union`, `replace`) below
move bytes only and never run the entropy decoder.
"""

from __future__ import annotations

import multiprocessing
import struct
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.geometry.grid import TileGrid
from repro.video.frame import Frame
from repro.video.gop import GopCodec, decode_any_gop
from repro.video.quality import Quality
from repro.video.shmem import (
    GopBlock,
    publish_gop,
    read_tile_frames,
    shared_memory_available,
)

#: Accepted values of the ingest ``transport`` knob. ``auto`` prefers
#: shared memory and falls back to pickling; each explicit choice pins
#: one transport (``shm`` still degrades to pickling, with a warning,
#: where the platform has no shared memory).
TRANSPORTS = ("auto", "shm", "pickle")

TILED_MAGIC = b"VTGP"
_HEADER = struct.Struct(">4sBHHBBH")  # magic, version, width, height, rows, cols, frames
TILED_FORMAT_VERSION = 1


@dataclass
class TiledGop:
    """One GOP's worth of video, tiled: a byte payload per present tile.

    ``payloads`` maps ``(row, col)`` to that tile's encoded GOP bytes.
    Tiles may be encoded at *different* qualities (each payload carries its
    own quality in its GOP header) — that heterogeneity is exactly what the
    predictive streamer produces. Absent tiles decode as flat grey.
    """

    width: int
    height: int
    grid: TileGrid
    frame_count: int
    payloads: dict[tuple[int, int], bytes] = field(default_factory=dict)

    @property
    def tile_width(self) -> int:
        return self.width // self.grid.cols

    @property
    def tile_height(self) -> int:
        return self.height // self.grid.rows

    @property
    def byte_size(self) -> int:
        """Total payload bytes (the quantity bandwidth accounting uses)."""
        return sum(len(data) for data in self.payloads.values())

    def pixel_rect(self, row: int, col: int) -> tuple[int, int, int, int]:
        """Pixel bounds (x0, y0, x1, y1) of a tile within the full frame."""
        self.grid.index_of(row, col)
        return (
            col * self.tile_width,
            row * self.tile_height,
            (col + 1) * self.tile_width,
            (row + 1) * self.tile_height,
        )

    # -- homomorphic operators (byte moves only, no decode) ----------------

    def select(self, tiles: set[tuple[int, int]]) -> "TiledGop":
        """TILESELECT: keep only the named tiles. Pure byte slicing."""
        missing = tiles - set(self.payloads)
        if missing:
            raise KeyError(f"tiles {sorted(missing)} not present in this GOP")
        return TiledGop(
            width=self.width,
            height=self.height,
            grid=self.grid,
            frame_count=self.frame_count,
            payloads={tile: self.payloads[tile] for tile in tiles},
        )

    def union(self, other: "TiledGop") -> "TiledGop":
        """TILEUNION: combine two tile-disjoint GOPs. Pure byte moves."""
        self._check_compatible(other)
        overlap = set(self.payloads) & set(other.payloads)
        if overlap:
            raise ValueError(
                f"tile union requires disjoint tiles; both sides define {sorted(overlap)}"
            )
        merged = dict(self.payloads)
        merged.update(other.payloads)
        return TiledGop(
            width=self.width,
            height=self.height,
            grid=self.grid,
            frame_count=self.frame_count,
            payloads=merged,
        )

    def replace(self, other: "TiledGop") -> "TiledGop":
        """Substitute tiles: ``other``'s payloads win where both exist.

        This is how the streamer swaps a high-quality tile into a low-
        quality base sphere without re-encoding anything.
        """
        self._check_compatible(other)
        merged = dict(self.payloads)
        merged.update(other.payloads)
        return TiledGop(
            width=self.width,
            height=self.height,
            grid=self.grid,
            frame_count=self.frame_count,
            payloads=merged,
        )

    @classmethod
    def concat(cls, windows: list["TiledGop"]) -> "TiledGop":
        """Temporally concatenate windows into one — homomorphically.

        Every window must share layout and tile set; each tile's payloads
        are merged with :func:`repro.video.gop.merge_gops` (byte-level
        framing only, no decode). The temporal dual of :meth:`union`.
        """
        from repro.video.gop import merge_gops

        if not windows:
            raise ValueError("cannot concatenate zero windows")
        first = windows[0]
        tiles = set(first.payloads)
        for index, window in enumerate(windows[1:], 1):
            if (window.width, window.height, window.grid) != (
                first.width,
                first.height,
                first.grid,
            ):
                raise ValueError(f"window {index} has a different layout than window 0")
            if set(window.payloads) != tiles:
                raise ValueError(f"window {index} has a different tile set than window 0")
        return cls(
            width=first.width,
            height=first.height,
            grid=first.grid,
            frame_count=sum(window.frame_count for window in windows),
            payloads={
                tile: merge_gops([window.payloads[tile] for window in windows])
                for tile in tiles
            },
        )

    def _check_compatible(self, other: "TiledGop") -> None:
        if (self.width, self.height, self.grid, self.frame_count) != (
            other.width,
            other.height,
            other.grid,
            other.frame_count,
        ):
            raise ValueError(
                "tiled GOPs are not layout-compatible: "
                f"{(self.width, self.height, self.grid, self.frame_count)} vs "
                f"{(other.width, other.height, other.grid, other.frame_count)}"
            )

    # -- serialisation ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise: header, tile index (offset/size per grid cell), data.

        Absent tiles get a zero-size index entry. The index is what makes
        byte-level tile extraction possible on the wire format too.
        """
        chunks: list[bytes] = []
        index_entries: list[tuple[int, int]] = []
        cursor = 0
        for tile in self.grid.tiles():
            payload = self.payloads.get(tile, b"")
            index_entries.append((cursor, len(payload)))
            chunks.append(payload)
            cursor += len(payload)
        header = _HEADER.pack(
            TILED_MAGIC,
            TILED_FORMAT_VERSION,
            self.width,
            self.height,
            self.grid.rows,
            self.grid.cols,
            self.frame_count,
        )
        index = b"".join(struct.pack(">II", offset, size) for offset, size in index_entries)
        return header + index + b"".join(chunks)

    @classmethod
    def from_bytes(cls, data: bytes) -> "TiledGop":
        """Parse bytes produced by :meth:`to_bytes` (payloads not decoded)."""
        if len(data) < _HEADER.size:
            raise ValueError("truncated tiled GOP (header)")
        magic, version, width, height, rows, cols, frame_count = _HEADER.unpack_from(data)
        if magic != TILED_MAGIC:
            raise ValueError(f"bad tiled-GOP magic {magic!r}")
        if version != TILED_FORMAT_VERSION:
            raise ValueError(f"unsupported tiled-GOP version {version}")
        grid = TileGrid(rows, cols)
        index_size = grid.tile_count * 8
        data_start = _HEADER.size + index_size
        if len(data) < data_start:
            raise ValueError("truncated tiled GOP (index)")
        payloads = {}
        for position, tile in enumerate(grid.tiles()):
            offset, size = struct.unpack_from(">II", data, _HEADER.size + position * 8)
            if size:
                start = data_start + offset
                payloads[tile] = data[start : start + size]
        return cls(width=width, height=height, grid=grid, frame_count=frame_count, payloads=payloads)

    # -- decode path ---------------------------------------------------------

    def decode(self) -> list[Frame]:
        """Decode all present tiles and composite them into full frames.

        Absent tiles are rendered flat grey — visually obvious, which is
        deliberate: a delivery bug should look like a bug.
        """
        frames = [
            Frame.blank(self.width, self.height, luma=128)
            for _ in range(self.frame_count)
        ]
        for tile, payload in self.payloads.items():
            tile_frames = decode_any_gop(payload)
            if len(tile_frames) != self.frame_count:
                raise ValueError(
                    f"tile {tile} decodes to {len(tile_frames)} frames, "
                    f"container declares {self.frame_count}"
                )
            x0, y0, _, _ = self.pixel_rect(*tile)
            frames = [
                frame.paste(tile_frame, x0, y0)
                for frame, tile_frame in zip(frames, tile_frames)
            ]
        return frames

    def decode_tile(self, row: int, col: int) -> list[Frame]:
        """Decode a single tile's frames (at tile resolution)."""
        if (row, col) not in self.payloads:
            raise KeyError(f"tile ({row}, {col}) not present")
        return decode_any_gop(self.payloads[(row, col)])

    def tile_quality(self, row: int, col: int) -> Quality:
        """The quality a present tile was encoded at (from its GOP header)."""
        from repro.video.gop import _parse_gop_header

        quality, *_ = _parse_gop_header(self.payloads[(row, col)])
        return quality


def _encode_ladder(
    sub_frames: list[Frame], ladder: tuple[Quality, ...]
) -> tuple[bytes, ...]:
    return tuple(GopCodec(quality).encode_gop(sub_frames) for quality in ladder)


def _encode_tile_ladder_job(
    job: tuple[tuple[int, int], tuple[Quality, ...], list[Frame]],
) -> tuple[tuple[int, int], tuple[bytes, ...]]:
    """Pickling transport: encode every rung of one tile's ladder.

    Module-level (and taking one picklable tuple) so a
    :class:`~concurrent.futures.ProcessPoolExecutor` can ship it to worker
    processes. The raw sub-frames cross the process boundary exactly once
    per tile — the whole ladder is encoded in-worker from that one copy.
    Every (tile, quality) segment is an independent closed GOP, so jobs
    share no state and any execution order yields identical bytes.
    """
    tile, ladder, sub_frames = job
    return tile, _encode_ladder(sub_frames, ladder)


def _encode_tile_shm_job(
    job: tuple[tuple[int, int], tuple[Quality, ...], GopBlock, tuple[int, int, int, int]],
) -> tuple[tuple[int, int], tuple[bytes, ...]]:
    """Shared-memory transport: the job carries only a block descriptor
    and a tile rectangle; the worker slices its own sub-frames out of the
    published GOP and encodes the full ladder."""
    tile, ladder, block, rect = job
    return tile, _encode_ladder(read_tile_frames(block, rect), ladder)


_ENCODE_CONTEXT: multiprocessing.context.BaseContext | None = None


def encode_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every encode pool is built from.

    Explicitly ``forkserver`` (preloaded with this module, so numpy and
    the codec are imported once in the server and inherited by every
    forked worker) or ``spawn`` where forkserver is unavailable — never
    the platform default: bare ``fork`` after threads exist, with numpy
    loaded, is a latent deadlock, and the import cost should be paid once
    per pool rather than trusted to luck.
    """
    global _ENCODE_CONTEXT
    if _ENCODE_CONTEXT is None:
        try:
            context = multiprocessing.get_context("forkserver")
            context.set_forkserver_preload(["repro.video.tiles"])
        except ValueError:
            context = multiprocessing.get_context("spawn")
        _ENCODE_CONTEXT = context
    return _ENCODE_CONTEXT


def encode_start_method() -> str:
    """The start method encode pools use (bench/provenance reporting)."""
    return encode_context().get_start_method()


def make_encode_executor(
    workers: int, jobs: int, registry=None
) -> ProcessPoolExecutor | None:
    """A process pool for tile-encode fan-out, or None to run serially.

    Returns None when one worker (or one job) makes a pool pointless —
    the deliberate serial path. When the caller asked for parallelism but
    the platform refuses to spawn workers (restricted sandboxes), the
    fallback is *loud*: a ``RuntimeWarning`` plus an
    ``ingest.pool_fallback`` counter on ``registry``, so a user who asked
    for ``--workers 8`` learns they got 1.
    """
    if workers <= 1 or jobs <= 1:
        return None
    try:
        return ProcessPoolExecutor(
            max_workers=min(workers, jobs), mp_context=encode_context()
        )
    except (OSError, NotImplementedError, ValueError) as error:
        warnings.warn(
            f"requested {workers} encode workers but the platform refused to "
            f"start a process pool ({error!r}); ingest is running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        if registry is not None:
            registry.counter(
                "ingest.pool_fallback",
                "encode pools that could not start and fell back to serial",
            ).inc()
        return None


def _dispatch_chunksize(jobs: int, executor: Executor, workers: int) -> int:
    """Jobs per dispatched chunk, derived from the pool's *actual* size.

    A shared executor may have been built with a different worker count
    than the ``workers`` parameter a caller passes alongside it — sizing
    chunks from the parameter then under- or over-batches. Four chunks
    per worker keeps dispatch overhead amortised while still load-
    balancing uneven tiles.
    """
    pool_workers = getattr(executor, "_max_workers", None) or max(workers, 1)
    return max(1, jobs // (4 * pool_workers))


class TiledVideoCodec:
    """Splits GOPs along a tile grid and encodes each tile independently."""

    def __init__(self, grid: TileGrid, width: int, height: int) -> None:
        if width % (grid.cols * 16) or height % (grid.rows * 16):
            raise ValueError(
                f"{width}x{height} does not divide into {grid.rows}x{grid.cols} "
                "tiles of 16px-aligned size"
            )
        self.grid = grid
        self.width = width
        self.height = height
        self.tile_width = width // grid.cols
        self.tile_height = height // grid.rows
        self._codecs: dict[Quality, GopCodec] = {}

    def _codec(self, quality: Quality) -> GopCodec:
        if quality not in self._codecs:
            self._codecs[quality] = GopCodec(quality)
        return self._codecs[quality]

    def encode_gop(
        self,
        frames: list[Frame],
        quality: Quality,
        tiles: set[tuple[int, int]] | None = None,
        workers: int = 1,
        executor: Executor | None = None,
    ) -> TiledGop:
        """Encode one GOP at a single quality, optionally only some tiles."""
        quality_map = {
            tile: quality for tile in (tiles if tiles is not None else self.grid.tiles())
        }
        return self.encode_gop_mixed(frames, quality_map, workers=workers, executor=executor)

    def encode_gop_mixed(
        self,
        frames: list[Frame],
        quality_map: dict[tuple[int, int], Quality],
        workers: int = 1,
        executor: Executor | None = None,
        transport: str = "auto",
    ) -> TiledGop:
        """Encode one GOP with a per-tile quality assignment.

        This is the delivery-side primitive behind predictive tiling: the
        caller decides one quality per tile. A thin wrapper over
        :meth:`encode_gop_ladders` with singleton ladders.
        """
        ladder_map = {tile: (quality,) for tile, quality in quality_map.items()}
        payloads = self.encode_gop_ladders(
            frames, ladder_map, workers=workers, executor=executor, transport=transport
        )
        return TiledGop(
            width=self.width,
            height=self.height,
            grid=self.grid,
            frame_count=len(frames),
            payloads={
                tile: payloads[(tile, quality)] for tile, quality in quality_map.items()
            },
        )

    def _tile_rect(self, tile: tuple[int, int]) -> tuple[int, int, int, int]:
        row, col = tile
        self.grid.index_of(row, col)
        x0 = col * self.tile_width
        y0 = row * self.tile_height
        return (x0, y0, x0 + self.tile_width, y0 + self.tile_height)

    def encode_gop_ladders(
        self,
        frames: list[Frame],
        ladder_map: dict[tuple[int, int], tuple[Quality, ...]],
        *,
        workers: int = 1,
        executor: Executor | None = None,
        transport: str = "auto",
        registry=None,
    ) -> dict[tuple[tuple[int, int], Quality], bytes]:
        """Encode one GOP at a per-tile quality *ladder* in one fan-out.

        The ingest-side primitive: each job covers all of a tile's rungs,
        so a tile's raw bytes cross the process boundary once — not once
        per quality. With the shared-memory transport (``transport`` in
        ``{"auto", "shm"}`` on a capable platform) they do not cross it at
        all: the GOP's planes are published into one shared block and
        jobs carry only ``(tile, ladder, block descriptor, rect)``. The
        block is unlinked in a ``finally``, so worker failure and
        KeyboardInterrupt cannot leak it. Platforms without shared memory
        degrade to the pickling transport, and from there (no usable
        pool) to the serial path; every path is byte-identical.

        An explicit ``executor`` takes precedence over ``workers`` and is
        not shut down here — ingest passes one shared pool so it is paid
        for once per video, not once per GOP. Dispatch chunking is sized
        from the executor's actual worker count.
        """
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        if not frames:
            raise ValueError("cannot encode an empty GOP")
        for index, frame in enumerate(frames):
            if (frame.width, frame.height) != (self.width, self.height):
                raise ValueError(
                    f"frame {index} is {frame.width}x{frame.height}, "
                    f"codec configured for {self.width}x{self.height}"
                )
        for tile, ladder in ladder_map.items():
            if not ladder:
                raise ValueError(f"tile {tile} has an empty quality ladder")
        rects = {tile: self._tile_rect(tile) for tile in ladder_map}
        own_pool = None
        if executor is None:
            executor = own_pool = make_encode_executor(
                workers, len(ladder_map), registry=registry
            )
        try:
            if executor is None:
                encoded = {}
                for tile, ladder in ladder_map.items():
                    sub_frames = self._crop(frames, rects[tile])
                    encoded[tile] = tuple(
                        self._codec(quality).encode_gop(sub_frames)
                        for quality in ladder
                    )
            else:
                encoded = self._encode_parallel(
                    frames, ladder_map, rects, executor, workers, transport, registry
                )
        finally:
            if own_pool is not None:
                own_pool.shutdown()
        return {
            (tile, quality): payload
            for tile, ladder in ladder_map.items()
            for quality, payload in zip(ladder, encoded[tile])
        }

    @staticmethod
    def _crop(frames: list[Frame], rect: tuple[int, int, int, int]) -> list[Frame]:
        return [frame.crop(*rect) for frame in frames]

    def _encode_parallel(
        self,
        frames: list[Frame],
        ladder_map: dict[tuple[int, int], tuple[Quality, ...]],
        rects: dict[tuple[int, int], tuple[int, int, int, int]],
        executor: Executor,
        workers: int,
        transport: str,
        registry,
    ) -> dict[tuple[int, int], tuple[bytes, ...]]:
        chunk = _dispatch_chunksize(len(ladder_map), executor, workers)
        published = None
        try:
            if transport != "pickle":
                if shared_memory_available():
                    try:
                        published = publish_gop(frames)
                    except OSError as error:
                        self._note_shm_fallback(transport, registry, error)
                else:
                    self._note_shm_fallback(transport, registry, None)
            if published is not None:
                if registry is not None:
                    registry.counter(
                        "ingest.shm_gops", "GOPs shipped via shared memory"
                    ).inc()
                jobs = [
                    (tile, ladder, published.descriptor, rects[tile])
                    for tile, ladder in ladder_map.items()
                ]
                pairs = executor.map(_encode_tile_shm_job, jobs, chunksize=chunk)
            else:
                if registry is not None:
                    registry.counter(
                        "ingest.pickled_gops", "GOPs shipped by pickling raw frames"
                    ).inc()
                jobs = [
                    (tile, ladder, self._crop(frames, rects[tile]))
                    for tile, ladder in ladder_map.items()
                ]
                pairs = executor.map(_encode_tile_ladder_job, jobs, chunksize=chunk)
            # dict() drains the map, so every job is done (or has raised)
            # before the finally below unlinks the block.
            return dict(pairs)
        finally:
            if published is not None:
                published.destroy()

    @staticmethod
    def _note_shm_fallback(transport: str, registry, error: OSError | None) -> None:
        if transport == "shm":
            detail = f" ({error!r})" if error is not None else ""
            warnings.warn(
                "shared-memory transport requested but unavailable"
                f"{detail}; falling back to the pickling transport",
                RuntimeWarning,
                stacklevel=4,
            )
        if registry is not None:
            registry.counter(
                "ingest.shm_fallback",
                "GOPs that fell back from shared memory to pickling",
            ).inc()
