"""Video frames in planar YUV 4:2:0.

Frames are stored the way codecs consume them: a full-resolution luma
plane and quarter-resolution chroma planes, all ``uint8``. RGB exists only
at the edges of the system (synthetic scene generation and final display).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

# BT.601 full-range conversion matrices.
_RGB_TO_YUV = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YUV_TO_RGB = np.array(
    [
        [1.0, 0.0, 1.402],
        [1.0, -0.344136, -0.714136],
        [1.0, 1.772, 0.0],
    ]
)


@dataclass(frozen=True)
class Frame:
    """One video frame: planar YUV 4:2:0, ``uint8``.

    ``y`` has shape ``(height, width)``; ``u`` and ``v`` have shape
    ``(height // 2, width // 2)``. Width and height must be even.
    """

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        height, width = self.y.shape
        if height % 2 or width % 2:
            raise ValueError(f"frame dimensions must be even, got {width}x{height}")
        expected_chroma = (height // 2, width // 2)
        if self.u.shape != expected_chroma or self.v.shape != expected_chroma:
            raise ValueError(
                f"chroma shape {self.u.shape}/{self.v.shape} does not match "
                f"luma {self.y.shape} at 4:2:0 (expected {expected_chroma})"
            )
        for plane in (self.y, self.u, self.v):
            if plane.dtype != np.uint8:
                raise TypeError(f"planes must be uint8, got {plane.dtype}")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def planes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (self.y, self.u, self.v)

    @classmethod
    def blank(cls, width: int, height: int, luma: int = 16) -> "Frame":
        """A uniform grey frame (neutral chroma)."""
        return cls(
            y=np.full((height, width), luma, dtype=np.uint8),
            u=np.full((height // 2, width // 2), 128, dtype=np.uint8),
            v=np.full((height // 2, width // 2), 128, dtype=np.uint8),
        )

    @classmethod
    def from_luma(cls, y: np.ndarray) -> "Frame":
        """A greyscale frame from a luma plane (chroma set to neutral)."""
        y = np.asarray(y)
        if y.dtype != np.uint8:
            y = np.clip(np.round(y), 0, 255).astype(np.uint8)
        height, width = y.shape
        return cls(
            y=y,
            u=np.full((height // 2, width // 2), 128, dtype=np.uint8),
            v=np.full((height // 2, width // 2), 128, dtype=np.uint8),
        )

    @classmethod
    def from_rgb(cls, rgb: np.ndarray) -> "Frame":
        """Convert an ``(h, w, 3)`` RGB array (uint8 or 0-255 float) to 4:2:0."""
        rgb = np.asarray(rgb, dtype=np.float64)
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (h, w, 3) RGB array, got shape {rgb.shape}")
        yuv = rgb @ _RGB_TO_YUV.T
        y = yuv[..., 0]
        u = yuv[..., 1] + 128.0
        v = yuv[..., 2] + 128.0
        # 2x2 box filter then subsample for chroma.
        u_sub = u.reshape(u.shape[0] // 2, 2, u.shape[1] // 2, 2).mean(axis=(1, 3))
        v_sub = v.reshape(v.shape[0] // 2, 2, v.shape[1] // 2, 2).mean(axis=(1, 3))
        to_u8 = lambda plane: np.clip(np.round(plane), 0, 255).astype(np.uint8)
        return cls(y=to_u8(y), u=to_u8(u_sub), v=to_u8(v_sub))

    def to_rgb(self) -> np.ndarray:
        """Convert back to an ``(h, w, 3)`` uint8 RGB array."""
        u_full = np.repeat(np.repeat(self.u, 2, axis=0), 2, axis=1).astype(np.float64)
        v_full = np.repeat(np.repeat(self.v, 2, axis=0), 2, axis=1).astype(np.float64)
        yuv = np.stack([self.y.astype(np.float64), u_full - 128.0, v_full - 128.0], axis=-1)
        rgb = yuv @ _YUV_TO_RGB.T
        return np.clip(np.round(rgb), 0, 255).astype(np.uint8)

    def crop(self, x0: int, y0: int, x1: int, y1: int) -> "Frame":
        """Extract the sub-frame ``[y0:y1, x0:x1]``; bounds must be even."""
        if any(value % 2 for value in (x0, y0, x1, y1)):
            raise ValueError(f"crop bounds must be even for 4:2:0, got {(x0, y0, x1, y1)}")
        if not (0 <= x0 < x1 <= self.width and 0 <= y0 < y1 <= self.height):
            raise ValueError(
                f"crop {(x0, y0, x1, y1)} outside frame {self.width}x{self.height}"
            )
        return Frame(
            y=np.ascontiguousarray(self.y[y0:y1, x0:x1]),
            u=np.ascontiguousarray(self.u[y0 // 2 : y1 // 2, x0 // 2 : x1 // 2]),
            v=np.ascontiguousarray(self.v[y0 // 2 : y1 // 2, x0 // 2 : x1 // 2]),
        )

    def paste(self, other: "Frame", x0: int, y0: int) -> "Frame":
        """A copy of this frame with ``other`` pasted at even offset ``(x0, y0)``."""
        if x0 % 2 or y0 % 2:
            raise ValueError(f"paste offset must be even for 4:2:0, got {(x0, y0)}")
        if x0 + other.width > self.width or y0 + other.height > self.height:
            raise ValueError("pasted frame exceeds target bounds")
        y = self.y.copy()
        u = self.u.copy()
        v = self.v.copy()
        y[y0 : y0 + other.height, x0 : x0 + other.width] = other.y
        u[y0 // 2 : (y0 + other.height) // 2, x0 // 2 : (x0 + other.width) // 2] = other.u
        v[y0 // 2 : (y0 + other.height) // 2, x0 // 2 : (x0 + other.width) // 2] = other.v
        return Frame(y=y, u=u, v=v)

    def equals(self, other: "Frame") -> bool:
        """Exact pixel equality (dataclass ``==`` would compare array identity)."""
        return all(
            np.array_equal(mine, theirs)
            for mine, theirs in zip(self.planes, other.planes)
        )


def downsample_plane(plane: np.ndarray, factor: int) -> np.ndarray:
    """Box-filter downsample of a uint8 plane by an integer factor."""
    if factor < 1:
        raise ValueError(f"downsample factor must be >= 1, got {factor}")
    if factor == 1:
        return plane.copy()
    height, width = plane.shape
    if height % factor or width % factor:
        raise ValueError(f"plane {width}x{height} is not divisible by {factor}")
    reduced = plane.reshape(height // factor, factor, width // factor, factor).mean(
        axis=(1, 3)
    )
    return np.clip(np.round(reduced), 0, 255).astype(np.uint8)


def upsample_plane(plane: np.ndarray, factor: int) -> np.ndarray:
    """Bilinear upsample of a uint8 plane by an integer factor."""
    if factor < 1:
        raise ValueError(f"upsample factor must be >= 1, got {factor}")
    if factor == 1:
        return plane.copy()
    height, width = plane.shape
    y = np.clip((np.arange(height * factor) + 0.5) / factor - 0.5, 0, height - 1)
    x = np.clip((np.arange(width * factor) + 0.5) / factor - 0.5, 0, width - 1)
    y0 = np.floor(y).astype(np.int64)
    x0 = np.floor(x).astype(np.int64)
    y1 = np.minimum(y0 + 1, height - 1)
    x1 = np.minimum(x0 + 1, width - 1)
    fy = (y - y0)[:, None]
    fx = (x - x0)[None, :]
    data = plane.astype(np.float64)
    top = data[np.ix_(y0, x0)] * (1 - fx) + data[np.ix_(y0, x1)] * fx
    bottom = data[np.ix_(y1, x0)] * (1 - fx) + data[np.ix_(y1, x1)] * fx
    result = top * (1 - fy) + bottom * fy
    return np.clip(np.round(result), 0, 255).astype(np.uint8)


def downsample_frame(frame: Frame, factor: int) -> Frame:
    """Downsample all three planes of a frame by an integer factor."""
    return Frame(
        y=downsample_plane(frame.y, factor),
        u=downsample_plane(frame.u, factor),
        v=downsample_plane(frame.v, factor),
    )


def upsample_frame(frame: Frame, factor: int) -> Frame:
    """Upsample all three planes of a frame by an integer factor."""
    return Frame(
        y=upsample_plane(frame.y, factor),
        u=upsample_plane(frame.u, factor),
        v=upsample_plane(frame.v, factor),
    )


def mse(a: Frame | np.ndarray, b: Frame | np.ndarray) -> float:
    """Mean squared error between two frames (luma only) or two arrays."""
    plane_a = a.y if isinstance(a, Frame) else np.asarray(a)
    plane_b = b.y if isinstance(b, Frame) else np.asarray(b)
    if plane_a.shape != plane_b.shape:
        raise ValueError(f"shape mismatch: {plane_a.shape} vs {plane_b.shape}")
    diff = plane_a.astype(np.float64) - plane_b.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(a: Frame | np.ndarray, b: Frame | np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical inputs."""
    error = mse(a, b)
    if error == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / error)
