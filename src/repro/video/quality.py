"""The encoding quality ladder.

VisualCloud encodes every spatiotemporal segment at several qualities and
substitutes them per tile at delivery time. A *quality* here is a
quantiser scale applied to the codec's base quantisation matrices: larger
scales discard more high-frequency detail and produce fewer bytes.
"""

from __future__ import annotations

import enum


class Quality(enum.Enum):
    """A rung of the quality ladder, ordered best (HIGH) to worst.

    The ``scale`` multiplies the codec's base quantisation matrices; the
    resulting bitrates follow the usual codec behaviour of roughly halving
    per ladder step on natural content. ``downscale`` additionally encodes
    at reduced spatial resolution (upsampled at decode) — the technique
    real ladders use to reach large rate gaps, and what lets the bottom
    rung cost ~10x less than the top.
    """

    HIGH = ("high", 1.0, 1)
    MEDIUM = ("medium", 3.0, 1)
    LOW = ("low", 8.0, 1)
    LOWEST = ("lowest", 20.0, 1)
    THUMBNAIL = ("thumbnail", 18.0, 2)

    def __init__(self, label: str, scale: float, downscale: int) -> None:
        self.label = label
        self.scale = scale
        self.downscale = downscale

    @property
    def rank(self) -> int:
        """0 for the best quality, increasing as quality drops."""
        return list(type(self)).index(self)

    def __lt__(self, other: "Quality") -> bool:
        """Order by fidelity: ``LOWEST < LOW < MEDIUM < HIGH``."""
        if not isinstance(other, Quality):
            return NotImplemented
        return self.rank > other.rank

    def __le__(self, other: "Quality") -> bool:
        if not isinstance(other, Quality):
            return NotImplemented
        return self.rank >= other.rank

    def __gt__(self, other: "Quality") -> bool:
        if not isinstance(other, Quality):
            return NotImplemented
        return self.rank < other.rank

    def __ge__(self, other: "Quality") -> bool:
        if not isinstance(other, Quality):
            return NotImplemented
        return self.rank <= other.rank

    @classmethod
    def from_label(cls, label: str) -> "Quality":
        for quality in cls:
            if quality.label == label:
                return quality
        raise ValueError(f"unknown quality label {label!r}")

    @classmethod
    def ladder(cls, size: int) -> tuple["Quality", ...]:
        """The top ``size`` rungs, best first (used by the storage sweep)."""
        members = list(cls)
        if not 1 <= size <= len(members):
            raise ValueError(f"ladder size must be in [1, {len(members)}], got {size}")
        return tuple(members[:size])


#: The full ladder, best quality first.
QUALITY_LADDER: tuple[Quality, ...] = tuple(Quality)
