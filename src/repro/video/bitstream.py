"""Bit-level I/O and exponential-Golomb entropy codes.

The codec's entropy layer: a big-endian bit writer/reader pair plus the
unsigned and signed exp-Golomb codes used by H.264/HEVC for header and
residual syntax. Exp-Golomb is a universal code — short for the small
values that dominate quantised transform coefficients — which is what makes
the quality ladder actually change the byte count.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits most-significant-first into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low-order bits of ``value``."""
        if nbits < 0:
            raise ValueError(f"bit count must be non-negative, got {nbits}")
        if value < 0 or (nbits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._buffer.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_bit(self, bit: int) -> None:
        self.write(1 if bit else 0, 1)

    def write_ue(self, value: int) -> None:
        """Unsigned exp-Golomb: value v is coded as the binary of v+1 with
        leading-zero prefix of equal length minus one."""
        if value < 0:
            raise ValueError(f"unsigned exp-Golomb requires value >= 0, got {value}")
        coded = value + 1
        length = coded.bit_length()
        self.write(coded, 2 * length - 1)

    def write_se(self, value: int) -> None:
        """Signed exp-Golomb: maps 0, 1, -1, 2, -2, ... to 0, 1, 2, 3, 4."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def getvalue(self) -> bytes:
        """The buffer contents, zero-padded to a whole number of bytes."""
        if self._nbits == 0:
            return bytes(self._buffer)
        tail = (self._acc << (8 - self._nbits)) & 0xFF
        return bytes(self._buffer) + bytes([tail])

    def __len__(self) -> int:
        """Number of bits written so far."""
        return len(self._buffer) * 8 + self._nbits


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append a LEB128 unsigned varint (7 bits per byte, MSB = continue)."""
    if value < 0:
        raise ValueError(f"varint requires a non-negative value, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read a LEB128 varint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("malformed varint (too long)")


class BitReader:
    """Reads bits most-significant-first from a byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits as an unsigned integer."""
        if nbits < 0:
            raise ValueError(f"bit count must be non-negative, got {nbits}")
        if nbits > self.bits_remaining:
            raise EOFError(
                f"requested {nbits} bits with only {self.bits_remaining} remaining"
            )
        result = 0
        remaining = nbits
        while remaining:
            byte_index, bit_offset = divmod(self._pos, 8)
            available = 8 - bit_offset
            take = min(available, remaining)
            chunk = self._data[byte_index]
            chunk >>= available - take
            chunk &= (1 << take) - 1
            result = (result << take) | chunk
            remaining -= take
            self._pos += take
        return result

    def read_bit(self) -> int:
        return self.read(1)

    def read_ue(self) -> int:
        """Read an unsigned exp-Golomb code (inverse of ``write_ue``)."""
        zeros = 0
        while self.read(1) == 0:
            zeros += 1
            if zeros > 63:
                raise ValueError("malformed exp-Golomb code (prefix too long)")
        if zeros == 0:
            return 0
        suffix = self.read(zeros)
        return (1 << zeros) + suffix - 1

    def read_se(self) -> int:
        """Read a signed exp-Golomb code (inverse of ``write_se``)."""
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)
