"""Bit-level I/O and exponential-Golomb entropy codes.

The codec's entropy layer: a big-endian bit writer/reader pair plus the
unsigned and signed exp-Golomb codes used by H.264/HEVC for header and
residual syntax. Exp-Golomb is a universal code — short for the small
values that dominate quantised transform coefficients — which is what makes
the quality ladder actually change the byte count.

Two speeds coexist here. The scalar ``write_ue``/``read_ue`` methods are
the reference wire format, one symbol at a time. The batched paths —
:func:`ue_codes`, :meth:`BitWriter.write_symbols`, and
:meth:`BitReader.scan_ue` — process whole symbol arrays with numpy and are
bit-identical to the scalar ones by construction; the codec's hot loops
use them exclusively.
"""

from __future__ import annotations

import numpy as np

#: Largest codeword the vectorised packer emits in one symbol. A ue code
#: for value v spans 2*bit_length(v+1) - 1 bits; 63 keeps every shift
#: inside one int64 lane.
MAX_BATCH_CODE_BITS = 63


def ue_codes(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised unsigned exp-Golomb: ``(codewords, bit lengths)``.

    Each value ``v`` maps to the codeword ``v + 1`` emitted in
    ``2 * bit_length(v + 1) - 1`` bits — exactly what ``write_ue`` does,
    for a whole array at once. Values must satisfy
    ``0 <= v < 2**31`` so the codeword fits the packer's 63-bit lane.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return values, values
    if values.min() < 0:
        raise ValueError("unsigned exp-Golomb requires values >= 0")
    if values.max() >= 1 << 31:
        raise ValueError("batched exp-Golomb supports values below 2**31")
    coded = values + 1
    # floor(log2) via float64 is exact here (coded < 2**53), but guard the
    # power-of-two boundaries against rounding anyway.
    exponent = np.floor(np.log2(coded.astype(np.float64))).astype(np.int64)
    exponent += (coded >> (exponent + 1)) > 0
    exponent -= coded < (np.int64(1) << exponent)
    return coded, 2 * exponent + 1


def se_to_ue(values: np.ndarray) -> np.ndarray:
    """Vectorised signed-to-unsigned exp-Golomb mapping (``write_se``'s
    ``0, 1, -1, 2, -2, ... -> 0, 1, 2, 3, 4`` zigzag)."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values > 0, 2 * values - 1, -2 * values)


class BitWriter:
    """Accumulates bits most-significant-first into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low-order bits of ``value``."""
        if nbits < 0:
            raise ValueError(f"bit count must be non-negative, got {nbits}")
        if value < 0 or (nbits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._buffer.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_bit(self, bit: int) -> None:
        self.write(1 if bit else 0, 1)

    def write_ue(self, value: int) -> None:
        """Unsigned exp-Golomb: value v is coded as the binary of v+1 with
        leading-zero prefix of equal length minus one."""
        if value < 0:
            raise ValueError(f"unsigned exp-Golomb requires value >= 0, got {value}")
        coded = value + 1
        length = coded.bit_length()
        self.write(coded, 2 * length - 1)

    def write_se(self, value: int) -> None:
        """Signed exp-Golomb: maps 0, 1, -1, 2, -2, ... to 0, 1, 2, 3, 4."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def write_symbols(
        self, codes: np.ndarray, nbits: np.ndarray, _trusted: bool = False
    ) -> None:
        """Vectorised bulk append: for each i, the low ``nbits[i]`` bits of
        ``codes[i]``, in order. Byte-identical to the equivalent sequence of
        :meth:`write` calls, including mid-byte continuation — the pending
        partial byte is folded in as one more symbol before packing.

        ``_trusted`` skips the range validation for internal callers whose
        symbols are valid by construction (e.g. :func:`ue_codes` output).
        """
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        nbits = np.ascontiguousarray(nbits, dtype=np.int64)
        if codes.shape != nbits.shape or codes.ndim != 1:
            raise ValueError("codes and nbits must be 1-D arrays of equal length")
        if codes.size == 0:
            return
        if not _trusted:
            if nbits.min() < 1 or nbits.max() > MAX_BATCH_CODE_BITS:
                raise ValueError(f"symbol widths must be in [1, {MAX_BATCH_CODE_BITS}]")
            if codes.min() < 0 or np.any(codes >> nbits):
                raise ValueError("a symbol value does not fit its bit width")
        if self._nbits:
            codes = np.concatenate(([self._acc], codes))
            nbits = np.concatenate(([self._nbits], nbits))
            self._acc = 0
            self._nbits = 0
        # Pack per symbol-byte, not per bit: shift each codeword so it ends
        # on a byte boundary, slice it into bytes, and scatter-add the
        # nonzero bytes into the output. Two symbols meeting inside a byte
        # occupy disjoint bits, so addition is bitwise OR.
        ends = np.cumsum(nbits)
        total = int(ends[-1])
        pad = (-ends) % 8  # zero bits appended to byte-align each symbol's end
        end_byte = (ends + pad) >> 3
        values = codes.astype(np.uint64)
        out_len = (total + 7) // 8
        span = int((int(nbits.max()) + 14) // 8) + 1  # bytes one symbol can touch
        chunks_idx = []
        chunks_val = []
        for j in range(span):
            if j == 0:
                byte = ((values & np.uint64(0xFF)) << pad.astype(np.uint64)) & np.uint64(0xFF)
            else:
                # codes < 2**63, so clamping the shift to 63 zeroes any
                # byte lane beyond the codeword instead of overflowing.
                shift = np.minimum(8 * j - pad, 63).astype(np.uint64)
                byte = (values >> shift) & np.uint64(0xFF)
            live = np.flatnonzero(byte)
            if live.size:
                chunks_idx.append(end_byte[live] - 1 - j)
                chunks_val.append(byte[live])
        out = np.zeros(out_len, dtype=np.uint8)
        if chunks_idx:
            packed = np.bincount(
                np.concatenate(chunks_idx),
                weights=np.concatenate(chunks_val).astype(np.float64),
                minlength=out_len,
            )
            out = packed.astype(np.uint8)
        whole = total // 8
        self._buffer += out[:whole].tobytes()
        self._nbits = total - whole * 8
        self._acc = int(out[whole]) >> (8 - self._nbits) if self._nbits else 0

    def getvalue(self) -> bytes:
        """The buffer contents, zero-padded to a whole number of bytes."""
        if self._nbits == 0:
            return bytes(self._buffer)
        tail = (self._acc << (8 - self._nbits)) & 0xFF
        return bytes(self._buffer) + bytes([tail])

    def __len__(self) -> int:
        """Number of bits written so far."""
        return len(self._buffer) * 8 + self._nbits


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append a LEB128 unsigned varint (7 bits per byte, MSB = continue)."""
    if value < 0:
        raise ValueError(f"varint requires a non-negative value, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read a LEB128 varint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("malformed varint (too long)")


class BitReader:
    """Reads bits most-significant-first from a byte buffer."""

    #: Why a :meth:`scan_ue` stopped where it did.
    SCAN_END = "end"  # clean end of buffer (or only padding bits remain)
    SCAN_EOF = "eof"  # a codeword is cut off by the end of the buffer
    SCAN_MALFORMED = "malformed"  # a codeword prefix exceeds 63 zeros

    def __init__(self, data: bytes | memoryview) -> None:
        self._data = data
        self._pos = 0  # bit position
        self._scan_cache: tuple[np.ndarray, np.ndarray, str, int] | None = None

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits as an unsigned integer."""
        if nbits < 0:
            raise ValueError(f"bit count must be non-negative, got {nbits}")
        if nbits > self.bits_remaining:
            raise EOFError(
                f"requested {nbits} bits with only {self.bits_remaining} remaining"
            )
        result = 0
        remaining = nbits
        while remaining:
            byte_index, bit_offset = divmod(self._pos, 8)
            available = 8 - bit_offset
            take = min(available, remaining)
            chunk = self._data[byte_index]
            chunk >>= available - take
            chunk &= (1 << take) - 1
            result = (result << take) | chunk
            remaining -= take
            self._pos += take
        return result

    def read_bit(self) -> int:
        return self.read(1)

    def read_ue(self) -> int:
        """Read an unsigned exp-Golomb code (inverse of ``write_ue``)."""
        zeros = 0
        while self.read(1) == 0:
            zeros += 1
            if zeros > 63:
                raise ValueError("malformed exp-Golomb code (prefix too long)")
        if zeros == 0:
            return 0
        suffix = self.read(zeros)
        return (1 << zeros) + suffix - 1

    def read_se(self) -> int:
        """Read a signed exp-Golomb code (inverse of ``write_se``)."""
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)

    def seek(self, bit_position: int) -> None:
        """Move the read cursor to an absolute bit position."""
        if not 0 <= bit_position <= len(self._data) * 8:
            raise ValueError(f"bit position {bit_position} outside the buffer")
        self._pos = bit_position

    def scan_ue(self) -> tuple[np.ndarray, np.ndarray, str]:
        """Decode every complete unsigned exp-Golomb codeword from the
        current position to the end of the buffer, without consuming.

        Returns ``(values, ends, stop)``: ``values[i]`` is the i-th decoded
        value (``uint64``), ``ends[i]`` the absolute bit position just past
        its codeword, and ``stop`` one of :data:`SCAN_END` /
        :data:`SCAN_EOF` / :data:`SCAN_MALFORMED` describing why the scan
        stopped after the last complete codeword. Callers consume a prefix
        of the scan with :meth:`seek`; the scan is cached, so resuming from
        any codeword boundary is free.

        The boundary structure of a ue stream is self-delimiting (z zeros,
        a one, z suffix bits), so all codeword starts can be found without
        decoding: the successor of a start ``p`` with next set bit at ``o``
        is ``2*o - p + 1``. That successor map is materialised as a jump
        table over all bit positions and iterated by repeated doubling —
        the whole scan is O(bits * log(symbols)) numpy work with no
        per-bit Python.
        """
        cached = self._scan_cache
        if cached is not None:
            values, ends, stop, base = cached
            if self._pos == base:
                return values, ends, stop
            after = np.searchsorted(ends, self._pos, side="left")
            if after < ends.size and ends[after] == self._pos:
                return values[after + 1 :], ends[after + 1 :], stop
            # Cursor is not on a cached codeword boundary: rescan below.
        data = np.frombuffer(self._data, dtype=np.uint8)  # zero-copy for bytes/views
        bits = np.unpackbits(data)
        total = bits.size
        start = self._pos
        positions = np.arange(total, dtype=np.int64)
        # next_one[p]: position of the first set bit at or after p (total if
        # none) — a reverse running minimum over set-bit positions.
        next_one = np.where(bits, positions, total)
        np.minimum.accumulate(next_one[::-1], out=next_one[::-1])
        zeros = next_one - positions  # == total - p when no set bit remains
        code_end = 2 * next_one - positions + 1
        sentinel = total + 1  # "no complete codeword starts here"
        succ = np.where(
            (next_one < total) & (zeros <= 63) & (code_end <= total), code_end, sentinel
        )
        succ = np.concatenate([succ, [sentinel, sentinel]])  # succ[total], succ[sentinel]
        # Enumerate the orbit start, f(start), f²(start), ... by doubling:
        # each round appends f^len applied to what we have and squares the
        # table, so K boundaries cost O(log K) vectorised passes.
        starts = np.array([start], dtype=np.int64)
        jump = succ
        while starts[-1] < total:
            starts = np.concatenate([starts, jump[starts]])
            jump = jump[jump]
        starts = starts[: int(np.argmax(starts >= total))]
        # Only the final orbit entry can start an *incomplete* codeword
        # (its successor is the sentinel, so everything after was trimmed).
        resume = None
        if starts.size and succ[starts[-1]] == sentinel:
            resume = int(starts[-1])
            starts = starts[:-1]

        if starts.size:
            one_at = next_one[starts]
            lengths = one_at - starts + 1  # suffix bits including the leading one
            ends = one_at + lengths  # == 2*one_at - start + 1
            counts = np.cumsum(lengths) - lengths
            symbol = np.repeat(np.arange(starts.size), lengths)
            offset = np.arange(int(lengths.sum())) - counts[symbol]
            contrib = bits[one_at[symbol] + offset].astype(np.uint64) << (
                (lengths[symbol] - 1 - offset).astype(np.uint64)
            )
            values = np.add.reduceat(contrib, counts) - np.uint64(1)
            if resume is None:
                resume = int(ends[-1])
        else:
            values = np.empty(0, dtype=np.uint64)
            ends = np.empty(0, dtype=np.int64)
            if resume is None:
                resume = start
        if resume == total:
            stop = self.SCAN_END
        elif zeros[resume] > 63:
            stop = self.SCAN_MALFORMED
        else:
            # Padding-only tails (all zeros to the end) and genuinely
            # truncated codewords are indistinguishable here; both read as
            # EOF, exactly as the scalar reader would report them.
            stop = self.SCAN_EOF
        self._scan_cache = (values, ends, stop, self._pos)
        return values, ends, stop
