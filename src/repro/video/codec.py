"""A from-scratch block-transform video codec.

The codec follows the classic hybrid design (the same skeleton as
H.264/HEVC, minus motion search): 8x8 DCT, scalar quantisation against a
perceptual matrix, zigzag scan, run/level entropy coding with exp-Golomb
codes. Frames are either *intra* (I: coded standalone) or *predicted*
(P: the quantised residual against the previous reconstructed frame).

The encoder maintains the same reconstruction the decoder will produce
(quantise -> dequantise -> inverse transform), so P-frame chains do not
drift. Zero-motion prediction ("conditional replenishment") is used instead
of motion search; this keeps tiles trivially motion-constrained — a block
never references pixels outside its own tile — which is the property the
homomorphic tile operators rely on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.video.bitstream import BitReader, BitWriter, se_to_ue, ue_codes
from repro.video.blocks import (
    forward_dct,
    inverse_dct,
    merge_blocks,
    split_blocks,
    zigzag_scan,
    zigzag_unscan,
)
from repro.video.frame import Frame
from repro.video.quality import Quality

# The ITU-T T.81 (JPEG annex K) example matrices: a reasonable perceptual
# weighting for 8x8 DCT coefficients.
_BASE_LUMA = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)
_BASE_CHROMA = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)

FRAME_TYPE_INTRA = 0
FRAME_TYPE_PREDICTED = 1


def quant_matrix(base: np.ndarray, scale: float) -> np.ndarray:
    """Scale a base quantisation matrix, clamping steps to ``[1, 4096]``."""
    if scale <= 0:
        raise ValueError(f"quantiser scale must be positive, got {scale}")
    return np.clip(np.round(base * scale), 1.0, 4096.0)


def _run_length_symbols(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run/level decomposition of ``(n, 64)`` rows: ``(counts, runs, levels)``.

    ``counts[i]`` is row i's nonzero count; ``runs``/``levels`` hold, in
    stream order, the zero-run before each nonzero coefficient and its
    signed value.
    """
    flat = np.flatnonzero(rows)
    block_idx = flat >> 6  # rows are (n, 64): index arithmetic beats 2D nonzero
    coef_idx = flat & 63
    counts = np.bincount(block_idx, minlength=rows.shape[0])
    levels = rows.ravel()[flat].astype(np.int64)
    if block_idx.size:
        first = np.empty(block_idx.size, dtype=bool)
        first[0] = True
        np.not_equal(block_idx[1:], block_idx[:-1], out=first[1:])
        runs = np.where(first, coef_idx, np.diff(coef_idx, prepend=0) - 1)
    else:
        runs = coef_idx
    return counts, runs, levels


def _rows_to_symbols(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The full exp-Golomb symbol stream for ``rows``: ``(codes, nbits)``.

    Each (run, level) pair is fused into one packed symbol — the run code's
    bits followed by the level code's bits, exactly the wire sequence — so
    the packer sees ``blocks + nonzeros`` symbols instead of
    ``blocks + 2 * nonzeros``. Fusion stays within the packer's 63-bit lane
    because :func:`_write_rows` bounds levels to ``±2**21`` first
    (run <= 63 -> 13 bits, |level| < 2**21 -> 43 bits).
    """
    counts, runs, levels = _run_length_symbols(rows)
    blocks = counts.size
    nonzeros = levels.size
    # One ue_codes pass over every symbol value (counts, runs, mapped
    # levels back to back) — the arrays are small enough that per-call
    # dispatch, not arithmetic, dominates three separate passes.
    all_codes, all_bits = ue_codes(
        np.concatenate([counts, runs, se_to_ue(levels)])
    )
    count_codes, count_bits = all_codes[:blocks], all_bits[:blocks]
    codes = np.empty(blocks + nonzeros, dtype=np.int64)
    nbits = np.empty(blocks + nonzeros, dtype=np.int64)
    before = np.cumsum(counts) - counts
    count_pos = np.arange(blocks) + before
    codes[count_pos] = count_codes
    nbits[count_pos] = count_bits
    if nonzeros:
        run_codes = all_codes[blocks : blocks + nonzeros]
        run_bits = all_bits[blocks : blocks + nonzeros]
        level_codes = all_codes[blocks + nonzeros :]
        level_bits = all_bits[blocks + nonzeros :]
        block_of = np.repeat(np.arange(blocks), counts)
        pair_pos = count_pos[block_of] + 1 + (np.arange(nonzeros) - before[block_of])
        codes[pair_pos] = (run_codes << level_bits) | level_codes
        nbits[pair_pos] = run_bits + level_bits
    return codes, nbits


def _write_rows(writer: BitWriter, rows: np.ndarray) -> None:
    """Entropy-code ``(n, 64)`` quantised zigzag rows into a bit stream.

    Per block: the nonzero count as unsigned exp-Golomb, then (run, level)
    pairs — the run of zeros before each nonzero coefficient and its signed
    value. A count of zero is the skip case and costs a single bit. The
    stream is self-delimiting given the block count, so planes concatenate
    with no length prefixes — the overhead floor that would otherwise
    dominate low-quality segments.

    The whole plane is coded in one vectorised pass
    (:func:`_rows_to_symbols` + :meth:`BitWriter.write_symbols`),
    bit-identical to :func:`_write_rows_reference`. Coefficients at or
    beyond ±2**21 would overflow the packer's fused-pair codeword lane,
    so that (never produced by the quantiser) range falls back to the
    reference coder.
    """
    if rows.size == 0:
        return
    if int(rows.max()) >= _VECTOR_LEVEL_LIMIT or int(rows.min()) <= -_VECTOR_LEVEL_LIMIT:
        _write_rows_reference(writer, rows)
        return
    codes, nbits = _rows_to_symbols(rows)
    writer.write_symbols(codes, nbits, _trusted=True)


_VECTOR_LEVEL_LIMIT = 1 << 21


def _write_rows_reference(writer: BitWriter, rows: np.ndarray) -> None:
    """Scalar reference for :func:`_write_rows` (one symbol per call).

    This is the wire format's executable specification; the golden tests
    hold the vectorised path bit-identical to it.
    """
    counts, runs, levels = _run_length_symbols(rows)
    write_ue = writer.write_ue
    write_se = writer.write_se
    cursor = 0
    runs_list = runs.tolist()
    levels_list = levels.tolist()
    for count in counts.tolist():
        write_ue(count)
        for _ in range(count):
            write_ue(runs_list[cursor])
            write_se(levels_list[cursor])
            cursor += 1


def _raise_scan_stop(stop: str) -> None:
    if stop == BitReader.SCAN_MALFORMED:
        raise ValueError("malformed exp-Golomb code (prefix too long)")
    raise EOFError("bit stream ends inside a block's coefficient data")


def _read_rows(reader: BitReader, block_count: int) -> np.ndarray:
    """Inverse of :func:`_write_rows`: a bit stream to ``(n, 64)`` rows.

    Decodes through :meth:`BitReader.scan_ue`: every remaining codeword in
    the payload is located and decoded in one vectorised pass (cached on
    the reader, so the planes sharing one stream split the cost), and this
    function only walks the per-block structure to slice counts from
    (run, level) pairs.
    """
    rows = np.zeros((block_count, 64), dtype=np.int32)
    if block_count == 0:
        return rows
    values, ends, stop = reader.scan_ue()
    available = values.size
    count_idx = np.empty(block_count, dtype=np.int64)
    cursor = 0
    values_int = values.astype(np.int64, copy=False)
    for block in range(block_count):
        if cursor >= available:
            _raise_scan_stop(stop)
        count = int(values_int[cursor])
        if count > 64:
            raise ValueError(f"corrupt bitstream: block {block} claims {count} coefficients")
        count_idx[block] = cursor
        cursor += 1 + 2 * count
    if cursor > available:
        _raise_scan_stop(stop)
    counts = values_int[count_idx]
    nonzeros = int(counts.sum())
    if nonzeros:
        before = np.cumsum(counts) - counts
        block_of = np.repeat(np.arange(block_count), counts)
        pair_idx = count_idx[block_of] + 1 + 2 * (np.arange(nonzeros) - before[block_of])
        runs = values_int[pair_idx]
        mapped = values[pair_idx + 1]
        half = (mapped // np.uint64(2)).astype(np.int64)
        levels = np.where((mapped & np.uint64(1)).astype(bool), half + 1, -half)
        steps = runs + 1
        walk = np.cumsum(steps)
        segment_base = (walk - steps)[np.minimum(before, nonzeros - 1)]
        positions = walk - np.repeat(segment_base, counts) - 1
        if int(positions.max()) > 63:
            raise ValueError(
                f"corrupt bitstream: coefficient index {int(positions.max())} > 63"
            )
        rows[block_of, positions] = levels
    reader.seek(int(ends[cursor - 1]))
    return rows


def _read_rows_reference(reader: BitReader, block_count: int) -> np.ndarray:
    """Scalar reference for :func:`_read_rows` (one symbol per call)."""
    rows = np.zeros((block_count, 64), dtype=np.int32)
    read_ue = reader.read_ue
    read_se = reader.read_se
    for block in range(block_count):
        count = read_ue()
        if count > 64:
            raise ValueError(f"corrupt bitstream: block {block} claims {count} coefficients")
        position = -1
        for _ in range(count):
            position += read_ue() + 1
            if position > 63:
                raise ValueError(f"corrupt bitstream: coefficient index {position} > 63")
            rows[block, position] = read_se()
    return rows


def _entropy_encode(rows: np.ndarray) -> bytes:
    """Standalone wrapper of :func:`_write_rows` (padding to whole bytes)."""
    writer = BitWriter()
    _write_rows(writer, rows)
    return writer.getvalue()


def _entropy_decode(data: bytes, block_count: int) -> np.ndarray:
    """Standalone wrapper of :func:`_read_rows`."""
    return _read_rows(BitReader(data), block_count)


@dataclass(frozen=True)
class PlaneCodec:
    """Transform coding of one plane (luma or chroma) at a fixed quantiser."""

    qmat: np.ndarray

    def quantise(
        self, plane: np.ndarray, reference: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Transform + quantise a plane; returns ``(zigzag rows, reconstruction)``.

        With a ``reference`` (the previous reconstructed plane) the residual
        is coded; without, the plane is coded intra. The reconstruction is
        bit-exact with what :meth:`reconstruct` produces from the rows.
        """
        if reference is None:
            signal = plane.astype(np.float64) - 128.0
        else:
            if reference.shape != plane.shape:
                raise ValueError(
                    f"reference shape {reference.shape} != plane shape {plane.shape}"
                )
            signal = plane.astype(np.float64) - reference.astype(np.float64)
        coefficients = forward_dct(split_blocks(signal))
        quantised = np.round(coefficients / self.qmat).astype(np.int32)
        rows = zigzag_scan(quantised)
        reconstruction = self.reconstruct(rows, plane.shape[0], plane.shape[1], reference)
        return rows, reconstruction

    def reconstruct(
        self, rows: np.ndarray, height: int, width: int, reference: np.ndarray | None
    ) -> np.ndarray:
        """Dequantise + inverse-transform zigzag rows back to a uint8 plane."""
        quantised = zigzag_unscan(rows)
        signal = merge_blocks(
            inverse_dct(quantised.astype(np.float64) * self.qmat), height, width
        )
        if reference is None:
            plane = signal + 128.0
        else:
            plane = signal + reference.astype(np.float64)
        return np.clip(np.round(plane), 0, 255).astype(np.uint8)

    def encode(self, plane: np.ndarray, reference: np.ndarray | None) -> tuple[bytes, np.ndarray]:
        """Standalone plane encode; returns ``(payload, reconstruction)``."""
        rows, reconstruction = self.quantise(plane, reference)
        return _entropy_encode(rows), reconstruction

    def decode(
        self, payload: bytes, height: int, width: int, reference: np.ndarray | None
    ) -> np.ndarray:
        """Decode a payload produced by :meth:`encode` back to uint8."""
        block_count = (height // 8) * (width // 8)
        return self.reconstruct(_entropy_decode(payload, block_count), height, width, reference)


class FrameCodec:
    """Whole-frame encode/decode at one :class:`Quality` rung.

    Stateless with respect to the video: callers pass the reference frame
    explicitly, which keeps the codec reusable across concurrent streams
    and makes GOP closure an invariant of the caller (see
    :mod:`repro.video.gop`).
    """

    def __init__(self, quality: Quality) -> None:
        self.quality = quality
        self._luma = PlaneCodec(quant_matrix(_BASE_LUMA, quality.scale))
        self._chroma = PlaneCodec(quant_matrix(_BASE_CHROMA, quality.scale))

    def _plane_codecs(self) -> tuple[PlaneCodec, PlaneCodec, PlaneCodec]:
        return (self._luma, self._chroma, self._chroma)

    def encode_frame(self, frame: Frame, reference: Frame | None) -> tuple[bytes, Frame]:
        """Encode one frame; returns ``(bytes, reconstruction)``.

        The frame is intra when ``reference`` is None, predicted otherwise.
        Layout: a 1-byte frame type followed by one continuous entropy bit
        stream covering all three planes — the stream is self-delimiting,
        so no per-plane framing bytes exist.
        """
        if frame.width % 16 or frame.height % 16:
            raise ValueError(
                f"frame {frame.width}x{frame.height} must be a multiple of 16 "
                "(so chroma planes split into whole 8px blocks)"
            )
        frame_type = FRAME_TYPE_INTRA if reference is None else FRAME_TYPE_PREDICTED
        writer = BitWriter()
        reconstructed_planes = []
        plane_rows = []
        reference_planes = (None, None, None) if reference is None else reference.planes
        for codec, plane, ref_plane in zip(self._plane_codecs(), frame.planes, reference_planes):
            rows, reconstruction = codec.quantise(plane, ref_plane)
            plane_rows.append(rows)
            reconstructed_planes.append(reconstruction)
        # The three planes share one continuous bit stream with no framing
        # between them, so stacking their block rows into a single entropy
        # call is bit-identical to coding them plane by plane — and lets
        # the vectorised coder amortise its fixed numpy cost per frame
        # instead of per plane.
        _write_rows(writer, np.vstack(plane_rows))
        return struct.pack(">B", frame_type) + writer.getvalue(), Frame(*reconstructed_planes)

    def decode_frame(
        self, data: bytes | memoryview, width: int, height: int, reference: Frame | None
    ) -> Frame:
        """Decode bytes produced by :meth:`encode_frame`."""
        if len(data) < 1:
            raise ValueError("empty frame payload")
        frame_type = data[0]
        if frame_type == FRAME_TYPE_PREDICTED and reference is None:
            raise ValueError("predicted frame requires a reference frame")
        if frame_type == FRAME_TYPE_INTRA:
            reference = None
        elif frame_type != FRAME_TYPE_PREDICTED:
            raise ValueError(f"unknown frame type {frame_type}")
        reader = BitReader(memoryview(data)[1:])  # skip the type byte, no copy
        planes = []
        shapes = [(height, width), (height // 2, width // 2), (height // 2, width // 2)]
        reference_planes = (None, None, None) if reference is None else reference.planes
        try:
            for codec, (plane_h, plane_w), ref_plane in zip(
                self._plane_codecs(), shapes, reference_planes
            ):
                rows = _read_rows(reader, (plane_h // 8) * (plane_w // 8))
                planes.append(codec.reconstruct(rows, plane_h, plane_w, ref_plane))
        except EOFError as error:
            raise ValueError(f"truncated frame payload: {error}") from error
        return Frame(*planes)
