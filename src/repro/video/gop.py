"""Groups of pictures: closed, independently decodable frame runs.

A GOP starts with an intra frame and chains predicted frames off it, so
any GOP can be decoded with no context from outside — the unit of random
access, quality substitution, and the homomorphic (no-decode) temporal
operators below.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.video.bitstream import read_uvarint, write_uvarint
from repro.video.codec import FrameCodec
from repro.video.frame import Frame, downsample_frame, upsample_frame
from repro.video.quality import Quality

GOP_MAGIC = b"VGOP"
_HEADER = struct.Struct(">4sBBHHH")  # magic, version, quality rank, width, height, frames
GOP_FORMAT_VERSION = 1


class GopCodec:
    """Encodes/decodes one closed GOP at a fixed quality."""

    def __init__(self, quality: Quality) -> None:
        self.quality = quality
        self._frame_codec = FrameCodec(quality)

    def encode_gop(self, frames: list[Frame]) -> bytes:
        """Encode frames as one closed GOP (first intra, rest predicted).

        Qualities with ``downscale > 1`` are coded at reduced resolution;
        the header records the *original* dimensions and decode upsamples
        back, so callers see full-size frames either way.
        """
        if not frames:
            raise ValueError("a GOP must contain at least one frame")
        width, height = frames[0].width, frames[0].height
        for index, frame in enumerate(frames):
            if (frame.width, frame.height) != (width, height):
                raise ValueError(
                    f"frame {index} is {frame.width}x{frame.height}, "
                    f"GOP started at {width}x{height}"
                )
        factor = self.quality.downscale
        if factor > 1:
            if width % (16 * factor) or height % (16 * factor):
                raise ValueError(
                    f"{width}x{height} cannot encode at 1/{factor} resolution "
                    f"(must be a multiple of {16 * factor})"
                )
            frames = [downsample_frame(frame, factor) for frame in frames]
        chunks = [
            _HEADER.pack(
                GOP_MAGIC, GOP_FORMAT_VERSION, self.quality.rank, width, height, len(frames)
            )
        ]
        reference = None
        for frame in frames:
            data, reference = self._frame_codec.encode_frame(frame, reference)
            length = bytearray()
            write_uvarint(length, len(data))
            chunks.append(bytes(length))
            chunks.append(data)
        return b"".join(chunks)

    def decode_gop(self, data: bytes) -> list[Frame]:
        """Decode a byte string produced by :meth:`encode_gop`."""
        quality, width, height, count, offset = _parse_gop_header(data)
        if quality is not self.quality:
            raise ValueError(
                f"GOP encoded at {quality.label}, codec configured for {self.quality.label}"
            )
        factor = self.quality.downscale
        coded_width, coded_height = width // factor, height // factor
        frames: list[Frame] = []
        reference = None
        view = memoryview(data)  # per-frame slices below are zero-copy
        for _ in range(count):
            length, offset = read_uvarint(data, offset)
            frame = self._frame_codec.decode_frame(
                view[offset : offset + length], coded_width, coded_height, reference
            )
            offset += length
            reference = frame
            frames.append(upsample_frame(frame, factor) if factor > 1 else frame)
        return frames


def _parse_gop_header(data: bytes) -> tuple[Quality, int, int, int, int]:
    """Parse a GOP header; returns (quality, width, height, frames, offset)."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated GOP (header incomplete)")
    magic, version, quality_rank, width, height, count = _HEADER.unpack_from(data)
    if magic != GOP_MAGIC:
        raise ValueError(f"bad GOP magic {magic!r}")
    if version != GOP_FORMAT_VERSION:
        raise ValueError(f"unsupported GOP format version {version}")
    qualities = list(Quality)
    if quality_rank >= len(qualities):
        raise ValueError(f"unknown quality rank {quality_rank}")
    return qualities[quality_rank], width, height, count, _HEADER.size


def decode_any_gop(data: bytes) -> list[Frame]:
    """Decode a GOP whose quality is read from its own header."""
    quality, *_ = _parse_gop_header(data)
    return GopCodec(quality).decode_gop(data)


def merge_gops(parts: list[bytes]) -> bytes:
    """Concatenate encoded GOPs into one GOP, at the byte level.

    Valid because each constituent GOP's first frame is intra and the
    frame decoder resets its reference on every intra frame: a "GOP" with
    intra frames mid-stream decodes exactly as the originals would. Only
    the container framing is parsed — no entropy decode. All parts must
    share quality and dimensions.
    """
    if not parts:
        raise ValueError("cannot merge zero GOPs")
    headers = [_parse_gop_header(part) for part in parts]
    quality, width, height, _, header_size = headers[0]
    for index, (part_quality, part_width, part_height, _, _) in enumerate(headers[1:], 1):
        if (part_quality, part_width, part_height) != (quality, width, height):
            raise ValueError(
                f"GOP {index} is {part_width}x{part_height}@{part_quality.label}, "
                f"expected {width}x{height}@{quality.label}"
            )
    total_frames = sum(header[3] for header in headers)
    if total_frames > 0xFFFF:
        raise ValueError(f"merged GOP would hold {total_frames} frames (max 65535)")
    merged_header = _HEADER.pack(
        GOP_MAGIC, GOP_FORMAT_VERSION, quality.rank, width, height, total_frames
    )
    return merged_header + b"".join(part[header_size:] for part in parts)


def gop_byte_length(data: bytes, offset: int = 0) -> int:
    """Length in bytes of the GOP starting at ``offset``, by parsing only
    the header and per-frame length prefixes (no entropy decode)."""
    _, _, _, count, header_size = _parse_gop_header(data[offset:])
    cursor = offset + header_size
    for _ in range(count):
        if cursor >= len(data):
            raise ValueError("truncated GOP (frame length prefix)")
        length, cursor = read_uvarint(data, cursor)
        cursor += length
    return cursor - offset


@dataclass
class GopStream:
    """A concatenation of encoded GOPs plus a temporal index.

    This is the in-memory analogue of a video track with an MP4 ``stss``
    atom: ``index`` maps each GOP to its start time and byte range. The
    methods contrast three access paths the evaluation measures:

    * :meth:`select_indexed` — O(result) byte slicing via the index
      (the homomorphic GOPSELECT),
    * :meth:`select_scan` — index-less, parsing every preceding GOP's
      framing to find boundaries, and
    * :meth:`select_decode` — the naive path that decodes from the start,
      as a decoder without random access must.
    """

    data: bytes = b""
    index: list[tuple[float, float, int, int]] = field(default_factory=list)
    #: index entries are (start_time_s, duration_s, byte_offset, byte_size)

    @property
    def gop_count(self) -> int:
        return len(self.index)

    @property
    def duration(self) -> float:
        if not self.index:
            return 0.0
        start, length, _, _ = self.index[-1]
        return start + length

    def append(self, gop_bytes: bytes, start_time: float, duration: float) -> None:
        """Append an encoded GOP; times must be contiguous and increasing."""
        if duration <= 0:
            raise ValueError(f"GOP duration must be positive, got {duration}")
        if self.index and abs(start_time - self.duration) > 1e-9:
            raise ValueError(
                f"GOP start {start_time} is not contiguous with stream end {self.duration}"
            )
        self.index.append((start_time, duration, len(self.data), len(gop_bytes)))
        self.data += gop_bytes

    def _covering_entries(self, t0: float, t1: float) -> list[tuple[float, float, int, int]]:
        if t1 <= t0:
            raise ValueError(f"empty temporal selection [{t0}, {t1})")
        return [
            entry
            for entry in self.index
            if entry[0] < t1 and entry[0] + entry[1] > t0
        ]

    def select_indexed(self, t0: float, t1: float) -> list[bytes]:
        """GOP byte strings overlapping ``[t0, t1)``, via the index."""
        return [
            self.data[offset : offset + size]
            for _, _, offset, size in self._covering_entries(t0, t1)
        ]

    def select_scan(self, t0: float, t1: float) -> list[bytes]:
        """Same result as :meth:`select_indexed` but without using the
        index: walks the stream parsing GOP framing to locate boundaries."""
        results = []
        offset = 0
        time = 0.0
        position = 0
        while offset < len(self.data):
            length = gop_byte_length(self.data, offset)
            # Durations still come from the entry list (they are container
            # metadata); what the scan forgoes is the byte offsets.
            duration = self.index[position][1]
            if time < t1 and time + duration > t0:
                results.append(self.data[offset : offset + length])
            time += duration
            offset += length
            position += 1
            if time >= t1:
                break
        return results

    def select_decode(self, t0: float, t1: float) -> list[Frame]:
        """Naive sequential access: decode every GOP from the start of the
        stream until the selection is satisfied, returning selected frames."""
        frames: list[Frame] = []
        time = 0.0
        offset = 0
        for start, duration, _, size in self.index:
            gop = self.data[offset : offset + size]
            decoded = decode_any_gop(gop)
            if start < t1 and start + duration > t0:
                frames.extend(decoded)
            offset += size
            time = start + duration
            if time >= t1:
                break
        return frames

    @staticmethod
    def union(streams: list["GopStream"]) -> "GopStream":
        """Homomorphic GOPUNION: concatenate temporally-contiguous streams
        by splicing bytes and rebasing indexes — no decode, no re-encode."""
        if not streams:
            raise ValueError("union of zero streams")
        result = GopStream()
        for position, stream in enumerate(streams):
            if stream.index and abs(stream.index[0][0]) > 1e-9:
                raise ValueError(f"stream {position} does not start at time zero")
            base_time = result.duration
            base_offset = len(result.data)
            for start, duration, offset, size in stream.index:
                result.index.append((start + base_time, duration, offset + base_offset, size))
            result.data += stream.data
        return result
