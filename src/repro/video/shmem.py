"""Shared-memory GOP transport for parallel ingest.

The encode fan-out's cost problem is not compute, it is IPC: pickling a
GOP's raw frames into every worker job re-ships megabytes per tile. This
module moves the raw bytes out of band. The parent publishes one GOP's
planes into a single ``multiprocessing.shared_memory`` block; worker jobs
receive only a tiny :class:`GopBlock` descriptor plus a tile rectangle
and slice their own sub-frames out of the mapping.

Lifecycle contract: blocks are created by :func:`publish_gop`, named
deterministically (``vcin-<pid>-<seq>``), and destroyed by the publisher
— :meth:`PublishedGop.destroy` is idempotent and callers run it in a
``finally`` so success, worker failure, and ``KeyboardInterrupt`` all
unlink. Workers only ever attach and close; they never unlink (and they
deregister their attachment from the ``resource_tracker`` so a pooled
worker's exit cannot reap a block behind the parent's back).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.video.frame import Frame

#: Prefix of every block this module creates; the leak tests (and a
#: worried operator inspecting /dev/shm) key off it.
BLOCK_PREFIX = "vcin"

_SEQUENCE = itertools.count()
_AVAILABLE: bool | None = None


def _next_block_name() -> str:
    """Deterministic, collision-free block name: pid + process-local seq."""
    return f"{BLOCK_PREFIX}-{os.getpid()}-{next(_SEQUENCE)}"


def shared_memory_available() -> bool:
    """Whether this platform can create shared-memory blocks (cached probe).

    Restricted sandboxes (no /dev/shm, seccomp'd ``shm_open``) raise
    ``OSError`` at create time; callers fall back to the pickling
    transport.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
        except (OSError, NotImplementedError):
            _AVAILABLE = False
        else:
            probe.close()
            probe.unlink()
            _AVAILABLE = True
    return _AVAILABLE


def _reset_probe_cache() -> None:
    """Forget the cached probe result (test hook)."""
    global _AVAILABLE
    _AVAILABLE = None


@dataclass(frozen=True)
class GopBlock:
    """Picklable descriptor of one published GOP: name + plane geometry.

    The block packs three contiguous uint8 arrays back to back:
    luma ``(frames, height, width)``, then the two quarter-resolution
    chroma planes ``(frames, height // 2, width // 2)`` each. Everything
    a worker needs to rebuild the views is derivable from these fields.
    """

    name: str
    width: int
    height: int
    frame_count: int

    @property
    def luma_bytes(self) -> int:
        return self.frame_count * self.height * self.width

    @property
    def chroma_bytes(self) -> int:
        return self.frame_count * (self.height // 2) * (self.width // 2)

    @property
    def total_bytes(self) -> int:
        return self.luma_bytes + 2 * self.chroma_bytes


def _plane_views(
    block: GopBlock, buf
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three plane arrays over a block's buffer (no copies)."""
    luma_shape = (block.frame_count, block.height, block.width)
    chroma_shape = (block.frame_count, block.height // 2, block.width // 2)
    y = np.ndarray(luma_shape, dtype=np.uint8, buffer=buf, offset=0)
    u = np.ndarray(chroma_shape, dtype=np.uint8, buffer=buf, offset=block.luma_bytes)
    v = np.ndarray(
        chroma_shape,
        dtype=np.uint8,
        buffer=buf,
        offset=block.luma_bytes + block.chroma_bytes,
    )
    return y, u, v


class PublishedGop:
    """Publisher-side handle on one GOP's shared block."""

    def __init__(self, descriptor: GopBlock, shm: shared_memory.SharedMemory) -> None:
        self.descriptor = descriptor
        self._shm: shared_memory.SharedMemory | None = shm

    def destroy(self) -> None:
        """Close and unlink the block. Idempotent; never raises for a
        block that is already gone."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _fill_block(block: GopBlock, buf, frames: list[Frame]) -> None:
    # In a helper so the numpy views die before the caller ever closes
    # the mapping (SharedMemory.close raises BufferError while views
    # of its buffer are alive).
    y, u, v = _plane_views(block, buf)
    for index, frame in enumerate(frames):
        y[index] = frame.y
        u[index] = frame.u
        v[index] = frame.v


def publish_gop(frames: list[Frame]) -> PublishedGop:
    """Copy a GOP's planes into a fresh shared block.

    Raises ``OSError`` where shared memory is unavailable; callers fall
    back to the pickling transport. A stale same-named block (a previous
    process's pid recycled) is skipped, not reused.
    """
    if not frames:
        raise ValueError("cannot publish an empty GOP")
    first = frames[0]
    block = GopBlock(
        name=_next_block_name(),
        width=first.width,
        height=first.height,
        frame_count=len(frames),
    )
    shm = None
    while shm is None:
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=block.total_bytes, name=block.name
            )
        except FileExistsError:
            block = GopBlock(
                name=_next_block_name(),
                width=block.width,
                height=block.height,
                frame_count=block.frame_count,
            )
    try:
        _fill_block(block, shm.buf, frames)
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        raise
    return PublishedGop(block, shm)


def _attach(name: str) -> shared_memory.SharedMemory:
    # Until 3.13's track=False, attaching registers the block with the
    # resource tracker, which pooled workers share with the publisher
    # under forkserver — a later unregister (ours at detach, or the
    # publisher's at unlink) would then hit the tracker's per-name set
    # twice. Only the creator may track; suppress registration for the
    # duration of the attach.
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


def _copy_tile(
    block: GopBlock, buf, rect: tuple[int, int, int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Copy one tile's sub-planes out of the mapping.

    Explicit ``.copy()`` (never ``ascontiguousarray``): a full-width tile
    slices contiguously and ``ascontiguousarray`` would hand back a view
    into a mapping the caller is about to close.
    """
    x0, y0, x1, y1 = rect
    y, u, v = _plane_views(block, buf)
    return (
        y[:, y0:y1, x0:x1].copy(),
        u[:, y0 // 2 : y1 // 2, x0 // 2 : x1 // 2].copy(),
        v[:, y0 // 2 : y1 // 2, x0 // 2 : x1 // 2].copy(),
    )


def read_tile_frames(block: GopBlock, rect: tuple[int, int, int, int]) -> list[Frame]:
    """Worker side: attach, copy one tile's sub-frames out, detach.

    Returns frames equal to ``[frame.crop(*rect) for frame in gop]`` on
    the publisher side — the equality the byte-identity guarantee rides
    on.
    """
    shm = _attach(block.name)
    try:
        y_sub, u_sub, v_sub = _copy_tile(block, shm.buf, rect)
    finally:
        shm.close()
    return [
        Frame(y=y_sub[index], u=u_sub[index], v=v_sub[index])
        for index in range(block.frame_count)
    ]
