"""An MP4-style atom ("box") container.

VisualCloud persists per-video metadata as a small MP4-compliant file: a
forest of atoms, each a 4-byte big-endian size, a four-character type code,
and a payload that is either raw bytes (leaf) or child atoms (container).
This module implements the generic atom model plus typed helpers for the
atoms the storage manager uses:

``ftyp``  file type / brand
``moov``  metadata container (children)
``mvhd``  movie header: timescale and duration
``trak``  one media stream's metadata (children)
``stsd``  codec description: codec 4cc, dimensions, fps, quality
``stss``  GOP (sync sample) index: time -> byte offset/size
``dref``  external media file reference (UTF-8 path)
``vcld``  VisualCloud-specific metadata (children; see repro.core.storage)
``mdat``  embedded media data

Unknown atom types round-trip untouched, as the MP4 rules require.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

#: Atom types whose payload is a sequence of child atoms.
CONTAINER_TYPES = frozenset({"moov", "trak", "vcld", "udta", "tils"})


@dataclass
class Atom:
    """One MP4 atom: a type code plus either a payload or children."""

    kind: str
    payload: bytes = b""
    children: list["Atom"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.kind) != 4:
            raise ValueError(f"atom type must be exactly 4 characters, got {self.kind!r}")
        if self.payload and self.children:
            raise ValueError(f"atom {self.kind!r} cannot have both payload and children")

    @property
    def is_container(self) -> bool:
        return bool(self.children) or self.kind in CONTAINER_TYPES

    def serialize(self) -> bytes:
        body = (
            b"".join(child.serialize() for child in self.children)
            if self.is_container
            else self.payload
        )
        return struct.pack(">I4s", 8 + len(body), self.kind.encode("ascii")) + body

    def find(self, path: str) -> "Atom | None":
        """First atom matching a dotted path, e.g. ``"trak.stss"``."""
        head, _, rest = path.partition(".")
        for child in self.children:
            if child.kind == head:
                return child.find(rest) if rest else child
        return None

    def find_all(self, kind: str) -> list["Atom"]:
        """All direct children of the given type."""
        return [child for child in self.children if child.kind == kind]


def parse_atoms(data: bytes, offset: int = 0, end: int | None = None) -> list[Atom]:
    """Parse a byte range into a list of atoms (recursing into containers)."""
    end = len(data) if end is None else end
    atoms = []
    while offset < end:
        if offset + 8 > end:
            raise ValueError(f"truncated atom header at offset {offset}")
        size, kind_raw = struct.unpack_from(">I4s", data, offset)
        if size < 8 or offset + size > end:
            raise ValueError(f"atom at offset {offset} declares invalid size {size}")
        kind = kind_raw.decode("ascii")
        body_start = offset + 8
        body_end = offset + size
        if kind in CONTAINER_TYPES:
            atom = Atom(kind, children=parse_atoms(data, body_start, body_end))
        else:
            atom = Atom(kind, payload=data[body_start:body_end])
        atoms.append(atom)
        offset = body_end
    return atoms


@dataclass
class Mp4File:
    """A whole container file: an ordered forest of top-level atoms."""

    atoms: list[Atom] = field(default_factory=list)

    def serialize(self) -> bytes:
        return b"".join(atom.serialize() for atom in self.atoms)

    @classmethod
    def parse(cls, data: bytes) -> "Mp4File":
        return cls(atoms=parse_atoms(data))

    def find(self, path: str) -> Atom | None:
        head, _, rest = path.partition(".")
        for atom in self.atoms:
            if atom.kind == head:
                return atom.find(rest) if rest else atom
        return None


# -- typed atom constructors / parsers ---------------------------------------

def make_ftyp(brand: str = "vcld") -> Atom:
    return Atom("ftyp", payload=brand.encode("ascii")[:4].ljust(4, b"\0"))


def make_mvhd(timescale: int, duration: int) -> Atom:
    """Movie header: ``duration`` is in ``timescale`` units per second."""
    return Atom("mvhd", payload=struct.pack(">II", timescale, duration))


def parse_mvhd(atom: Atom) -> tuple[int, int]:
    timescale, duration = struct.unpack(">II", atom.payload)
    return timescale, duration


def make_stsd(codec: str, width: int, height: int, fps: float, quality_label: str) -> Atom:
    """Codec description for one stream."""
    quality_bytes = quality_label.encode("utf-8")
    payload = struct.pack(
        ">4sHHdB", codec.encode("ascii")[:4].ljust(4, b"\0"), width, height, fps,
        len(quality_bytes),
    ) + quality_bytes
    return Atom("stsd", payload=payload)


def parse_stsd(atom: Atom) -> dict:
    codec, width, height, fps, label_len = struct.unpack_from(">4sHHdB", atom.payload)
    offset = struct.calcsize(">4sHHdB")
    label = atom.payload[offset : offset + label_len].decode("utf-8")
    return {
        "codec": codec.rstrip(b"\0").decode("ascii"),
        "width": width,
        "height": height,
        "fps": fps,
        "quality": label,
    }


def make_stss(entries: list[tuple[int, int, int]]) -> Atom:
    """GOP index: entries of ``(start_time_ms, byte_offset, byte_size)``."""
    payload = struct.pack(">I", len(entries)) + b"".join(
        struct.pack(">IQQ", time_ms, offset, size) for time_ms, offset, size in entries
    )
    return Atom("stss", payload=payload)


def parse_stss(atom: Atom) -> list[tuple[int, int, int]]:
    (count,) = struct.unpack_from(">I", atom.payload)
    entries = []
    offset = 4
    for _ in range(count):
        time_ms, byte_offset, size = struct.unpack_from(">IQQ", atom.payload, offset)
        entries.append((time_ms, byte_offset, size))
        offset += 20
    return entries


def make_dref(path: str) -> Atom:
    """Reference to an external media file (relative path, UTF-8)."""
    return Atom("dref", payload=path.encode("utf-8"))


def parse_dref(atom: Atom) -> str:
    return atom.payload.decode("utf-8")


def make_sv3d(projection: str) -> Atom:
    """Spherical-video metadata: the projection the raster uses.

    Modelled on the Spherical Video V2 RFC's ``sv3d`` box, reduced to the
    single field this system consumes.
    """
    return Atom("sv3d", payload=projection.encode("ascii"))


def parse_sv3d(atom: Atom) -> str:
    return atom.payload.decode("ascii")
