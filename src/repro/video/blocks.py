"""8x8 block transforms: plane blocking, DCT, zigzag scan.

All block math is vectorised across every block of a plane at once;
per-block Python loops appear only in the entropy layer.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

BLOCK_SIZE = 8


def _zigzag_order(n: int = BLOCK_SIZE) -> np.ndarray:
    """Flat indices of an ``n x n`` block in JPEG zigzag order."""
    # Anti-diagonal traversal: odd diagonals run top-right to bottom-left
    # (increasing row), even diagonals bottom-left to top-right.
    order = sorted(
        ((row, col) for row in range(n) for col in range(n)),
        key=lambda rc: (rc[0] + rc[1], rc[0] if (rc[0] + rc[1]) % 2 else rc[1]),
    )
    return np.array([row * n + col for row, col in order], dtype=np.int64)

ZIGZAG = _zigzag_order()
INVERSE_ZIGZAG = np.argsort(ZIGZAG)


def split_blocks(plane: np.ndarray) -> np.ndarray:
    """Split an ``(h, w)`` plane into ``(h*w/64, 8, 8)`` blocks, row-major.

    Dimensions must be multiples of 8 (the codec pads tiles to guarantee
    this before it ever reaches here).
    """
    height, width = plane.shape
    if height % BLOCK_SIZE or width % BLOCK_SIZE:
        raise ValueError(
            f"plane {width}x{height} is not a multiple of the {BLOCK_SIZE}px block size"
        )
    rows = height // BLOCK_SIZE
    cols = width // BLOCK_SIZE
    blocks = plane.reshape(rows, BLOCK_SIZE, cols, BLOCK_SIZE).swapaxes(1, 2)
    return blocks.reshape(rows * cols, BLOCK_SIZE, BLOCK_SIZE)


def merge_blocks(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`split_blocks`."""
    rows = height // BLOCK_SIZE
    cols = width // BLOCK_SIZE
    if blocks.shape != (rows * cols, BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(
            f"expected {(rows * cols, BLOCK_SIZE, BLOCK_SIZE)} blocks, got {blocks.shape}"
        )
    plane = blocks.reshape(rows, cols, BLOCK_SIZE, BLOCK_SIZE).swapaxes(1, 2)
    return plane.reshape(height, width)


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """Orthonormal 2-D DCT-II over the last two axes of a block stack."""
    return dctn(blocks.astype(np.float64), type=2, norm="ortho", axes=(-2, -1))


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct` (DCT-III with orthonormal scaling)."""
    return idctn(coefficients, type=2, norm="ortho", axes=(-2, -1))


def zigzag_scan(blocks: np.ndarray) -> np.ndarray:
    """Reorder ``(n, 8, 8)`` coefficient blocks into ``(n, 64)`` zigzag rows."""
    flat = blocks.reshape(blocks.shape[0], BLOCK_SIZE * BLOCK_SIZE)
    return flat[:, ZIGZAG]

def zigzag_unscan(rows: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_scan`: ``(n, 64)`` back to ``(n, 8, 8)``."""
    blocks = rows[:, INVERSE_ZIGZAG]
    return blocks.reshape(rows.shape[0], BLOCK_SIZE, BLOCK_SIZE)
