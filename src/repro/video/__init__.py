"""Video substrate: frames, a from-scratch block-transform codec, GOPs, tiles.

The reproduction cannot ship H.264/HEVC, so this package implements the
minimal real codec that exhibits the structural features VisualCloud
exploits:

* a quality ladder in which lower quality means measurably fewer bytes,
* closed groups of pictures (GOPs) that decode independently,
* motion-constrained tiles that decode independently of their neighbours,
* byte-level (homomorphic) select/union on encoded GOPs and tiles, and
* an MP4-style atom container with GOP and tile indexes.

Every byte produced here round-trips through a real decoder; nothing is a
size model.
"""

from repro.video.blocks import BLOCK_SIZE
from repro.video.codec import FrameCodec, PlaneCodec
from repro.video.frame import Frame, mse, psnr
from repro.video.gop import GopCodec, GopStream, decode_any_gop, merge_gops
from repro.video.mp4 import Atom, Mp4File
from repro.video.quality import QUALITY_LADDER, Quality
from repro.video.tiles import TiledGop, TiledVideoCodec

__all__ = [
    "Atom",
    "BLOCK_SIZE",
    "Frame",
    "FrameCodec",
    "GopCodec",
    "GopStream",
    "Mp4File",
    "PlaneCodec",
    "QUALITY_LADDER",
    "Quality",
    "TiledGop",
    "TiledVideoCodec",
    "decode_any_gop",
    "merge_gops",
    "mse",
    "psnr",
]
