"""Tile popularity and popularity-driven storage planning.

Viewing behaviour over 360 content is heavily skewed: most viewers watch
the same equatorial hotspots, and polar tiles are almost never inside a
viewport. Materialising the *full* quality x tile matrix therefore wastes
storage on high-quality rungs nobody fetches. This module estimates
per-tile view probability from historical traces and plans which rungs to
materialise per tile; the manifest's quality resolution (see
:meth:`repro.stream.dash.Manifest.resolve`) degrades requests for
unmaterialised rungs to the nearest stored one at delivery time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import TileGrid
from repro.geometry.viewport import Viewport
from repro.predict.traces import Trace
from repro.video.quality import Quality

QualityPlan = dict[tuple[int, int], tuple[Quality, ...]]


def tile_popularity(
    traces: list[Trace],
    grid: TileGrid,
    viewport: Viewport,
    samples_per_second: float = 2.0,
) -> np.ndarray:
    """Per-tile probability of being inside some viewer's viewport.

    Returns an array of shape ``(rows, cols)``; each entry is the fraction
    of sampled (viewer, instant) pairs whose viewport contained the tile.
    """
    if not traces:
        raise ValueError("popularity estimation needs at least one trace")
    if samples_per_second <= 0:
        raise ValueError(f"sampling rate must be positive, got {samples_per_second}")
    counts = np.zeros((grid.rows, grid.cols))
    total = 0
    for trace in traces:
        sample_count = max(2, int(trace.duration * samples_per_second) + 1)
        for time in np.linspace(trace.times[0], trace.times[-1], sample_count):
            orientation = trace.orientation_at(float(time))
            for row, col in viewport.visible_tiles(orientation, grid):
                counts[row, col] += 1
            total += 1
    return counts / total


def segment_weights(popularity: np.ndarray, manifest) -> dict:
    """Per-segment pin priority from the tile popularity map.

    Feeds the serve tier's hot-set prewarm (see
    :meth:`repro.serve.server.SegmentServer.prewarm_pins`): every stored
    segment of a tile inherits the tile's viewport probability, with the
    ladder's better rungs weighted ahead of the floor — hot viewers are
    served the top rung, so under a byte budget the high-quality copies
    of popular tiles are the ones worth keeping in RAM.

    ``manifest`` is a :class:`~repro.stream.dash.Manifest`; returns
    ``{SegmentKey: weight}`` over exactly its stored segments.
    """
    ladder = {quality: rank for rank, quality in enumerate(manifest.qualities)}
    rungs = max(1, len(manifest.qualities))
    weights: dict = {}
    for key in manifest.segment_sizes:
        base = float(popularity[key.tile])
        rank = ladder.get(key.quality, rungs - 1)
        weights[key] = base * (1.0 - rank / (2.0 * rungs))
    return weights


@dataclass(frozen=True)
class StoragePlanner:
    """Plans which quality rungs to materialise per tile.

    Tiles whose popularity reaches ``hot_threshold`` get the full ladder;
    the rest keep only the floor rung(s): ``cold_rungs`` counts how many
    rungs (from the bottom) cold tiles retain. The plan never leaves a
    tile without at least one rung — every tile must remain deliverable.
    """

    qualities: tuple[Quality, ...]
    hot_threshold: float = 0.2
    cold_rungs: int = 1

    def __post_init__(self) -> None:
        if not self.qualities:
            raise ValueError("a storage plan needs at least one quality")
        if list(self.qualities) != sorted(self.qualities, reverse=True):
            raise ValueError("qualities must be ordered best first")
        if self.hot_threshold < 0.0:
            # Thresholds above 1 are legal: they mean "nothing is hot".
            raise ValueError(f"hot threshold must be >= 0, got {self.hot_threshold}")
        if not 1 <= self.cold_rungs <= len(self.qualities):
            raise ValueError(
                f"cold tiles must keep 1..{len(self.qualities)} rungs, got {self.cold_rungs}"
            )

    def plan(self, popularity: np.ndarray, grid: TileGrid) -> QualityPlan:
        """The per-tile ladder to materialise."""
        if popularity.shape != (grid.rows, grid.cols):
            raise ValueError(
                f"popularity shape {popularity.shape} does not match grid "
                f"{grid.rows}x{grid.cols}"
            )
        cold_ladder = self.qualities[-self.cold_rungs :]
        plan: QualityPlan = {}
        for tile in grid.tiles():
            hot = popularity[tile] >= self.hot_threshold
            plan[tile] = self.qualities if hot else cold_ladder
        return plan

    @staticmethod
    def storage_saved(plan: QualityPlan, sizes: dict) -> float:
        """Fraction of full-matrix bytes the plan avoids, given a dict of
        ``(tile, quality) -> bytes`` for the full matrix."""
        full = sum(sizes.values())
        kept = sum(
            size
            for (tile, quality), size in sizes.items()
            if quality in plan.get(tile, ())
        )
        if full == 0:
            raise ValueError("cannot compute savings over an empty size matrix")
        return 1.0 - kept / full
