"""The VisualCloud storage manager.

Ingests 360-degree video, segments it spatiotemporally (GOP-length
temporal windows x an angular tile grid), encodes every segment at every
rung of a quality ladder, and persists the result under the catalog with
MP4-style metadata. Reads are selective: any (window, tile, quality)
segment is one file access, found through the metadata's GOP index.

Writes are no-overwrite and versioned: re-storing a video writes only the
changed segments plus a new metadata file whose index points at old files
for unchanged content. Readers of an existing version are unaffected —
snapshot isolation by construction.

The read surface — ``build_manifest`` + ``read_segment`` — is the
:class:`~repro.core.backends.SegmentBackend` protocol (re-exported here
as :data:`SegmentBackend`): :class:`StorageManager` is its canonical
local-disk implementation, and the in-memory / remote-peer / tiered
backends in :mod:`repro.core.backends` satisfy the same contract, which
is what lets the sharded delivery tier serve segments a node does not
own.
"""

from __future__ import annotations

import hashlib
import os
import signal
import struct
import warnings
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.backends import SegmentBackend
from repro.core.catalog import Catalog
from repro.core.errors import (
    CatalogError,
    IngestError,
    SegmentCorruptError,
    SegmentNotFoundError,
    VisualCloudError,
)
from repro.geometry.grid import TileGrid
from repro.obs import MetricsRegistry
from repro.stream.dash import Manifest, SegmentKey
from repro.video.frame import Frame
from repro.video.mp4 import (
    Atom,
    Mp4File,
    make_ftyp,
    make_mvhd,
    make_stsd,
    make_stss,
    make_sv3d,
    parse_mvhd,
    parse_stsd,
    parse_stss,
    parse_sv3d,
)
from repro.video.quality import Quality
from repro.video.tiles import (
    TRANSPORTS,
    TiledGop,
    TiledVideoCodec,
    make_encode_executor,
)


@dataclass(frozen=True)
class IngestConfig:
    """How a video is segmented and encoded at ingest time.

    ``workers`` sizes the encode fan-out: every (GOP, tile) ladder of
    segments is an independent encode job, so ingest distributes them
    across that many processes. ``None`` (the default) resolves to
    ``os.cpu_count()``; ``workers=1`` is the serial path, byte-identical
    to any parallel run.

    ``transport`` picks how raw frames reach the workers: ``"auto"``
    (shared-memory blocks where the platform supports them, else
    pickling), ``"shm"``, or ``"pickle"``. Bytes are identical on every
    transport; only the IPC cost differs.

    ``checksums`` records a per-segment content checksum in the metadata
    index (default on). Readers verify it on every uncached read and the
    serve tier uses it to trigger peer read-repair; turning it off
    writes legacy-style entries (checksum 0 = unknown, never verified) —
    the ablation arm the ingest bench compares against.
    """

    grid: TileGrid = TileGrid(4, 4)
    qualities: tuple[Quality, ...] = (Quality.HIGH, Quality.LOW)
    gop_frames: int = 30
    fps: float = 30.0
    projection: str = "equirectangular"
    workers: int | None = None
    transport: str = "auto"
    checksums: bool = True

    def __post_init__(self) -> None:
        if self.gop_frames < 1:
            raise ValueError(f"gop_frames must be >= 1, got {self.gop_frames}")
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        if not self.qualities:
            raise ValueError("at least one quality is required")
        if list(self.qualities) != sorted(self.qualities, reverse=True):
            raise ValueError("qualities must be ordered best first")
        if self.workers is None:
            object.__setattr__(self, "workers", os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )

    @property
    def gop_duration(self) -> float:
        return self.gop_frames / self.fps


@dataclass(frozen=True)
class SegmentEntry:
    """Index entry for one stored segment: where, how big, and what the
    bytes must hash to (:func:`segment_checksum`; 0 = unknown/legacy)."""

    size: int
    file_version: int  # the version whose STORE wrote the bytes
    checksum: int = 0


@dataclass
class VideoMeta:
    """Parsed metadata for one version of one stored video."""

    name: str
    version: int
    width: int
    height: int
    fps: float
    grid: TileGrid
    gop_frames: int
    qualities: tuple[Quality, ...]
    projection: str
    streaming: bool
    gop_frame_counts: list[int]
    entries: dict[tuple[int, tuple[int, int], Quality], SegmentEntry] = field(
        default_factory=dict
    )

    @property
    def gop_count(self) -> int:
        return len(self.gop_frame_counts)

    @property
    def gop_duration(self) -> float:
        return self.gop_frames / self.fps

    @property
    def duration(self) -> float:
        return sum(self.gop_frame_counts) / self.fps

    def gop_start_time(self, gop: int) -> float:
        if not 0 <= gop < self.gop_count:
            raise IndexError(f"GOP {gop} outside [0, {self.gop_count})")
        return sum(self.gop_frame_counts[:gop]) / self.fps

    def gops_overlapping(self, t0: float, t1: float) -> list[int]:
        """GOP indices whose playback interval intersects ``[t0, t1)`` —
        the temporal (stss-style) index lookup."""
        if t1 <= t0:
            raise ValueError(f"empty temporal range [{t0}, {t1})")
        result = []
        start = 0.0
        for gop, frames in enumerate(self.gop_frame_counts):
            end = start + frames / self.fps
            if start < t1 and end > t0:
                result.append(gop)
            start = end
        return result


# -- metadata (de)serialisation ------------------------------------------------

_VINF = struct.Struct(">HHdBBHIB B")  # w, h, fps, rows, cols, gop_frames, version, streaming, qcount


def _build_metadata_file(meta: VideoMeta) -> Mp4File:
    vinf_payload = _VINF.pack(
        meta.width,
        meta.height,
        meta.fps,
        meta.grid.rows,
        meta.grid.cols,
        meta.gop_frames,
        meta.version,
        1 if meta.streaming else 0,
        len(meta.qualities),
    )
    vinf_payload += bytes(quality.rank for quality in meta.qualities)
    vinf_payload += struct.pack(">I", meta.gop_count)
    vinf_payload += b"".join(struct.pack(">H", count) for count in meta.gop_frame_counts)

    vcld = Atom(
        "vcld",
        children=[Atom("vinf", payload=vinf_payload), make_sv3d(meta.projection)],
    )
    traks = []
    tile_width = meta.width // meta.grid.cols
    tile_height = meta.height // meta.grid.rows
    for tile in meta.grid.tiles():
        for quality in meta.qualities:
            entries = []
            checksums = []
            for gop in range(meta.gop_count):
                entry = meta.entries.get((gop, tile, quality))
                if entry is None:
                    continue
                time_ms = int(round(meta.gop_start_time(gop) * 1000))
                entries.append((time_ms, entry.file_version, entry.size))
                checksums.append(entry.checksum)
            if not entries:
                continue
            # Content checksums ride in a sibling leaf atom (one >I per
            # stss entry, same order) rather than widening the stss
            # record: old parsers skip unknown atoms, so pre-checksum
            # readers still parse post-checksum metadata.
            csum = Atom(
                "csum",
                payload=struct.pack(">I", len(checksums))
                + b"".join(struct.pack(">I", value) for value in checksums),
            )
            traks.append(
                Atom(
                    "trak",
                    children=[
                        make_stsd("vcbd", tile_width, tile_height, meta.fps, quality.label),
                        Atom("tloc", payload=struct.pack(">BB", *tile)),
                        make_stss(entries),
                        csum,
                    ],
                )
            )
    moov = Atom(
        "moov",
        children=[make_mvhd(1000, int(round(meta.duration * 1000))), vcld] + traks,
    )
    return Mp4File(atoms=[make_ftyp("vcld"), moov])


def _parse_metadata_file(name: str, data: bytes) -> VideoMeta:
    """Parse one metadata blob, rejecting damage in a controlled way.

    Torn or bit-rotted metadata must surface as :class:`CatalogError`
    (or ``ValueError``/``EOFError`` from the MP4 layer) — never a raw
    ``struct.error`` from an unpack that ran off the end of a truncated
    payload, which callers would not recognise as corruption.
    """
    try:
        return _parse_metadata_atoms(name, data)
    except struct.error as error:
        raise CatalogError(
            f"metadata for {name!r} is truncated or damaged: {error}"
        ) from error


def _parse_metadata_atoms(name: str, data: bytes) -> VideoMeta:
    mp4 = Mp4File.parse(data)
    moov = mp4.find("moov")
    if moov is None:
        raise CatalogError(f"metadata for {name!r} has no moov atom")
    vinf = moov.find("vcld.vinf")
    sv3d = moov.find("vcld.sv3d")
    if vinf is None or sv3d is None:
        raise CatalogError(f"metadata for {name!r} is missing VisualCloud atoms")
    (
        width,
        height,
        fps,
        rows,
        cols,
        gop_frames,
        version,
        streaming,
        quality_count,
    ) = _VINF.unpack_from(vinf.payload)
    offset = _VINF.size
    ranks = vinf.payload[offset : offset + quality_count]
    offset += quality_count
    (gop_count,) = struct.unpack_from(">I", vinf.payload, offset)
    offset += 4
    frame_counts = [
        struct.unpack_from(">H", vinf.payload, offset + 2 * i)[0] for i in range(gop_count)
    ]
    all_qualities = list(Quality)
    meta = VideoMeta(
        name=name,
        version=version,
        width=width,
        height=height,
        fps=fps,
        grid=TileGrid(rows, cols),
        gop_frames=gop_frames,
        qualities=tuple(all_qualities[rank] for rank in ranks),
        projection=parse_sv3d(sv3d),
        streaming=bool(streaming),
        gop_frame_counts=frame_counts,
    )
    gop_duration_ms = gop_frames / fps * 1000
    for trak in moov.find_all("trak"):
        stsd = trak.find("stsd")
        tloc = trak.find("tloc")
        stss = trak.find("stss")
        if stsd is None or tloc is None or stss is None:
            raise CatalogError(f"metadata for {name!r} has an incomplete trak")
        quality = Quality.from_label(parse_stsd(stsd)["quality"])
        tile = tuple(struct.unpack(">BB", tloc.payload))
        csum = trak.find("csum")
        checksums: list[int] = []
        if csum is not None:
            (count,) = struct.unpack_from(">I", csum.payload)
            checksums = [
                struct.unpack_from(">I", csum.payload, 4 + 4 * i)[0]
                for i in range(count)
            ]
        for index, (time_ms, file_version, size) in enumerate(parse_stss(stss)):
            gop = int(round(time_ms / gop_duration_ms))
            checksum = checksums[index] if index < len(checksums) else 0
            meta.entries[(gop, tile, quality)] = SegmentEntry(
                size, file_version, checksum
            )
    return meta


# -- durability substrate ------------------------------------------------------

def segment_checksum(data: bytes) -> int:
    """Content checksum for stored bytes: the first 32 bits of SHA-256.

    Stored per segment in the metadata index, carried on the wire as the
    ``X-Checksum`` response header, and verified on local read, peer
    fetch, and scrub. A cryptographic prefix (rather than a plain CRC)
    keeps single-bit, swap, and truncation errors detectable with the
    stdlib only; 0 is reserved for "unknown" (legacy entries), so a real
    checksum of 0 is remapped to 1 — a one-in-4-billion bias that keeps
    the sentinel unambiguous.
    """
    value = int.from_bytes(hashlib.sha256(data).digest()[:4], "big")
    return value or 1


def checksum_hex(data: bytes) -> str:
    """Wire form of :func:`segment_checksum`: 8 lowercase hex digits."""
    return format(segment_checksum(data), "08x")


#: Crash-point hook for durability tests: when set to an integer N, the
#: N-th atomic publish in this process is replaced by SIGKILL — the
#: hardest possible failure at a seeded write point. N=1 dies before any
#: file lands; higher N leaves N-1 completed publishes behind.
_CRASH_ENV = "REPRO_CRASH_AFTER_WRITES"
_publish_attempts = 0


def _maybe_crash() -> None:
    target = os.environ.get(_CRASH_ENV)
    if not target:
        return
    global _publish_attempts
    _publish_attempts += 1
    if _publish_attempts >= int(target):
        os.kill(os.getpid(), signal.SIGKILL)


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds (or O_RDONLY on dirs)
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse directory fsync; rename is still atomic
    finally:
        os.close(fd)


def _publish_bytes(path: Path, payload: bytes) -> None:
    """Crash-consistent write: temp file, fsync, atomic rename, dir fsync.

    After this returns, ``path`` holds exactly ``payload``; if the
    process dies at any earlier point, ``path`` is untouched and at worst
    a ``*.tmp`` orphan remains for ``fsck`` to sweep. Readers never see a
    partial file.
    """
    _maybe_crash()
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _marker_payload(metadata_blob: bytes) -> bytes:
    """Commit-marker contents: the metadata file's own content checksum,
    so fsck can detect bit rot in the metadata file itself."""
    return (checksum_hex(metadata_blob) + "\n").encode("ascii")


def _tag_repairable(error: SegmentNotFoundError) -> SegmentNotFoundError:
    """Mark a storage error as peer-repairable (see ``core/errors.py``):
    the index references the segment, only the local bytes failed."""
    error.repairable = True
    return error


def _chunk(frames: Iterable[Frame], size: int) -> Iterator[list[Frame]]:
    batch: list[Frame] = []
    for frame in frames:
        batch.append(frame)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


class StorageManager:
    """Segment store + metadata index over a :class:`Catalog` directory.

    ``cache_bytes`` sizes the in-memory segment buffer pool
    (:class:`repro.core.cache.LruSegmentCache`); pass 0 to disable caching
    (every read hits the filesystem — the configuration the cache
    benchmark compares against).

    ``registry`` is the metrics registry every read/ingest timing and the
    cache's accounting report into; by default the manager owns one
    (``self.metrics``), and :class:`~repro.core.server.VisualCloud`
    passes a database-wide registry so storage, delivery, and prediction
    metrics export together.

    ``verify_checksums`` gates read-path content verification: every
    uncached :meth:`read_segment` hashes the bytes it loaded and compares
    against the index entry's recorded checksum (entries with checksum 0
    — legacy or ``checksums=False`` ingests — are never verified). Off
    is the bench ablation arm; the corruption-detection guarantees assume
    it stays on.
    """

    def __init__(
        self,
        root: Path | str,
        cache_bytes: int = 8 * 1024 * 1024,
        registry: MetricsRegistry | None = None,
        verify_checksums: bool = True,
    ) -> None:
        from repro.core.cache import LruSegmentCache

        self.catalog = Catalog(root)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.verify_checksums = verify_checksums
        self._drop_listeners: list = []
        self._meta_cache: dict[tuple[str, int], VideoMeta] = {}
        self.segment_cache = (
            LruSegmentCache(cache_bytes, registry=self.metrics)
            if cache_bytes > 0
            else None
        )
        # Hot-path series, bound once: read_segment runs per request on
        # the serve path, and a get-or-create plus label canonicalisation
        # per call is measurable at saturation.
        self._segments_read = self.metrics.counter(
            "storage.segments_read", "segment reads served"
        ).labels()
        self._bytes_read = self.metrics.counter(
            "storage.bytes_read", "segment bytes served"
        ).labels()
        self._windows_assembled = self.metrics.counter(
            "storage.windows_assembled", "delivery windows built"
        ).labels()

    # -- catalog passthroughs -------------------------------------------------

    def exists(self, name: str) -> bool:
        return self.catalog.exists(name)

    def list_videos(self) -> list[str]:
        return self.catalog.list_videos()

    def drop(self, name: str) -> None:
        self.catalog.drop(name)
        self._meta_cache = {
            key: value for key, value in self._meta_cache.items() if key[0] != name
        }
        if self.segment_cache is not None:
            self.segment_cache.invalidate_prefix(name)
        # Layers holding derived copies of this video's bytes (the serve
        # tier's pinned hot set, peer caches) invalidate through these —
        # without them a dropped-then-recreated name could keep serving
        # the old video's RAM copies.
        for listener in list(self._drop_listeners):
            listener(name)

    def add_drop_listener(self, listener) -> None:
        """Register ``listener(name)`` to run after every :meth:`drop`.

        Callbacks run on the dropping thread and must not block; a serve
        tier schedules its hot-set invalidation onto its own event loop.
        """
        self._drop_listeners.append(listener)

    def remove_drop_listener(self, listener) -> None:
        if listener in self._drop_listeners:
            self._drop_listeners.remove(listener)

    # -- ingest ----------------------------------------------------------------

    def ingest(
        self,
        name: str,
        frames: Iterable[Frame],
        config: IngestConfig,
        streaming: bool = False,
        quality_plan: dict[tuple[int, int], tuple[Quality, ...]] | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        """Segment, encode, and commit version 1 of a new video.

        ``quality_plan`` optionally restricts which rungs are materialised
        per tile (popularity-driven partial storage); unplanned tiles get
        the config's full ladder. Every planned ladder must be a subset of
        the config's qualities.

        ``workers`` overrides ``config.workers`` for this call: the encode
        of each (GOP, tile, quality) segment fans out across that many
        processes, sharing one pool for the whole ingest. Output bytes are
        identical at any worker count.
        """
        if self.catalog.exists(name):
            raise CatalogError(f"video {name!r} already exists; use append or store")
        if quality_plan is not None:
            for tile, ladder in quality_plan.items():
                if not ladder:
                    raise IngestError(f"quality plan leaves tile {tile} with no rungs")
                if not set(ladder) <= set(config.qualities):
                    raise IngestError(
                        f"quality plan for tile {tile} includes rungs outside the "
                        "ingest ladder"
                    )
        gops = _chunk(frames, config.gop_frames)
        first = next(gops, None)
        if first is None:
            raise IngestError(f"cannot ingest {name!r}: the frame source is empty")
        self.catalog.create(name)
        try:
            with self.metrics.span("storage.ingest", video=name, phase="ingest"):
                return self._write_version(
                    name,
                    version=1,
                    config=config,
                    gop_batches=self._prepend(first, gops),
                    base_meta=None,
                    streaming=streaming,
                    quality_plan=quality_plan,
                    workers=workers,
                )
        except Exception:
            self.catalog.drop(name)
            raise

    @staticmethod
    def _prepend(first: list[Frame], rest: Iterator[list[Frame]]) -> Iterator[list[Frame]]:
        yield first
        yield from rest

    def _write_version(
        self,
        name: str,
        version: int,
        config: IngestConfig,
        gop_batches: Iterable[list[Frame]],
        base_meta: VideoMeta | None,
        streaming: bool,
        quality_plan: dict[tuple[int, int], tuple[Quality, ...]] | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        codec: TiledVideoCodec | None = None
        if base_meta is None:
            meta = None
            next_gop = 0
        else:
            meta = base_meta
            next_gop = meta.gop_count
        if workers is None:
            workers = config.workers or 1
        # Each (GOP, tile) is one encode job covering the tile's whole
        # quality ladder, so raw bytes reach a worker once per tile. One
        # pool is amortised over every GOP of the version.
        executor = make_encode_executor(
            workers, config.grid.tile_count, registry=self.metrics
        )
        # Per-tile ladders are fixed for the whole version: the full
        # config ladder, or the planned subset (validated non-empty by
        # ingest) under popularity-driven partial storage.
        ladder_map: dict[tuple[int, int], tuple[Quality, ...]] = {}
        for tile in config.grid.tiles():
            if quality_plan is None:
                ladder_map[tile] = config.qualities
            else:
                ladder_map[tile] = tuple(
                    quality
                    for quality in config.qualities
                    if quality in quality_plan.get(tile, config.qualities)
                )
        new_entries: dict[tuple[int, tuple[int, int], Quality], SegmentEntry] = {}
        frame_counts: list[int] = []
        width = height = 0
        try:
            for gop_index, batch in enumerate(gop_batches, start=next_gop):
                if codec is None:
                    width, height = batch[0].width, batch[0].height
                    if base_meta is not None and (width, height) != (
                        base_meta.width,
                        base_meta.height,
                    ):
                        raise IngestError(
                            f"appended frames are {width}x{height}, video is "
                            f"{base_meta.width}x{base_meta.height}"
                        )
                    codec = TiledVideoCodec(config.grid, width, height)
                with self.metrics.span(
                    "storage.ingest.encode", video=name, gop=gop_index
                ):
                    try:
                        payloads = codec.encode_gop_ladders(
                            batch,
                            ladder_map,
                            workers=workers,
                            executor=executor,
                            transport=config.transport,
                            registry=self.metrics,
                        )
                    except BrokenProcessPool:
                        # Workers died mid-version (OOM kill, sandbox
                        # policy). Finish the job serially — same bytes,
                        # honest accounting — instead of failing ingest.
                        warnings.warn(
                            "encode worker pool broke mid-ingest; finishing "
                            "serially",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        self.metrics.counter(
                            "ingest.pool_fallback",
                            "encode pools that could not start and fell back "
                            "to serial",
                        ).inc()
                        executor.shutdown(wait=False)
                        executor = None
                        payloads = codec.encode_gop_ladders(
                            batch, ladder_map, workers=1, registry=self.metrics
                        )
                with self.metrics.span(
                    "storage.ingest.write", video=name, gop=gop_index
                ):
                    for quality in config.qualities:
                        for tile in config.grid.tiles():
                            payload = payloads.get((tile, quality))
                            if payload is None:
                                continue
                            path = self.catalog.segment_path(
                                name, gop_index, tile, quality, version
                            )
                            _publish_bytes(path, payload)
                            new_entries[(gop_index, tile, quality)] = SegmentEntry(
                                len(payload),
                                version,
                                segment_checksum(payload) if config.checksums else 0,
                            )
                            self.metrics.counter(
                                "storage.segments_written", "segment files written"
                            ).inc()
                            self.metrics.counter(
                                "storage.bytes_written", "segment bytes written"
                            ).inc(len(payload))
                frame_counts.append(len(batch))
        finally:
            if executor is not None:
                executor.shutdown()
        if codec is None:
            raise IngestError(f"no frames to write for {name!r}")

        if base_meta is None:
            result = VideoMeta(
                name=name,
                version=version,
                width=width,
                height=height,
                fps=config.fps,
                grid=config.grid,
                gop_frames=config.gop_frames,
                qualities=config.qualities,
                projection=config.projection,
                streaming=streaming,
                gop_frame_counts=frame_counts,
                entries=new_entries,
            )
        else:
            result = VideoMeta(
                name=name,
                version=version,
                width=base_meta.width,
                height=base_meta.height,
                fps=base_meta.fps,
                grid=base_meta.grid,
                gop_frames=base_meta.gop_frames,
                qualities=base_meta.qualities,
                projection=base_meta.projection,
                streaming=streaming,
                gop_frame_counts=base_meta.gop_frame_counts + frame_counts,
                entries={**base_meta.entries, **new_entries},
            )
        self._commit_meta(result)
        return result

    def append(
        self,
        name: str,
        frames: Iterable[Frame],
        workers: int | None = None,
        transport: str = "auto",
    ) -> VideoMeta:
        """Extend a (live) video with more frames, as a new version.

        New GOPs are encoded with the video's original segmentation
        parameters; prior segments are shared, not rewritten. ``workers``
        and ``transport`` parallelise the new GOPs' segment encodes as in
        :meth:`ingest`.
        """
        base = self.meta(name)
        if base.gop_frame_counts[-1] != base.gop_frames:
            raise IngestError(
                f"cannot append to {name!r}: its last GOP is partial "
                f"({base.gop_frame_counts[-1]} of {base.gop_frames} frames), and "
                "appended GOPs would break the temporal index alignment"
            )
        config = IngestConfig(
            grid=base.grid,
            qualities=base.qualities,
            gop_frames=base.gop_frames,
            fps=base.fps,
            projection=base.projection,
            transport=transport,
        )
        # Preserve a partial (popularity-planned) store's per-tile ladders:
        # new GOPs materialise exactly the rungs the existing ones have.
        observed: dict[tuple[int, int], set[Quality]] = {}
        for (gop, tile, quality) in base.entries:
            if gop == 0:
                observed.setdefault(tile, set()).add(quality)
        quality_plan = {
            tile: tuple(sorted(ladder, reverse=True)) for tile, ladder in observed.items()
        }
        with self.metrics.span("storage.ingest", video=name, phase="append"):
            return self._write_version(
                name,
                version=base.version + 1,
                config=config,
                gop_batches=_chunk(frames, base.gop_frames),
                base_meta=base,
                streaming=True,
                quality_plan=quality_plan,
                workers=workers,
            )

    def reingest(
        self,
        name: str,
        config: IngestConfig | None = None,
        workers: int | None = None,
        transport: str = "auto",
    ) -> VideoMeta:
        """Re-encode a stored video's content as a new version.

        Decodes each window at the best quality stored per tile and
        re-runs the segmentation pipeline — the way to change a video's
        grid, ladder, or GOP length after the fact. Without ``config`` the
        original segmentation parameters are reused (a pure re-encode;
        ``transport`` then picks the frame transport as in
        :meth:`ingest`). Old versions keep serving until :meth:`vacuum`
        reclaims them. ``workers`` parallelises the segment encodes as in
        :meth:`ingest`.
        """
        base = self.meta(name)
        if config is None:
            config = IngestConfig(
                grid=base.grid,
                qualities=base.qualities,
                gop_frames=base.gop_frames,
                fps=base.fps,
                projection=base.projection,
                transport=transport,
            )

        def decoded_frames() -> Iterator[Frame]:
            for gop in range(base.gop_count):
                best = {}
                for tile in base.grid.tiles():
                    stored = [
                        quality
                        for quality in base.qualities
                        if (gop, tile, quality) in base.entries
                    ]
                    if not stored:
                        raise SegmentNotFoundError(
                            f"{name!r} cannot be reingested: (gop={gop}, tile={tile}) "
                            "has no stored quality"
                        )
                    best[tile] = stored[0]  # qualities are ordered best first
                yield from self.read_window(name, gop, best, base.version).decode()

        with self.metrics.span("storage.ingest", video=name, phase="reingest"):
            return self._write_version(
                name,
                version=base.version + 1,
                config=config,
                gop_batches=_chunk(decoded_frames(), config.gop_frames),
                base_meta=None,
                streaming=base.streaming,
                workers=workers,
            )

    def store_windows(
        self,
        name: str,
        windows: list[TiledGop],
        fps: float,
        qualities: tuple[Quality, ...] | None = None,
    ) -> VideoMeta:
        """Persist already-encoded windows (the query layer's STORE).

        Creates version 1 for a new name, or the next version of an
        existing one. Each window's tiles may be at heterogeneous
        qualities; the index records each tile's actual quality.
        """
        if not windows:
            raise IngestError(f"cannot store zero windows as {name!r}")
        layout = windows[0]
        for index, window in enumerate(windows[1:], start=1):
            if (window.width, window.height, window.grid) != (
                layout.width,
                layout.height,
                layout.grid,
            ):
                raise IngestError(f"window {index} has a different layout than window 0")
        if self.catalog.exists(name):
            version = self.catalog.latest_version(name) + 1
        else:
            self.catalog.create(name)
            version = 1
        entries: dict[tuple[int, tuple[int, int], Quality], SegmentEntry] = {}
        observed: set[Quality] = set()
        for gop_index, window in enumerate(windows):
            for tile, payload in window.payloads.items():
                quality = window.tile_quality(*tile)
                observed.add(quality)
                path = self.catalog.segment_path(name, gop_index, tile, quality, version)
                _publish_bytes(path, payload)
                entries[(gop_index, tile, quality)] = SegmentEntry(
                    len(payload), version, segment_checksum(payload)
                )
        meta = VideoMeta(
            name=name,
            version=version,
            width=layout.width,
            height=layout.height,
            fps=fps,
            grid=layout.grid,
            gop_frames=layout.frame_count,
            qualities=qualities or tuple(sorted(observed, reverse=True)),
            projection="equirectangular",
            streaming=False,
            gop_frame_counts=[window.frame_count for window in windows],
            entries=entries,
        )
        self._commit_meta(meta)
        return meta

    def _commit_meta(self, meta: VideoMeta) -> None:
        path = self.catalog.metadata_path(meta.name, meta.version)
        if path.exists():
            raise CatalogError(
                f"refusing to overwrite committed metadata {path.name} of {meta.name!r}"
            )
        with self.metrics.span(
            "storage.ingest.commit", video=meta.name, version=meta.version
        ):
            # Segments are already durable; the metadata publish makes
            # the version parseable and the marker publish commits it —
            # both atomic renames, so a crash between them leaves a
            # complete-but-uncommitted version that fsck rolls forward.
            blob = _build_metadata_file(meta).serialize()
            _publish_bytes(path, blob)
            _publish_bytes(
                self.catalog.marker_path(meta.name, meta.version),
                _marker_payload(blob),
            )
        self._meta_cache[(meta.name, meta.version)] = meta
        self.metrics.counter("storage.versions_committed", "metadata commits").inc()

    # -- reads -------------------------------------------------------------------

    def meta(self, name: str, version: int | None = None) -> VideoMeta:
        """Metadata for a version (latest if unspecified), cached."""
        if version is None:
            version = self.catalog.latest_version(name)
        key = (name, version)
        if key not in self._meta_cache:
            path = self.catalog.metadata_path(name, version)
            if not path.exists():
                raise CatalogError(f"video {name!r} has no version {version}")
            self._meta_cache[key] = _parse_metadata_file(name, path.read_bytes())
        return self._meta_cache[key]

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        version: int | None = None,
    ) -> bytes:
        """One segment's encoded bytes, located via the metadata index.

        Served from the in-memory buffer pool on a hit; segment files are
        immutable once written (no-overwrite storage), so cached bytes can
        never go stale.
        """
        meta = self.meta(name, version)
        entry = meta.entries.get((gop, tile, quality))
        if entry is None:
            raise SegmentNotFoundError(
                f"{name!r} v{meta.version} has no segment (gop={gop}, tile={tile}, "
                f"quality={quality.label})"
            )
        path = self.catalog.segment_path(name, gop, tile, quality, entry.file_version)

        def load() -> bytes:
            # All failures below are tagged repairable: the index has an
            # entry, so an intact copy may exist on a peer owner.
            try:
                data = path.read_bytes()
            except FileNotFoundError as error:
                # The index said the segment exists but the file is gone —
                # keep the storage boundary's error contract (see
                # core/errors.py) instead of leaking the OS exception.
                raise _tag_repairable(
                    SegmentNotFoundError(
                        f"segment file {path.name} of {name!r} is missing from disk"
                    )
                ) from error
            except OSError as error:
                raise _tag_repairable(
                    SegmentNotFoundError(
                        f"segment file {path.name} of {name!r} could not be read: "
                        f"{error}"
                    )
                ) from error
            if len(data) != entry.size:
                raise _tag_repairable(
                    SegmentCorruptError(
                        f"segment {path.name} is {len(data)} bytes, index says "
                        f"{entry.size}"
                    )
                )
            if (
                self.verify_checksums
                and entry.checksum
                and segment_checksum(data) != entry.checksum
            ):
                raise _tag_repairable(
                    SegmentCorruptError(
                        f"segment {path.name} of {name!r} fails its content "
                        "checksum (bit rot or torn write)"
                    )
                )
            return data

        with self.metrics.span(
            "storage.read_segment", video=name, gop=gop, tile=tile, quality=quality.label
        ):
            if self.segment_cache is None:
                data = load()
            else:
                cache_key = SegmentKey(gop, tile, quality).cache_key(
                    name, entry.file_version
                )
                # Single-flight: concurrent sessions missing on the same
                # segment share one file read instead of stampeding the
                # filesystem.
                data = self.segment_cache.get_or_load(cache_key, load)
        self._segments_read.inc()
        self._bytes_read.inc(len(data))
        return data

    def read_window(
        self,
        name: str,
        gop: int,
        quality_map: dict[tuple[int, int], Quality],
        version: int | None = None,
    ) -> TiledGop:
        """Assemble a delivery window at a per-tile quality assignment.

        This is byte assembly only — the homomorphic TILEUNION: each tile's
        stored bytes are placed into the window container untouched.
        """
        meta = self.meta(name, version)
        with self.metrics.span("storage.read_window", video=name, gop=gop):
            payloads = {
                tile: self.read_segment(name, gop, tile, quality, version)
                for tile, quality in quality_map.items()
            }
        self._windows_assembled.inc()
        return TiledGop(
            width=meta.width,
            height=meta.height,
            grid=meta.grid,
            frame_count=meta.gop_frame_counts[gop],
            payloads=payloads,
        )

    def decode_window(
        self, name: str, gop: int, quality: Quality, version: int | None = None
    ) -> list[Frame]:
        """Decode a full window at a uniform quality (reference reads)."""
        meta = self.meta(name, version)
        quality_map = {tile: quality for tile in meta.grid.tiles()}
        return self.read_window(name, gop, quality_map, version).decode()

    def build_manifest(self, name: str, version: int | None = None) -> Manifest:
        """The DASH-style manifest a streaming session consumes.

        Every (window, tile) must have at least one stored quality; gaps
        in the ladder (popularity-planned partial stores) are legal and
        resolve at request time via :meth:`Manifest.resolve`.
        """
        meta = self.meta(name, version)
        sizes: dict[SegmentKey, int] = {}
        for gop in range(meta.gop_count):
            for tile in meta.grid.tiles():
                stored_any = False
                for quality in meta.qualities:
                    entry = meta.entries.get((gop, tile, quality))
                    if entry is None:
                        continue
                    sizes[SegmentKey(gop, tile, quality)] = entry.size
                    stored_any = True
                if not stored_any:
                    raise SegmentNotFoundError(
                        f"{name!r} is not servable: (gop={gop}, tile={tile}) has "
                        "no stored quality"
                    )
        return Manifest(
            video=name,
            width=meta.width,
            height=meta.height,
            fps=meta.fps,
            window_duration=meta.gop_duration,
            window_count=meta.gop_count,
            grid=meta.grid,
            qualities=meta.qualities,
            segment_sizes=sizes,
        )

    def total_bytes(self, name: str, version: int | None = None) -> int:
        """Total stored segment bytes for one version (storage-cost sweeps)."""
        meta = self.meta(name, version)
        return sum(entry.size for entry in meta.entries.values())

    # -- retention / garbage collection ---------------------------------------

    def vacuum(self, name: str, keep_versions: int = 1) -> tuple[int, int]:
        """Drop old versions and delete segment files nothing references.

        A no-overwrite store accretes: every STORE/append commits a new
        metadata file, and copy-on-write means old segment files stay on
        disk as long as *any* retained version points at them. ``vacuum``
        retains the newest ``keep_versions`` metadata files, then removes
        every segment file not referenced by a retained version.

        Returns ``(files_deleted, bytes_freed)``. Readers of retained
        versions are unaffected; readers pinned to dropped versions lose
        snapshot isolation — retention is the operator's contract.
        """
        if keep_versions < 1:
            raise ValueError(f"must keep at least one version, got {keep_versions}")
        versions = self.catalog.versions(name)
        retained = versions[-keep_versions:]
        dropped = versions[: -keep_versions] if len(versions) > keep_versions else []

        referenced: set[str] = set()
        for version in retained:
            meta = self.meta(name, version)
            for (gop, tile, quality), entry in meta.entries.items():
                referenced.add(
                    self.catalog.segment_path(
                        name, gop, tile, quality, entry.file_version
                    ).name
                )
        files_deleted = 0
        bytes_freed = 0
        for path in self.catalog.segments_dir(name).iterdir():
            if path.is_file() and path.name not in referenced:
                bytes_freed += path.stat().st_size
                path.unlink()
                files_deleted += 1
        for version in dropped:
            self.catalog.metadata_path(name, version).unlink()
            self.catalog.marker_path(name, version).unlink(missing_ok=True)
            self._meta_cache.pop((name, version), None)
        if self.segment_cache is not None:
            self.segment_cache.invalidate_prefix(name)
        return files_deleted, bytes_freed

    # -- durability / self-healing ---------------------------------------------

    def verify_segment_bytes(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        data: bytes,
        version: int | None = None,
    ) -> SegmentEntry:
        """Check candidate bytes against the index entry; return the entry.

        Raises :class:`SegmentNotFoundError` when the index has no such
        segment and :class:`SegmentCorruptError` when the bytes disagree
        with the recorded size or checksum — the gate every read-repair
        write must pass, so a corrupt peer copy can never overwrite disk.
        """
        meta = self.meta(name, version)
        entry = meta.entries.get((gop, tile, quality))
        if entry is None:
            raise SegmentNotFoundError(
                f"{name!r} v{meta.version} has no segment (gop={gop}, tile={tile}, "
                f"quality={quality.label})"
            )
        if len(data) != entry.size:
            raise SegmentCorruptError(
                f"candidate bytes for (gop={gop}, tile={tile}, "
                f"quality={quality.label}) of {name!r} are {len(data)} bytes, "
                f"index says {entry.size}"
            )
        if entry.checksum and segment_checksum(data) != entry.checksum:
            raise SegmentCorruptError(
                f"candidate bytes for (gop={gop}, tile={tile}, "
                f"quality={quality.label}) of {name!r} fail the index checksum"
            )
        return entry

    def repair_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        data: bytes,
        version: int | None = None,
    ) -> Path:
        """Atomically rewrite a segment's local bytes from a verified copy.

        The one sanctioned exception to no-overwrite storage: the bytes
        must pass :meth:`verify_segment_bytes` first, so the file content
        after repair is exactly what the index committed at ingest. The
        buffer pool entry is invalidated so the next read serves the
        repaired file.
        """
        entry = self.verify_segment_bytes(name, gop, tile, quality, data, version)
        path = self.catalog.segment_path(name, gop, tile, quality, entry.file_version)
        _publish_bytes(path, data)
        if self.segment_cache is not None:
            self.segment_cache.invalidate(
                SegmentKey(gop, tile, quality).cache_key(name, entry.file_version)
            )
        self.metrics.counter(
            "storage.repair_success", "segments rewritten from a verified copy"
        ).inc(video=name)
        self.metrics.counter(
            "storage.repair_bytes", "bytes rewritten by read-repair"
        ).inc(len(data))
        return path

    def fsck(self, repair: bool = False) -> dict:
        """Audit the catalog for crash debris; optionally repair it.

        Recovery rules (the commit protocol's inverse):

        * ``*.tmp`` files are torn publishes — never visible to readers,
          deleted on repair.
        * A marker without metadata is impossible under the publish order
          (metadata lands first); it is bit-rot/manual damage and is
          deleted on repair.
        * Metadata without a marker is an interrupted commit. The publish
          order guarantees the metadata file itself is complete, so fsck
          *rolls forward*: if it parses, matches every referenced segment
          file (size + checksum), it is adopted by writing its marker;
          otherwise it is rolled back (deleted). Legacy catalogs written
          before markers existed take exactly this adoption path.
        * A video directory with no committed versions (the SIGKILL-mid-
          ingest case) is dropped wholesale on repair.
        * Segment files no committed version references are orphans from
          a rolled-back version — deleted on repair.

        Returns a JSON-serialisable report; ``report["clean"]`` is True
        when nothing was found.
        """
        report: dict = {
            "videos_checked": 0,
            "orphan_tmp": [],
            "adopted_versions": [],
            "rolled_back_versions": [],
            "dangling_markers": [],
            "dropped_videos": [],
            "orphan_segments": [],
            "repair": repair,
        }
        for name in self.list_videos():
            report["videos_checked"] += 1
            video_dir = self.catalog.video_dir(name)
            for tmp in sorted(video_dir.rglob("*.tmp")):
                report["orphan_tmp"].append(str(tmp.relative_to(self.catalog.root)))
                if repair:
                    tmp.unlink()
            metadata, markers = self.catalog.scan_versions(name)
            for version in sorted(markers - metadata):
                report["dangling_markers"].append(f"{name} v{version}")
                if repair:
                    self.catalog.marker_path(name, version).unlink()
                    markers.discard(version)
            committed = metadata & markers if markers else set()
            for version in sorted(metadata - committed):
                if self._validate_version(name, version):
                    report["adopted_versions"].append(f"{name} v{version}")
                    if repair:
                        blob = self.catalog.metadata_path(name, version).read_bytes()
                        _publish_bytes(
                            self.catalog.marker_path(name, version),
                            _marker_payload(blob),
                        )
                        committed.add(version)
                else:
                    report["rolled_back_versions"].append(f"{name} v{version}")
                    if repair:
                        self.catalog.metadata_path(name, version).unlink()
                        self.catalog.marker_path(name, version).unlink(missing_ok=True)
                        self._meta_cache.pop((name, version), None)
            if not metadata or (repair and not committed):
                report["dropped_videos"].append(name)
                if repair:
                    self.drop(name)
                continue
            if repair:
                self._sweep_orphan_segments(name, sorted(committed), report)
        report["clean"] = not any(
            report[key]
            for key in (
                "orphan_tmp",
                "adopted_versions",
                "rolled_back_versions",
                "dangling_markers",
                "dropped_videos",
                "orphan_segments",
            )
        )
        return report

    def _validate_version(self, name: str, version: int) -> bool:
        """True when a version's metadata parses, matches its marker (if
        any), and every referenced segment file is intact on disk."""
        path = self.catalog.metadata_path(name, version)
        try:
            blob = path.read_bytes()
            meta = _parse_metadata_file(name, blob)
        except (OSError, CatalogError, ValueError, struct.error):
            return False
        marker = self.catalog.marker_path(name, version)
        if marker.exists():
            try:
                if marker.read_bytes() != _marker_payload(blob):
                    return False
            except OSError:
                return False
        for (gop, tile, quality), entry in meta.entries.items():
            segment = self.catalog.segment_path(
                name, gop, tile, quality, entry.file_version
            )
            try:
                data = segment.read_bytes()
            except OSError:
                return False
            if len(data) != entry.size:
                return False
            if entry.checksum and segment_checksum(data) != entry.checksum:
                return False
        return True

    def _sweep_orphan_segments(
        self, name: str, committed: list[int], report: dict
    ) -> None:
        """Delete segment files no committed version references."""
        referenced: set[str] = set()
        for version in committed:
            try:
                meta = self.meta(name, version)
            except CatalogError:
                continue
            for (gop, tile, quality), entry in meta.entries.items():
                referenced.add(
                    self.catalog.segment_path(
                        name, gop, tile, quality, entry.file_version
                    ).name
                )
        for path in sorted(self.catalog.segments_dir(name).iterdir()):
            if path.is_file() and path.name not in referenced:
                report["orphan_segments"].append(
                    str(path.relative_to(self.catalog.root))
                )
                path.unlink()

    def scrub(
        self,
        source: SegmentBackend | None = None,
        video: str | None = None,
    ) -> dict:
        """Proactive integrity walk: verify every committed segment file.

        Reads each referenced segment file directly (bypassing the buffer
        pool — the point is the disk) and checks size and checksum. With
        a ``source`` backend (a peer owner, a replica, a backup), corrupt
        segments are re-fetched, re-verified, and atomically repaired;
        without one they are only reported. Returns a deterministic
        report with per-video counts.
        """
        names = [video] if video is not None else self.list_videos()
        report: dict = {
            "segments_checked": 0,
            "corrupt": [],
            "repaired": [],
            "repair_failed": [],
        }
        for name in sorted(names):
            try:
                versions = self.catalog.versions(name)
            except CatalogError:
                continue
            seen: set[tuple[int, tuple[int, int], Quality, int]] = set()
            for version in versions:
                meta = self.meta(name, version)
                for (gop, tile, quality), entry in sorted(
                    meta.entries.items(), key=lambda item: str(item[0])
                ):
                    identity = (gop, tile, quality, entry.file_version)
                    if identity in seen:
                        continue  # shared copy-on-write file, checked once
                    seen.add(identity)
                    report["segments_checked"] += 1
                    path = self.catalog.segment_path(
                        name, gop, tile, quality, entry.file_version
                    )
                    label = f"{name}/{path.name}"
                    try:
                        data = path.read_bytes()
                    except OSError:
                        data = None
                    if (
                        data is not None
                        and len(data) == entry.size
                        and (
                            not entry.checksum
                            or segment_checksum(data) == entry.checksum
                        )
                    ):
                        continue
                    report["corrupt"].append(label)
                    if source is None:
                        continue
                    try:
                        fresh = source.read_segment(name, gop, tile, quality)
                        self.repair_segment(
                            name, gop, tile, quality, fresh, version
                        )
                    except VisualCloudError as error:
                        report["repair_failed"].append(f"{label}: {error}")
                    else:
                        report["repaired"].append(label)
        return report

    def stats(self) -> dict:
        """Operational snapshot: catalog contents and cache behaviour."""
        videos = {}
        for name in self.list_videos():
            try:
                meta = self.meta(name)
            except CatalogError:
                continue  # created but never committed
            videos[name] = {
                "version": meta.version,
                "versions": len(self.catalog.versions(name)),
                "duration_s": round(meta.duration, 3),
                "bytes": self.total_bytes(name),
                "segments": len(meta.entries),
            }
        cache = self.segment_cache
        return {
            "videos": videos,
            "cache": None
            if cache is None
            else {
                "entries": len(cache),
                "bytes": cache.size_bytes,
                "capacity": cache.capacity_bytes,
                "hit_rate": cache.stats.hit_rate,
                "evictions": cache.stats.evictions,
            },
        }
