"""Multi-session delivery over a shared bottleneck link.

The single-session streamer gives every viewer a private link; a real
edge server multiplexes all of its viewers over one uplink. This module
schedules many sessions' window transfers on a *shared*
:class:`repro.stream.network.SimulatedLink`, processing requests in
arrival order, so contention — the queueing delay one viewer's bytes
impose on another's — is modelled rather than assumed away.

The per-window logic is the single-session streamer's, restructured as a
resumable state machine so sessions interleave at window granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.storage import StorageManager
from repro.core.predictor import PredictionService
from repro.core.streamer import SessionConfig, Streamer
from repro.predict.traces import Trace
from repro.stream.abr import estimate_budget
from repro.stream.network import SimulatedLink
from repro.stream.qoe import QoEReport, WindowRecord


@dataclass
class _SessionState:
    """One viewer's progress through their video."""

    name: str
    trace: Trace
    config: SessionConfig
    manifest: object
    predictor: object
    start_offset: float  # wall time the session begins
    next_window: int = 0
    trace_cursor: int = 0
    starts: list[float] = field(default_factory=list)
    records: list[WindowRecord] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.next_window >= self.manifest.window_count

    def next_request_time(self, link_busy_until: float) -> float:
        """When this session wants its next window on the wire."""
        duration = self.manifest.window_duration
        if self.next_window == 0:
            return max(self.start_offset, 0.0)
        due = self.starts[-1] + duration
        return max(link_busy_until, due - self.config.buffer_windows * duration)


class SharedLinkStreamer:
    """Serves many sessions over one shared link, in request order."""

    def __init__(self, storage: StorageManager, prediction: PredictionService) -> None:
        self.storage = storage
        self.prediction = prediction
        self._single = Streamer(storage, prediction)

    def serve_all(
        self,
        sessions: list[tuple[str, Trace, SessionConfig]],
        link: SimulatedLink,
        start_offsets: list[float] | None = None,
    ) -> list[QoEReport]:
        """Run every session to completion over the shared ``link``.

        ``start_offsets`` staggers session arrivals (default: all at 0).
        Returns one QoE report per session, in input order.
        """
        if not sessions:
            raise ValueError("no sessions to serve")
        offsets = start_offsets or [0.0] * len(sessions)
        if len(offsets) != len(sessions):
            raise ValueError(
                f"{len(offsets)} start offsets for {len(sessions)} sessions"
            )
        states = []
        for (name, trace, config), offset in zip(sessions, offsets):
            manifest = self.storage.build_manifest(name)
            predictor = self.prediction.session_predictor(
                config.predictor, video=name, grid=manifest.grid, trace=trace
            )
            predictor.reset()
            if config.estimator is not None:
                config.estimator.reset()
            states.append(
                _SessionState(
                    name=name,
                    trace=trace,
                    config=config,
                    manifest=manifest,
                    predictor=predictor,
                    start_offset=float(offset),
                )
            )

        pending = [state for state in states if not state.finished]
        while pending:
            # Earliest requester wins the link next — FIFO service.
            state = min(pending, key=lambda s: s.next_request_time(link.busy_until))
            self._serve_one_window(state, link)
            pending = [state for state in states if not state.finished]
        return [QoEReport(state.records) for state in states]

    def _serve_one_window(self, state: _SessionState, link: SimulatedLink) -> None:
        config = state.config
        manifest = state.manifest
        duration = manifest.window_duration
        window = state.next_window
        window_start, window_end = manifest.window_interval(window)
        request_time = state.next_request_time(link.busy_until)

        # Media time within *this* session: wall time minus its playback
        # schedule, exactly as in the single-session streamer.
        media_now = Streamer._media_time(
            [start - state.start_offset for start in state.starts],
            duration,
            request_time - state.start_offset,
        )
        state.trace_cursor = Streamer._observe(
            state.predictor, state.trace, state.trace_cursor, media_now
        )
        predicted = self._single._predicted_tiles(
            state.predictor, manifest, config, window_start, window_end
        )
        # In shared mode the session's own bandwidth model is ignored: the
        # wire is the shared link. Without an estimator a session reads the
        # link's raw capacity — optimistic, since it ignores contention —
        # which is precisely why estimators matter under sharing.
        if config.estimator is not None and config.estimator.estimate() is not None:
            bandwidth_estimate = config.estimator.estimate()
        else:
            bandwidth_estimate = link.model.rate_at(request_time)
        budget = estimate_budget(bandwidth_estimate, duration, config.safety)
        quality_map = config.policy.assign(manifest, window, predicted, budget)
        quality_map = {
            tile: manifest.resolve(window, tile, quality)
            for tile, quality in quality_map.items()
        }
        size = manifest.window_size(window, quality_map)
        transfer_start = max(request_time, link.busy_until)
        delivered = link.transfer(size, request_time)
        if config.estimator is not None:
            config.estimator.observe(size, delivered - transfer_start)

        if window == 0:
            playback_start, stall = delivered, 0.0
        else:
            nominal = state.starts[-1] + duration
            playback_start = max(nominal, delivered)
            stall = playback_start - nominal
        state.starts.append(playback_start)

        visible = self._single._actual_visible(
            state.trace, manifest, config, window_start, window_end
        )
        state.records.append(
            WindowRecord(
                window=window,
                decision_time=request_time,
                request_time=request_time,
                delivered_time=delivered,
                playback_start=playback_start,
                stall_seconds=stall,
                bytes_sent=size,
                quality_map=quality_map,
                predicted_tiles=predicted,
                ladder_best=manifest.best_quality,
                visible_tiles=visible,
            )
        )
        state.next_window += 1
