"""Multi-session delivery over a shared bottleneck link.

The single-session streamer gives every viewer a private link; a real
edge server multiplexes all of its viewers over one uplink. This module
schedules many sessions' window transfers on a *shared*
:class:`repro.stream.network.SimulatedLink`, processing requests in
arrival order, so contention — the queueing delay one viewer's bytes
impose on another's — is modelled rather than assumed away.

The per-window logic is the single-session streamer's, restructured as a
resumable state machine so sessions interleave at window granularity.

Scheduling is heap-based: sessions wait in priority queues keyed by the
time they next want the link, so picking the next transfer is
O(log sessions) instead of the naive rebuild-and-scan (which made
``serve_all`` O(sessions² × windows)). The naive scan is retained as
``scheduler="naive"`` — a reference implementation the heap path is
differentially tested against.

Every window reports into the streamer's metrics registry: decision,
queue-wait, transfer, and stall timings as histograms, per-session byte
and window counters, and the shared link's utilisation.
"""

from __future__ import annotations

import copy
import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.resilience import read_window_resilient
from repro.core.storage import StorageManager
from repro.core.predictor import PredictionService
from repro.core.streamer import SessionConfig, Streamer
from repro.obs import MetricsRegistry
from repro.predict.traces import Trace
from repro.stream.abr import estimate_budget
from repro.stream.estimator import ThroughputEstimator
from repro.stream.network import SimulatedLink
from repro.stream.qoe import QoEReport, WindowRecord


@dataclass
class _SessionState:
    """One viewer's progress through their video."""

    index: int  # position in the serve_all input (labels metrics, breaks ties)
    name: str
    trace: Trace
    config: SessionConfig
    manifest: object
    predictor: object
    #: The session's private throughput estimator. Deep-copied from the
    #: config so N sessions sharing one ``SessionConfig`` do not share
    #: one estimator — a shared instance lets sessions corrupt each
    #: other's bandwidth signal (and the setup loop's reset would wipe
    #: earlier sessions' state).
    estimator: ThroughputEstimator | None
    start_offset: float  # wall time the session begins
    next_window: int = 0
    trace_cursor: int = 0
    starts: list[float] = field(default_factory=list)
    records: list[WindowRecord] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.next_window >= self.manifest.window_count

    def request_time_key(self) -> float:
        """The busy-independent component of the next request time: when
        this session *wants* its next window, ignoring link contention."""
        if self.next_window == 0:
            return max(self.start_offset, 0.0)
        duration = self.manifest.window_duration
        due = self.starts[-1] + duration
        return due - self.config.buffer_windows * duration

    def next_request_time(self, link_busy_until: float) -> float:
        """When this session wants its next window on the wire."""
        key = self.request_time_key()
        if self.next_window == 0:
            return key
        return max(link_busy_until, key)


class SharedLinkStreamer:
    """Serves many sessions over one shared link, in request order."""

    def __init__(
        self,
        storage: StorageManager,
        prediction: PredictionService,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.storage = storage
        self.prediction = prediction
        self.metrics = (
            registry
            if registry is not None
            else getattr(storage, "metrics", None) or MetricsRegistry()
        )
        self._single = Streamer(storage, prediction, registry=self.metrics)

    def serve_all(
        self,
        sessions: list[tuple[str, Trace, SessionConfig]],
        link: SimulatedLink,
        start_offsets: list[float] | None = None,
        scheduler: str = "heap",
    ) -> list[QoEReport]:
        """Run every session to completion over the shared ``link``.

        ``start_offsets`` staggers session arrivals (default: all at 0).
        ``scheduler`` selects ``"heap"`` (the default, O(log sessions)
        per window) or ``"naive"`` (the reference rebuild-and-scan; same
        schedule, kept for differential testing). Returns one QoE report
        per session, in input order.
        """
        if not sessions:
            raise ValueError("no sessions to serve")
        if scheduler not in ("heap", "naive"):
            raise ValueError(f"unknown scheduler {scheduler!r}; use 'heap' or 'naive'")
        offsets = start_offsets or [0.0] * len(sessions)
        if len(offsets) != len(sessions):
            raise ValueError(
                f"{len(offsets)} start offsets for {len(sessions)} sessions"
            )
        states = []
        for index, ((name, trace, config), offset) in enumerate(zip(sessions, offsets)):
            manifest = self.storage.build_manifest(name)
            predictor = self.prediction.session_predictor(
                config.predictor, video=name, grid=manifest.grid, trace=trace
            )
            predictor.reset()
            # Each session gets a private copy of the configured
            # estimator; the caller's object is never reset or fed.
            estimator = copy.deepcopy(config.estimator)
            if estimator is not None:
                estimator.reset()
            states.append(
                _SessionState(
                    index=index,
                    name=name,
                    trace=trace,
                    config=config,
                    manifest=manifest,
                    predictor=predictor,
                    estimator=estimator,
                    start_offset=float(offset),
                )
            )
        self.metrics.counter("stream.sessions", "streaming sessions started").inc(
            len(states), mode="shared"
        )

        active_before = self.metrics.counter(
            "sharedlink.active_seconds", "link time spent transferring"
        ).total()
        if scheduler == "naive":
            self._run_naive(states, link)
        else:
            self._run_heap(states, link)
        active = (
            self.metrics.counter("sharedlink.active_seconds").total() - active_before
        )
        if link.busy_until > 0:
            self.metrics.gauge(
                "sharedlink.utilisation",
                "fraction of the link's makespan spent transferring (last run)",
            ).set(active / link.busy_until)
        return [QoEReport(state.records) for state in states]

    def _run_naive(self, states: list[_SessionState], link: SimulatedLink) -> None:
        """Reference scheduler: rescan every unfinished session per window."""
        pending = [state for state in states if not state.finished]
        while pending:
            # Earliest requester wins the link next — FIFO service.
            state = min(pending, key=lambda s: s.next_request_time(link.busy_until))
            self._serve_one_window(state, link)
            pending = [state for state in states if not state.finished]

    def _run_heap(self, states: list[_SessionState], link: SimulatedLink) -> None:
        """Heap scheduler, schedule-identical to :meth:`_run_naive`.

        Three pools mirror how ``next_request_time`` values behave:

        * ``unstarted`` — window-0 sessions; their request time is the
          raw start offset (*not* clamped to the link's busy time), so
          they are ordered by ``(offset, index)`` directly.
        * ``waiting`` — started sessions whose desired time is still in
          the future (key > busy): effective time is the key itself.
        * ``ready`` — started sessions whose desired time has passed
          (key <= busy): their effective time is the link's busy time,
          identical for all, so only the session index orders them.

        The naive loop's ``min`` ties break on input order; comparing the
        three pool heads by ``(effective_time, index)`` reproduces that
        exactly, which the differential test asserts.
        """
        unstarted = [
            (state.request_time_key(), state.index)
            for state in states
            if not state.finished
        ]
        heapq.heapify(unstarted)
        waiting: list[tuple[float, int]] = []
        ready: list[int] = []
        by_index = {state.index: state for state in states}

        while unstarted or waiting or ready:
            busy = link.busy_until
            while waiting and waiting[0][0] <= busy:
                _, index = heapq.heappop(waiting)
                heapq.heappush(ready, index)
            candidates: list[tuple[float, int, list]] = []
            if unstarted:
                candidates.append((unstarted[0][0], unstarted[0][1], unstarted))
            if ready:
                candidates.append((busy, ready[0], ready))
            if waiting:
                candidates.append((waiting[0][0], waiting[0][1], waiting))
            _, index, pool = min(candidates, key=lambda item: (item[0], item[1]))
            heapq.heappop(pool)
            state = by_index[index]
            self._serve_one_window(state, link)
            if not state.finished:
                key = state.request_time_key()
                if key <= link.busy_until:
                    heapq.heappush(ready, state.index)
                else:
                    heapq.heappush(waiting, (key, state.index))

    def _serve_one_window(self, state: _SessionState, link: SimulatedLink) -> None:
        config = state.config
        manifest = state.manifest
        duration = manifest.window_duration
        window = state.next_window
        window_start, window_end = manifest.window_interval(window)
        request_time = state.next_request_time(link.busy_until)

        # Media time within *this* session: wall time minus its playback
        # schedule, exactly as in the single-session streamer.
        decision_started = time.perf_counter()
        media_now = Streamer._media_time(
            [start - state.start_offset for start in state.starts],
            duration,
            request_time - state.start_offset,
        )
        state.trace_cursor = Streamer._observe(
            state.predictor, state.trace, state.trace_cursor, media_now
        )
        predicted = self._single._predicted_tiles(
            state.predictor, manifest, config, window_start, window_end
        )
        # In shared mode the session's own bandwidth model is ignored: the
        # wire is the shared link. Without an estimator a session reads the
        # link's raw capacity — optimistic, since it ignores contention —
        # which is precisely why estimators matter under sharing.
        if state.estimator is not None and state.estimator.estimate() is not None:
            bandwidth_estimate = state.estimator.estimate()
        else:
            bandwidth_estimate = link.model.rate_at(request_time)
        budget = estimate_budget(bandwidth_estimate, duration, config.safety)
        quality_map = config.policy.assign(manifest, window, predicted, budget)
        quality_map = {
            tile: manifest.resolve(window, tile, quality)
            for tile, quality in quality_map.items()
        }
        self.metrics.histogram(
            "stream.decision_seconds", "wall time spent predicting + assigning"
        ).observe(time.perf_counter() - decision_started, mode="shared")
        # Assemble the payload the wire carries: real segment reads through
        # the shared cache, which is how concurrent viewers of the same
        # content amortise storage work. Resilient, exactly as in the
        # single-session streamer: retry transient errors, degrade or
        # skip per tile rather than aborting every viewer on this link.
        requested_map = quality_map
        result = read_window_resilient(
            self.storage,
            manifest,
            state.name,
            window,
            requested_map,
            policy=config.retry,
            metrics=self.metrics,
        )
        quality_map = result.quality_map
        size = manifest.window_size(window, quality_map)
        transfer_start = max(request_time, link.busy_until)
        delivered = link.transfer(size, request_time)
        if state.estimator is not None:
            state.estimator.observe(size, delivered - transfer_start)

        if window == 0:
            playback_start, stall = delivered, 0.0
        else:
            nominal = state.starts[-1] + duration
            playback_start = max(nominal, delivered)
            stall = playback_start - nominal
        state.starts.append(playback_start)

        session = f"{state.name}#{state.index}"
        self.metrics.counter("stream.windows", "delivery windows served").inc(
            session=session
        )
        self.metrics.counter("stream.bytes_sent", "media bytes put on the wire").inc(
            size, session=session
        )
        self.metrics.histogram(
            "stream.queue_seconds", "simulated wait for the link per window"
        ).observe(transfer_start - request_time, mode="shared")
        self.metrics.histogram(
            "stream.transfer_seconds", "simulated on-the-wire time per window"
        ).observe(delivered - transfer_start, mode="shared")
        self.metrics.histogram(
            "stream.stall_seconds", "simulated rebuffering per window"
        ).observe(stall, mode="shared")
        if stall > 1e-9:
            self.metrics.counter("stream.stalls", "windows that rebuffered").inc(
                session=session
            )
        self.metrics.counter("sharedlink.active_seconds").inc(delivered - transfer_start)
        self.metrics.counter("sharedlink.bytes_sent", "bytes through the shared link").inc(size)

        visible = self._single._actual_visible(
            state.trace, manifest, config, window_start, window_end
        )
        state.records.append(
            WindowRecord(
                window=window,
                decision_time=request_time,
                request_time=request_time,
                delivered_time=delivered,
                playback_start=playback_start,
                stall_seconds=stall,
                bytes_sent=size,
                quality_map=quality_map,
                predicted_tiles=predicted,
                ladder_best=manifest.best_quality,
                visible_tiles=visible,
                requested_map=requested_map,
                events=result.events,
            )
        )
        state.next_window += 1
