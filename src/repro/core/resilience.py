"""Resilient window assembly: bounded retry, then graceful degradation.

Delivery used to propagate the first storage exception and abort the
whole session — one truncated segment file killed a viewer. Because the
store encodes every (GOP, tile, quality) segment independently, failure
handling can be *per tile*: a transient read error is retried with
bounded backoff, a persistent one walks down the tile's stored quality
ladder (never up — a budgeted request must not silently upgrade), and a
tile whose every rung is unreadable is skipped with a recorded event.
The session always terminates with a :class:`~repro.stream.qoe.QoEReport`
whose :class:`~repro.stream.qoe.DegradationEvent` trail says exactly what
was sacrificed, and the ``obs`` registry counts every retry, degradation,
and give-up.

Both streamers (:class:`repro.core.streamer.Streamer` and
:class:`repro.core.multisession.SharedLinkStreamer`) assemble windows
through :func:`read_window_resilient`. With a healthy store the function
performs exactly the reads ``StorageManager.read_window`` would — same
segments, same order — so fault-free delivery is byte-identical to the
historical path (the differential test in ``tests/test_resilience.py``
pins this).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import SegmentNotFoundError, TransientSegmentError
from repro.obs import MetricsRegistry
from repro.stream.dash import Manifest
from repro.stream.qoe import DegradationEvent
from repro.video.quality import Quality


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient segment reads.

    ``attempts`` is the *total* number of tries per (tile, quality) —
    ``attempts=3`` means one initial read plus up to two retries. The
    delay before retry ``n`` (1-based) is
    ``min(base_delay * multiplier ** (n - 1), max_delay)``.

    The default ``base_delay`` is 0: link time is simulated in this
    system, so wall-clock sleeping between retries buys determinism
    nothing and slows the harness — the *bound* (attempts) is what
    matters. Deployments fronting a real backend set ``base_delay > 0``;
    tests inject a recording ``sleep`` to observe the schedule.
    """

    attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 0.25
    sleep: Callable[[float], None] = _time.sleep

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")

    def delay(self, retry: int) -> float:
        """Backoff before the ``retry``-th retry (1-based)."""
        if retry < 1:
            raise ValueError(f"retry index is 1-based, got {retry}")
        return min(self.base_delay * self.multiplier ** (retry - 1), self.max_delay)

    def backoff(self, retry: int) -> None:
        delay = self.delay(retry)
        if delay > 0:
            self.sleep(delay)


#: The policy both streamers use when a session doesn't configure one.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class WindowReadResult:
    """What resilient assembly actually delivered for one window."""

    #: Tiles that shipped, at the quality that actually shipped. A subset
    #: of the requested map's tiles; values never exceed the request.
    quality_map: dict[tuple[int, int], Quality]
    payloads: dict[tuple[int, int], bytes]
    events: list[DegradationEvent] = field(default_factory=list)


def _read_with_retries(
    storage,
    name: str,
    window: int,
    tile: tuple[int, int],
    quality: Quality,
    policy: RetryPolicy,
    metrics: MetricsRegistry,
) -> tuple[bytes | None, int, int, str]:
    """Try one (tile, quality) up to ``policy.attempts`` times.

    Returns ``(data | None, attempts_used, retries_that_healed, reason)``.
    Transient errors are retried; a persistent error (or retry
    exhaustion) returns ``None`` so the caller can step down the ladder.
    """
    reason = ""
    for attempt in range(1, policy.attempts + 1):
        try:
            data = storage.read_segment(name, window, tile, quality)
        except TransientSegmentError as error:
            reason = str(error)
            metrics.counter(
                "stream.retries", "transient segment reads retried"
            ).inc(video=name)
            if attempt < policy.attempts:
                policy.backoff(attempt)
                continue
            return None, attempt, attempt - 1, reason
        except SegmentNotFoundError as error:
            # Persistent: the rung is gone or corrupt — retrying the same
            # bytes cannot help, fall through to the ladder. Repairable
            # failures (file torn or rotted *under* an intact index entry)
            # are counted separately: each is a segment a read-repairing
            # server or an operator ``scrub`` could restore, and the
            # counter is how that backlog becomes visible.
            if getattr(error, "repairable", False):
                metrics.counter(
                    "stream.repairable_failures",
                    "persistent read failures a repair pass could heal",
                ).inc(video=name)
            return None, attempt, attempt - 1, str(error)
        return data, attempt, attempt - 1, reason
    raise AssertionError("unreachable: the retry loop always returns")


def read_window_resilient(
    storage,
    manifest: Manifest,
    name: str,
    window: int,
    quality_map: dict[tuple[int, int], Quality],
    policy: RetryPolicy | None = None,
    metrics: MetricsRegistry | None = None,
) -> WindowReadResult:
    """Assemble a window, surviving missing/corrupt/flaky segment reads.

    ``quality_map`` must already be resolved against the manifest (the
    streamers resolve before calling). Per tile, in sorted tile order
    (deterministic event sequences):

    1. read the requested rung, retrying transient errors per ``policy``;
    2. on persistent failure, walk the tile's stored ladder strictly
       *below* the request, best first — a ``"degrade"`` event records
       the substitution;
    3. if every rung fails, ship the window without the tile and record
       a ``"skip"`` event.

    Exceptions other than the storage error contract (and transient
    errors) propagate: programming errors must not be eaten.
    """
    policy = policy if policy is not None else DEFAULT_RETRY_POLICY
    metrics = metrics if metrics is not None else MetricsRegistry()
    delivered: dict[tuple[int, int], Quality] = {}
    payloads: dict[tuple[int, int], bytes] = {}
    events: list[DegradationEvent] = []

    for tile in sorted(quality_map):
        requested = quality_map[tile]
        attempts_total = 0
        data, attempts, retries, reason = _read_with_retries(
            storage, name, window, tile, requested, policy, metrics
        )
        attempts_total += attempts
        if data is not None:
            delivered[tile] = requested
            payloads[tile] = data
            if retries:
                events.append(
                    DegradationEvent(
                        window=window,
                        tile=tile,
                        requested=requested,
                        delivered=requested,
                        kind="retry",
                        attempts=attempts_total,
                        reason=reason,
                    )
                )
            continue
        # The requested rung is unreadable. Only strictly-worse stored
        # rungs are candidates: never upgrade past the budget.
        fallback_reason = reason
        ladder = [
            candidate
            for candidate in manifest.available(window, tile)
            if candidate < requested
        ]
        for candidate in ladder:
            data, attempts, _, reason = _read_with_retries(
                storage, name, window, tile, candidate, policy, metrics
            )
            attempts_total += attempts
            if data is not None:
                delivered[tile] = candidate
                payloads[tile] = data
                metrics.counter(
                    "stream.degradations", "tiles shipped below the requested rung"
                ).inc(video=name)
                events.append(
                    DegradationEvent(
                        window=window,
                        tile=tile,
                        requested=requested,
                        delivered=candidate,
                        kind="degrade",
                        attempts=attempts_total,
                        reason=fallback_reason,
                    )
                )
                break
            fallback_reason = reason
        else:
            metrics.counter(
                "stream.tiles_skipped", "tiles dropped after the ladder ran dry"
            ).inc(video=name)
            events.append(
                DegradationEvent(
                    window=window,
                    tile=tile,
                    requested=requested,
                    delivered=None,
                    kind="skip",
                    attempts=attempts_total,
                    reason=fallback_reason,
                )
            )
    metrics.counter("storage.windows_assembled", "delivery windows built").inc()
    return WindowReadResult(quality_map=delivered, payloads=payloads, events=events)
