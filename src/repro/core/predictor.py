"""The server-side prediction service.

The streamer does not construct predictors directly: sessions ask this
service for one by kind, and the service injects whatever offline state
the kind needs — the Markov predictor's per-video transition matrix
(trained from historical traces of other viewers of the same content) or
the oracle's ground-truth trace.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import TileGrid
from repro.obs import MetricsRegistry
from repro.predict.predictors import (
    DeadReckoningPredictor,
    HybridPredictor,
    LinearRegressionPredictor,
    MarkovPredictor,
    OraclePredictor,
    Predictor,
    StaticPredictor,
)
from repro.predict.traces import Trace

PREDICTOR_KINDS = ("static", "deadreckoning", "linear", "hybrid", "markov", "oracle")


class PredictionService:
    """Creates per-session predictors and holds trained per-video priors."""

    def __init__(
        self,
        markov_step: float = 0.5,
        markov_coverage: float = 0.9,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.markov_step = markov_step
        self.markov_coverage = markov_coverage
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._trained: dict[tuple[str, TileGrid], np.ndarray] = {}

    def train(self, video: str, grid: TileGrid, traces: list[Trace]) -> None:
        """Train the Markov prior for one video from a trace corpus."""
        with self.metrics.span("prediction.train", video=video, traces=len(traces)):
            trainer = MarkovPredictor(grid, step_duration=self.markov_step)
            trainer.train(traces)
            self._trained[(video, grid)] = trainer.transitions
        self.metrics.counter("prediction.models_trained", "Markov priors trained").inc()

    def is_trained(self, video: str, grid: TileGrid) -> bool:
        return (video, grid) in self._trained

    def session_predictor(
        self,
        kind: str,
        video: str | None = None,
        grid: TileGrid | None = None,
        trace: Trace | None = None,
    ) -> Predictor:
        """A fresh predictor for one session.

        ``video``/``grid`` are required for ``markov`` (to look up the
        trained matrix); ``trace`` is required for ``oracle``.
        """
        if kind in PREDICTOR_KINDS:
            self.metrics.counter(
                "prediction.sessions", "session predictors handed out"
            ).inc(kind=kind)
        if kind == "static":
            return StaticPredictor()
        if kind == "deadreckoning":
            return DeadReckoningPredictor()
        if kind == "linear":
            return LinearRegressionPredictor()
        if kind == "hybrid":
            return HybridPredictor()
        if kind == "markov":
            if video is None or grid is None:
                raise ValueError("markov predictor requires video and grid")
            key = (video, grid)
            if key not in self._trained:
                raise ValueError(
                    f"no trained Markov model for video {video!r} on {grid.rows}x"
                    f"{grid.cols}; call PredictionService.train first"
                )
            return MarkovPredictor.from_transitions(
                grid,
                self._trained[key],
                step_duration=self.markov_step,
                coverage=self.markov_coverage,
            )
        if kind == "oracle":
            if trace is None:
                raise ValueError("oracle predictor requires the ground-truth trace")
            return OraclePredictor(trace)
        raise ValueError(f"unknown predictor kind {kind!r}; choose from {PREDICTOR_KINDS}")
