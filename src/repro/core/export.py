"""Single-file export/import of stored videos.

The store keeps segments as many small files for selective reads; to hand
a video to an external consumer, ``export_video`` flattens one quality
rung into a single MP4-style container: a ``moov`` describing the stream
(codec, projection, GOP index) and an ``mdat`` holding the concatenated
GOP bytes. ``import_video`` ingests such a file back into a store —
together they are the DECODE/ENCODE boundary of the system.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.errors import CatalogError
from repro.core.storage import StorageManager
from repro.video.frame import Frame
from repro.video.gop import decode_any_gop
from repro.video.mp4 import (
    Atom,
    Mp4File,
    make_ftyp,
    make_mvhd,
    make_stsd,
    make_stss,
    make_sv3d,
    parse_mvhd,
    parse_stsd,
    parse_stss,
    parse_sv3d,
)
from repro.video.quality import Quality
from repro.video.tiles import TiledGop


def export_video(
    storage: StorageManager,
    name: str,
    path: Path | str,
    quality: Quality | None = None,
    version: int | None = None,
) -> int:
    """Flatten one quality rung of a stored video into a single MP4 file.

    Each delivery window becomes one serialized tiled GOP in the ``mdat``;
    the ``stss`` index maps window start times to byte ranges within it.
    Returns the number of bytes written.
    """
    meta = storage.meta(name, version)
    quality = quality or meta.qualities[0]
    media_chunks: list[bytes] = []
    index_entries: list[tuple[int, int, int]] = []
    offset = 0
    for gop in range(meta.gop_count):
        quality_map = {tile: quality for tile in meta.grid.tiles()}
        window = storage.read_window(name, gop, quality_map, version)
        payload = window.to_bytes()
        time_ms = int(round(meta.gop_start_time(gop) * 1000))
        index_entries.append((time_ms, offset, len(payload)))
        media_chunks.append(payload)
        offset += len(payload)
    trak = Atom(
        "trak",
        children=[
            make_stsd("vctg", meta.width, meta.height, meta.fps, quality.label),
            make_stss(index_entries),
        ],
    )
    moov = Atom(
        "moov",
        children=[
            make_mvhd(1000, int(round(meta.duration * 1000))),
            Atom("vcld", children=[make_sv3d(meta.projection)]),
            trak,
        ],
    )
    mdat = Atom("mdat", payload=b"".join(media_chunks))
    data = Mp4File(atoms=[make_ftyp("vcex"), moov, mdat]).serialize()
    target = Path(path)
    target.write_bytes(data)
    return len(data)


def read_export(path: Path | str) -> tuple[dict, list[TiledGop]]:
    """Parse an exported file; returns (stream info, tiled windows)."""
    data = Path(path).read_bytes()
    mp4 = Mp4File.parse(data)
    moov = mp4.find("moov")
    mdat = mp4.find("mdat")
    if moov is None or mdat is None:
        raise CatalogError(f"{path} is not a VisualCloud export (missing moov/mdat)")
    trak = moov.find("trak")
    stsd = trak.find("stsd") if trak else None
    stss = trak.find("stss") if trak else None
    sv3d = moov.find("vcld.sv3d")
    mvhd = moov.find("mvhd")
    if stsd is None or stss is None or mvhd is None:
        raise CatalogError(f"{path} export is missing required atoms")
    info = parse_stsd(stsd)
    timescale, duration = parse_mvhd(mvhd)
    info["duration"] = duration / timescale
    info["projection"] = parse_sv3d(sv3d) if sv3d is not None else "unknown"
    windows = [
        TiledGop.from_bytes(mdat.payload[offset : offset + size])
        for _, offset, size in parse_stss(stss)
    ]
    return info, windows


def import_video(
    storage: StorageManager, name: str, path: Path | str
) -> "object":
    """Ingest an exported single-file video back into a store.

    The encoded windows are stored as-is (no transcode); the result is a
    single-quality video under ``name``.
    """
    info, windows = read_export(path)
    if not windows:
        raise CatalogError(f"{path} contains no media windows")
    return storage.store_windows(name, windows, fps=info["fps"])


def decode_export(path: Path | str) -> list[Frame]:
    """Fully decode an exported file to frames (external-consumer path)."""
    _, windows = read_export(path)
    frames: list[Frame] = []
    for window in windows:
        frames.extend(window.decode())
    return frames
