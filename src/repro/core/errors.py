"""Exception hierarchy for the VisualCloud core.

Substrate packages raise stdlib exceptions (``ValueError`` for bad
arguments, ``KeyError`` for missing pieces); the core wraps conditions
that cross component boundaries in these types so applications can catch
database-level failures without also catching programming errors.
"""


class VisualCloudError(Exception):
    """Base class for all VisualCloud database errors."""


class CatalogError(VisualCloudError):
    """A named video does not exist, already exists, or has no such version."""


class SegmentNotFoundError(VisualCloudError):
    """A (window, tile, quality) segment is absent from the store."""


class IngestError(VisualCloudError):
    """A video could not be ingested (bad dimensions, empty source, ...)."""


class QueryError(VisualCloudError):
    """A declarative query is malformed or cannot be planned."""
