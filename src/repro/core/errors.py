"""Exception hierarchy for the VisualCloud core.

Substrate packages raise stdlib exceptions (``ValueError`` for bad
arguments, ``KeyError`` for missing pieces); the core wraps conditions
that cross component boundaries in these types so applications can catch
database-level failures without also catching programming errors.
"""


class VisualCloudError(Exception):
    """Base class for all VisualCloud database errors."""


class CatalogError(VisualCloudError):
    """A named video does not exist, already exists, or has no such version."""


class SegmentNotFoundError(VisualCloudError):
    """A (window, tile, quality) segment is absent from the store.

    This is the storage boundary's error contract: *any* failure to
    produce a segment's bytes — index miss, deleted file, OS-level read
    error, or validation failure — surfaces as this type (or a subclass),
    never as a raw ``FileNotFoundError``/``OSError``.

    ``repairable`` distinguishes the two very different situations inside
    that contract. An index miss is authoritative — no replica anywhere
    holds the segment, so failover and read-repair must not be attempted.
    But when the *index* has an entry and only the local bytes are
    missing, torn, or corrupt, an intact copy may exist on a peer owner:
    storage sets ``repairable = True`` on the raised instance and the
    serve tier may heal the local copy via peer read-repair before
    answering.
    """

    #: Instance-level override: True when the metadata index references
    #: the segment but the local bytes failed (missing file / bad size /
    #: bad checksum) — i.e. a peer replica may still hold intact bytes.
    repairable = False


class SegmentCorruptError(SegmentNotFoundError):
    """A segment's bytes are present but fail validation (wrong size,
    damaged framing). A subclass of :class:`SegmentNotFoundError` because
    for a reader the effect is the same: the requested bytes cannot be
    served — but resilience layers may report the two differently."""


class TransientSegmentError(VisualCloudError):
    """A segment read failed in a way that is expected to heal (I/O
    hiccup, overloaded backend). Delivery retries these with backoff; a
    read that keeps failing is escalated to quality degradation."""


class SegmentReadTimeout(TransientSegmentError):
    """A segment read exceeded the backend's latency budget."""


class IngestError(VisualCloudError):
    """A video could not be ingested (bad dimensions, empty source, ...)."""


class QueryError(VisualCloudError):
    """A declarative query is malformed or cannot be planned."""
