"""Built-in frame transformation functions for MAP queries.

Each UDF takes a :class:`repro.video.frame.Frame` and returns a new one of
the same dimensions. They are deliberately simple — the query layer's job
is plumbing, not vision — but each is a real pixel transformation, so MAP
queries measurably cost decode + compute + re-encode.
"""

from __future__ import annotations

import numpy as np

from repro.video.frame import Frame


def grayscale(frame: Frame) -> Frame:
    """Drop the chroma signal, keeping luma untouched."""
    return Frame.from_luma(frame.y)


def invert(frame: Frame) -> Frame:
    """Photographic negative of all three planes."""
    return Frame(
        y=(255 - frame.y).astype(np.uint8),
        u=(255 - frame.u).astype(np.uint8),
        v=(255 - frame.v).astype(np.uint8),
    )


def brighten(amount: int = 32):
    """A UDF factory: shift luma by ``amount`` (clamped)."""

    def apply(frame: Frame) -> Frame:
        y = np.clip(frame.y.astype(np.int16) + amount, 0, 255).astype(np.uint8)
        return Frame(y=y, u=frame.u, v=frame.v)

    apply.__name__ = f"brighten_{amount}"
    return apply


def _convolve3(plane: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """3x3 convolution with edge replication, in float."""
    padded = np.pad(plane.astype(np.float64), 1, mode="edge")
    result = np.zeros_like(plane, dtype=np.float64)
    for dy in range(3):
        for dx in range(3):
            result += kernel[dy, dx] * padded[dy : dy + plane.shape[0], dx : dx + plane.shape[1]]
    return result


_BLUR_KERNEL = np.ones((3, 3)) / 9.0
_SHARPEN_KERNEL = np.array([[0, -1, 0], [-1, 5, -1], [0, -1, 0]], dtype=np.float64)


def blur(frame: Frame) -> Frame:
    """3x3 box blur of the luma plane (a truncated blur stencil)."""
    y = np.clip(np.round(_convolve3(frame.y, _BLUR_KERNEL)), 0, 255).astype(np.uint8)
    return Frame(y=y, u=frame.u, v=frame.v)


def sharpen(frame: Frame) -> Frame:
    """3x3 unsharp kernel on the luma plane."""
    y = np.clip(np.round(_convolve3(frame.y, _SHARPEN_KERNEL)), 0, 255).astype(np.uint8)
    return Frame(y=y, u=frame.u, v=frame.v)


def watermark(mark_luma: np.ndarray, x0: int = 0, y0: int = 0):
    """A UDF factory: stamp a small luma patch at ``(x0, y0)``.

    The patch dimensions and offsets must be even (4:2:0 alignment).
    """
    mark = np.asarray(mark_luma, dtype=np.uint8)

    def apply(frame: Frame) -> Frame:
        stamped = frame.paste(Frame.from_luma(mark), x0, y0)
        return stamped

    apply.__name__ = "watermark"
    return apply
