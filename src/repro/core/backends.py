"""The multi-backend storage read surface.

Everything that consumes stored video — the session loop
(:class:`~repro.core.streamer.Streamer`), the resilience ladder, the
segment server — reads through exactly two methods: ``build_manifest``
and ``read_segment``. This module promotes that implicit duck-typed
contract into an explicit :class:`SegmentBackend` protocol and ships the
implementations the sharded delivery fabric composes:

* :class:`LocalStorageBackend` — the canonical local-disk backend, a thin
  veneer over :class:`~repro.core.storage.StorageManager` (which itself
  satisfies the protocol; the wrapper exists so a tier can treat "this
  node's disk" as one interchangeable backend among several).
* :class:`InMemorySegmentBackend` — a RAM-resident store. Used by tests
  as a hermetic fixture and by the serve tier as the shape of a
  pre-warmed edge copy.
* :class:`RemotePeerBackend` — reads served by a sibling node over HTTP,
  with every transport failure surfacing as the PR 3 error taxonomy.
* :class:`TieredSegmentBackend` — an ordered fallthrough chain (e.g.
  memory → local disk → remote peer) with optional write-back into the
  faster tiers.

Error contract (shared with ``StorageManager.read_segment``): a backend
that *authoritatively* knows a segment does not exist raises
:class:`~repro.core.errors.SegmentNotFoundError`; one that merely cannot
answer right now raises :class:`~repro.core.errors.TransientSegmentError`
(or :class:`~repro.core.errors.SegmentReadTimeout`). The tiered backend
and the server's peer-fetch path rely on that distinction to decide
whether falling through is correct or masking data loss.

Integrity contract: every byte path into this surface is checksummed
end to end. ``StorageManager`` (and therefore ``LocalStorageBackend``)
verifies each read against the content checksum committed in the
version's metadata; :class:`RemotePeerBackend` rides
``HttpSegmentClient``, which verifies the peer's ``X-Checksum`` response
header against the received body — so the bytes a tier hands upward, or
that the read-repair path rewrites to disk, have already survived an
integrity check at their source.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.core.errors import SegmentNotFoundError, TransientSegmentError
from repro.stream.dash import Manifest, SegmentKey
from repro.video.quality import Quality

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.storage import StorageManager

__all__ = [
    "SegmentBackend",
    "LocalStorageBackend",
    "InMemorySegmentBackend",
    "RemotePeerBackend",
    "TieredSegmentBackend",
]


@runtime_checkable
class SegmentBackend(Protocol):
    """The storage read contract.

    ``StorageManager``, :class:`~repro.serve.client.RemoteStorage`, and
    every class in this module satisfy it structurally — callers written
    against the protocol run unchanged over disk, RAM, or the wire.
    """

    def build_manifest(self, name: str) -> Manifest:
        """The session-facing manifest of one video (latest version)."""
        ...  # pragma: no cover - protocol

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        version: int | None = None,
    ) -> bytes:
        """One segment's encoded bytes; raises the storage error taxonomy."""
        ...  # pragma: no cover - protocol


class LocalStorageBackend:
    """Local-disk reads: delegates to a :class:`StorageManager`.

    The storage manager keeps its buffer pool, metrics, and no-overwrite
    versioning; this wrapper only narrows the surface to the protocol so
    a tier composes it like any other backend.
    """

    def __init__(self, storage: "StorageManager") -> None:
        self.storage = storage

    def build_manifest(self, name: str) -> Manifest:
        return self.storage.build_manifest(name)

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        version: int | None = None,
    ) -> bytes:
        return self.storage.read_segment(name, gop, tile, quality, version)


class InMemorySegmentBackend:
    """A RAM-resident segment store.

    Populated explicitly (:meth:`put_manifest` / :meth:`put_segment`) or
    snapshot from another backend (:meth:`load_video`). Reads never touch
    the filesystem, which makes it both the hermetic test double and the
    write-back target of a :class:`TieredSegmentBackend`.
    """

    def __init__(self) -> None:
        self._manifests: dict[str, Manifest] = {}
        self._segments: dict[tuple[str, SegmentKey], bytes] = {}

    @property
    def size_bytes(self) -> int:
        return sum(len(data) for data in self._segments.values())

    def put_manifest(self, name: str, manifest: Manifest) -> None:
        self._manifests[name] = manifest

    def put_segment(self, name: str, key: SegmentKey, data: bytes) -> None:
        self._segments[(name, key)] = bytes(data)

    def load_video(self, source: SegmentBackend, name: str) -> int:
        """Copy one video's manifest and every listed segment from
        ``source``; returns the number of segments loaded."""
        manifest = source.build_manifest(name)
        self.put_manifest(name, manifest)
        for key in manifest.segment_sizes:
            data = source.read_segment(name, key.window, key.tile, key.quality)
            self.put_segment(name, key, data)
        return len(manifest.segment_sizes)

    def build_manifest(self, name: str) -> Manifest:
        manifest = self._manifests.get(name)
        if manifest is None:
            raise SegmentNotFoundError(f"no manifest loaded for {name!r}")
        return manifest

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        version: int | None = None,
    ) -> bytes:
        if version is not None:
            raise ValueError("the in-memory backend holds only the loaded version")
        data = self._segments.get((name, SegmentKey(gop, tile, quality)))
        if data is None:
            raise SegmentNotFoundError(
                f"{name!r} has no in-memory segment (gop={gop}, tile={tile}, "
                f"quality={quality.label})"
            )
        return data


class RemotePeerBackend:
    """Reads served by a sibling node over HTTP.

    A thin ownership-aware cousin of
    :class:`~repro.serve.client.RemoteStorage`: one keep-alive client per
    peer, lazily connected, safe to share across the server's read
    executor threads (the client serializes on its own lock). Transport
    failures surface as the storage error taxonomy — a dead peer is
    :class:`TransientSegmentError`, a peer that answers 404 is
    authoritative :class:`SegmentNotFoundError`, and a body that fails
    its ``X-Checksum`` header is :class:`TransientSegmentError` (damage
    in transit, not an authoritative verdict about the stored bytes) —
    which makes this backend safe as a read-repair source: repaired
    bytes were verified against the peer's own checksum before the
    repairer re-verifies them against the local index entry.
    """

    def __init__(self, base_url: str, timeout: float = 5.0) -> None:
        self.base_url = base_url
        self.timeout = timeout
        self._client = None

    def _connect(self):
        if self._client is None:
            # Imported lazily: core must not depend on serve at module load.
            from repro.serve.client import HttpSegmentClient

            self._client = HttpSegmentClient(self.base_url, timeout=self.timeout)
        return self._client

    def close(self) -> None:
        if self._client is not None:
            self._client.close()

    def build_manifest(self, name: str) -> Manifest:
        return self._connect().fetch_manifest(name)

    def fetch_segment_key(self, name: str, key: SegmentKey) -> bytes:
        return self._connect().fetch_segment(name, key)

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        version: int | None = None,
    ) -> bytes:
        if version is not None:
            raise ValueError("peers serve only the latest committed version")
        return self.fetch_segment_key(name, SegmentKey(gop, tile, quality))


class TieredSegmentBackend:
    """An ordered fallthrough chain of backends.

    ``read_segment`` tries each tier in order. A tier that raises
    :class:`SegmentNotFoundError` or :class:`TransientSegmentError` falls
    through to the next; when every tier fails, the *last* error is
    re-raised — not-found only if the final (authoritative) tier said so,
    transient if the chain ended on an unreachable backend. With
    ``write_back=True`` a payload found in a slow tier is offered to every
    faster tier that exposes ``put_segment``.
    """

    def __init__(self, tiers: Sequence[SegmentBackend], write_back: bool = True) -> None:
        if not tiers:
            raise ValueError("a tiered backend needs at least one tier")
        self.tiers = tuple(tiers)
        self.write_back = write_back

    def build_manifest(self, name: str) -> Manifest:
        last_error: Exception | None = None
        for tier in self.tiers:
            try:
                return tier.build_manifest(name)
            except (SegmentNotFoundError, TransientSegmentError) as error:
                last_error = error
        assert last_error is not None
        raise last_error

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        version: int | None = None,
    ) -> bytes:
        last_error: Exception | None = None
        for index, tier in enumerate(self.tiers):
            try:
                data = tier.read_segment(name, gop, tile, quality, version)
            except (SegmentNotFoundError, TransientSegmentError) as error:
                last_error = error
                continue
            if self.write_back and index > 0:
                key = SegmentKey(gop, tile, quality)
                for faster in self.tiers[:index]:
                    put = getattr(faster, "put_segment", None)
                    if put is not None:
                        put(name, key, data)
            return data
        assert last_error is not None
        raise last_error
