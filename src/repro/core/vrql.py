"""VRQL: the textual declarative query language.

The demo's successor exposes a query language whose queries look like
``Scan("v") >> Select(...) >> Map(...) >> Store("out")``. This module
gives the reproduction the same textual surface over the query algebra in
:mod:`repro.core.query`:

.. code-block:: text

    SCAN(venice) >> SELECT(time=0:2, theta=0:pi) >> MAP(grayscale) >> STORE(out)
    UNION(SCAN(base, quality=lowest), SCAN(front) >> SELECT(theta=0:pi/2))

Grammar (hand-rolled recursive descent):

.. code-block:: text

    query  := call ('>>' call)*        -- '>>' pipes the left expr into the
    call   := NAME '(' args? ')'          right call as its source
    args   := arg (',' arg)*
    arg    := query | NAME '=' value | value
    value  := range | scalar | NAME
    range  := scalar ':' scalar
    scalar := NUMBER | 'pi' | NUMBER '*' 'pi' | 'pi' '/' NUMBER
              | NUMBER '*' 'pi' '/' NUMBER

Angles accept ``pi`` arithmetic because tile boundaries live at rational
multiples of pi; a query language that made users type 3.14159... would
never hit the homomorphic fast path.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable

from repro.core import udfs
from repro.core.errors import QueryError
from repro.core.query import (
    Discretize,
    Encode,
    Expr,
    Map,
    Partition,
    Scan,
    Select,
    Store,
    Union,
)
from repro.video.frame import Frame
from repro.video.quality import Quality

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<pipe>>>)|(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)"
    r"|(?P<colon>:)|(?P<equals>=)|(?P<star>\*)|(?P<slash>/)"
    r"|(?P<number>-?\d+(?:\.\d+)?)|(?P<name>[A-Za-z_][A-Za-z0-9_.-]*))"
)

#: UDFs resolvable by name in MAP(...). Extend with :func:`register_udf`.
_UDF_REGISTRY: dict[str, Callable[[Frame], Frame]] = {
    "grayscale": udfs.grayscale,
    "invert": udfs.invert,
    "blur": udfs.blur,
    "sharpen": udfs.sharpen,
}


def register_udf(name: str, fn: Callable[[Frame], Frame]) -> None:
    """Make a frame transformation callable from ``MAP(name)`` queries."""
    if not name.isidentifier():
        raise ValueError(f"UDF name must be an identifier, got {name!r}")
    _UDF_REGISTRY[name] = fn


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].lstrip()
            if not remainder:
                break
            raise QueryError(f"VRQL: cannot tokenise {remainder[:20]!r} at offset {position}")
        for kind, value in match.groupdict().items():
            if value is not None:
                tokens.append(_Token(kind, value, match.start()))
                break
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError(f"VRQL: unexpected end of query in {self.text!r}")
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise QueryError(
                f"VRQL: expected {kind} but found {token.text!r} at offset {token.position}"
            )
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> Expr:
        expr = self._parse_pipeline()
        trailing = self._peek()
        if trailing is not None:
            raise QueryError(
                f"VRQL: trailing input {trailing.text!r} at offset {trailing.position}"
            )
        return expr

    def _parse_pipeline(self) -> Expr:
        expr = self._parse_call(source=None)
        while self._accept("pipe"):
            expr = self._parse_call(source=expr)
        return expr

    def _parse_call(self, source: Expr | None) -> Expr:
        name_token = self._expect("name")
        operator = name_token.text.upper()
        self._expect("lparen")
        positional, keyword = self._parse_args()
        self._expect("rparen")
        return self._build(operator, source, positional, keyword, name_token.position)

    def _parse_args(self) -> tuple[list, dict]:
        positional: list = []
        keyword: dict = {}
        if self._peek() is not None and self._peek().kind == "rparen":
            return positional, keyword
        while True:
            argument = self._parse_arg()
            if isinstance(argument, tuple) and argument and argument[0] == "__kw__":
                keyword[argument[1]] = argument[2]
            else:
                positional.append(argument)
            if not self._accept("comma"):
                return positional, keyword

    def _parse_arg(self):
        token = self._peek()
        if token is None:
            raise QueryError("VRQL: unexpected end of argument list")
        if token.kind == "name":
            following = (
                self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
            )
            if following is not None and following.kind == "lparen":
                return self._parse_pipeline()  # nested expression
            if following is not None and following.kind == "equals":
                name = self._next().text
                self._expect("equals")
                return ("__kw__", name, self._parse_value())
        return self._parse_value()

    def _parse_value(self):
        first = self._parse_scalar_or_name()
        if self._accept("colon"):
            second = self._parse_scalar_or_name()
            if not isinstance(first, float) or not isinstance(second, float):
                raise QueryError("VRQL: range endpoints must be numeric")
            return (first, second)
        return first

    def _parse_scalar_or_name(self):
        token = self._next()
        if token.kind == "number":
            value = float(token.text)
            return self._maybe_pi_arithmetic(value)
        if token.kind == "name":
            if token.text.lower() == "pi":
                return self._maybe_division(math.pi)
            return token.text
        raise QueryError(
            f"VRQL: expected a value but found {token.text!r} at offset {token.position}"
        )

    def _maybe_pi_arithmetic(self, value: float):
        if self._accept("star"):
            token = self._expect("name")
            if token.text.lower() != "pi":
                raise QueryError(f"VRQL: only 'pi' may follow '*', got {token.text!r}")
            return self._maybe_division(value * math.pi)
        return value

    def _maybe_division(self, value: float) -> float:
        if self._accept("slash"):
            divisor = float(self._expect("number").text)
            if divisor == 0:
                raise QueryError("VRQL: division by zero")
            return value / divisor
        return value

    # -- operator construction --------------------------------------------------------

    def _build(self, operator, source, positional, keyword, position) -> Expr:
        if operator == "SCAN":
            if source is not None:
                raise QueryError("VRQL: SCAN cannot be piped into")
            if len(positional) != 1 or not isinstance(positional[0], str):
                raise QueryError("VRQL: SCAN takes exactly one video name")
            quality = keyword.pop("quality", None)
            version = keyword.pop("version", None)
            self._reject_extra("SCAN", keyword)
            try:
                return Scan(
                    positional[0],
                    quality=Quality.from_label(quality) if quality else None,
                    version=int(version) if version is not None else None,
                )
            except ValueError as error:
                raise QueryError(f"VRQL: {error}") from error
        if operator == "UNION":
            operands = [arg for arg in positional if isinstance(arg, Expr)]
            if source is not None:
                operands.insert(0, source)
            if len(operands) < 2:
                raise QueryError("VRQL: UNION needs at least two expressions")
            self._reject_extra("UNION", keyword)
            result = operands[0]
            for operand in operands[1:]:
                result = Union(result, operand)
            return result

        if source is None:
            raise QueryError(
                f"VRQL: {operator} needs an input — start the pipeline with SCAN(...)"
            )
        if operator == "SELECT":
            if positional:
                raise QueryError("VRQL: SELECT takes only dimension=lo:hi arguments")
            ranges = {}
            for dimension in ("time", "theta", "phi"):
                bounds = keyword.pop(dimension, None)
                if bounds is not None:
                    if not isinstance(bounds, tuple):
                        raise QueryError(f"VRQL: SELECT {dimension} needs a lo:hi range")
                    ranges[dimension] = bounds
            self._reject_extra("SELECT", keyword)
            if not ranges:
                raise QueryError("VRQL: SELECT needs at least one of time/theta/phi")
            return Select(source, **ranges)
        if operator == "MAP":
            if len(positional) != 1 or not isinstance(positional[0], str):
                raise QueryError("VRQL: MAP takes exactly one UDF name")
            self._reject_extra("MAP", keyword)
            udf_name = positional[0]
            if udf_name not in _UDF_REGISTRY:
                raise QueryError(
                    f"VRQL: unknown UDF {udf_name!r}; registered: {sorted(_UDF_REGISTRY)}"
                )
            return Map(source, fn=_UDF_REGISTRY[udf_name])
        if operator == "PARTITION":
            if len(positional) != 1 or not isinstance(positional[0], float):
                raise QueryError("VRQL: PARTITION takes one duration in seconds")
            self._reject_extra("PARTITION", keyword)
            return Partition(source, seconds=positional[0])
        if operator == "DISCRETIZE":
            if len(positional) != 1 or not isinstance(positional[0], float):
                raise QueryError("VRQL: DISCRETIZE takes one frame rate")
            self._reject_extra("DISCRETIZE", keyword)
            return Discretize(source, fps=positional[0])
        if operator == "ENCODE":
            if len(positional) != 1 or not isinstance(positional[0], str):
                raise QueryError("VRQL: ENCODE takes exactly one quality label")
            self._reject_extra("ENCODE", keyword)
            return Encode(source, quality=Quality.from_label(positional[0]))
        if operator == "STORE":
            if len(positional) != 1 or not isinstance(positional[0], str):
                raise QueryError("VRQL: STORE takes exactly one video name")
            self._reject_extra("STORE", keyword)
            return Store(source, name=positional[0])
        raise QueryError(f"VRQL: unknown operator {operator!r} at offset {position}")

    @staticmethod
    def _reject_extra(operator: str, keyword: dict) -> None:
        if keyword:
            raise QueryError(
                f"VRQL: {operator} got unexpected arguments {sorted(keyword)}"
            )


def parse(text: str) -> Expr:
    """Parse a VRQL query string into a logical expression tree."""
    if not text or not text.strip():
        raise QueryError("VRQL: empty query")
    return _Parser(text).parse()


def _format_number(value: float) -> str:
    """Render a scalar, preferring exact small multiples of pi."""
    for denominator in (1, 2, 3, 4, 6, 8):
        multiple = value * denominator / math.pi
        if abs(multiple - round(multiple)) < 1e-12 and round(multiple) != 0:
            numerator = int(round(multiple))
            head = "pi" if numerator == 1 else f"{numerator}*pi"
            return head if denominator == 1 else f"{head}/{denominator}"
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_range(bounds: tuple[float, float]) -> str:
    return f"{_format_number(bounds[0])}:{_format_number(bounds[1])}"


def format_expr(expr: Expr) -> str:
    """Render a logical expression back to VRQL text.

    Inverse of :func:`parse` up to formatting:
    ``parse(format_expr(e)) == e`` whenever every MAP UDF in ``e`` is
    registered (unregistered callables render by ``__name__`` and cannot
    round-trip).
    """
    if isinstance(expr, Scan):
        arguments = [expr.name]
        if expr.quality is not None:
            arguments.append(f"quality={expr.quality.label}")
        if expr.version is not None:
            arguments.append(f"version={expr.version}")
        return f"SCAN({', '.join(arguments)})"
    if isinstance(expr, Select):
        parts = []
        for dimension in ("time", "theta", "phi"):
            bounds = getattr(expr, dimension)
            if bounds is not None:
                parts.append(f"{dimension}={_format_range(bounds)}")
        return f"{format_expr(expr.source)} >> SELECT({', '.join(parts)})"
    if isinstance(expr, Map):
        for name, fn in _UDF_REGISTRY.items():
            if fn is expr.fn:
                return f"{format_expr(expr.source)} >> MAP({name})"
        return f"{format_expr(expr.source)} >> MAP({getattr(expr.fn, '__name__', 'udf')})"
    if isinstance(expr, Partition):
        return f"{format_expr(expr.source)} >> PARTITION({_format_number(expr.seconds)})"
    if isinstance(expr, Discretize):
        return f"{format_expr(expr.source)} >> DISCRETIZE({_format_number(expr.fps)})"
    if isinstance(expr, Encode):
        return f"{format_expr(expr.source)} >> ENCODE({expr.quality.label})"
    if isinstance(expr, Store):
        return f"{format_expr(expr.source)} >> STORE({expr.name})"
    if isinstance(expr, Union):
        return f"UNION({format_expr(expr.left)}, {format_expr(expr.right)})"
    raise QueryError(f"VRQL: cannot format expression type {type(expr).__name__}")
