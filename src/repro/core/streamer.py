"""The delivery engine: per-session adaptive tile streaming.

For every delivery window of a session the streamer (1) asks the
predictor which tiles the viewer will see when the window plays, (2) asks
the quality policy for a per-tile quality assignment under the link
budget, (3) assembles the window homomorphically from stored segments,
and (4) accounts for the transfer on the simulated link and the client's
playback schedule. The output is a :class:`repro.stream.qoe.QoEReport`.

Timing model
------------
Media time and wall time are linked through the playback schedule: the
client requests window ``w`` up to ``buffer_windows`` window-durations
before it is due to play, the server's prediction decision happens at
request time, and the prediction horizon is therefore an *emergent*
quantity — deeper client buffers mean earlier decisions and harder
predictions. That coupling is the trade-off the granularity ablation
(E7) measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.predictor import PredictionService
from repro.core.resilience import RetryPolicy, read_window_resilient
from repro.core.storage import StorageManager
from repro.obs import MetricsRegistry
from repro.geometry.viewport import Orientation, Viewport
from repro.predict.predictors import Predictor
from repro.predict.traces import Trace
from repro.stream.abr import QualityPolicy, estimate_budget
from repro.stream.client import PlaybackSimulator, ViewportQualityProbe
from repro.stream.estimator import ThroughputEstimator
from repro.stream.dash import Manifest
from repro.stream.network import BandwidthModel, SimulatedLink
from repro.stream.qoe import QoEReport, WindowRecord


@dataclass
class SessionConfig:
    """Everything that parameterises one streaming session."""

    policy: QualityPolicy
    bandwidth: BandwidthModel
    predictor: str = "deadreckoning"
    viewport: Viewport = field(default_factory=Viewport)
    margin: int = 1  # extra tile rings around the predicted viewport
    buffer_windows: float = 1.0  # request lead, in window durations
    safety: float = 0.9  # budget derating factor
    rtt: float = 0.0  # per-request round-trip latency, seconds
    window_samples: int = 3  # orientation samples per window for tile sets
    evaluate_quality: bool = False  # run the (expensive) viewport PSNR probe
    probe: ViewportQualityProbe | None = None
    #: Client-side throughput estimator. None = oracle (read the link
    #: model's true rate) — the default the estimation ablation compares
    #: realistic estimators against.
    estimator: "ThroughputEstimator | None" = None
    #: Bounded retry-with-backoff for transient segment reads; None uses
    #: the module default (3 attempts, no wall-clock sleep — see
    #: :mod:`repro.core.resilience`).
    retry: RetryPolicy | None = None


class Streamer:
    """Serves stored videos to simulated viewers.

    ``registry`` is where per-window delivery metrics land (decision,
    queue, transfer, and stall timings; byte and window counters); it
    defaults to the storage manager's registry so one export covers the
    whole path.
    """

    def __init__(
        self,
        storage: StorageManager,
        prediction: PredictionService,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.storage = storage
        self.prediction = prediction
        self.metrics = (
            registry
            if registry is not None
            else getattr(storage, "metrics", None) or MetricsRegistry()
        )

    def serve(self, name: str, trace: Trace, config: SessionConfig) -> QoEReport:
        """Run one complete session and return its QoE report."""
        self.metrics.counter("stream.sessions", "streaming sessions started").inc(
            mode="single"
        )
        manifest = self.storage.build_manifest(name)
        predictor = self.prediction.session_predictor(
            config.predictor, video=name, grid=manifest.grid, trace=trace
        )
        predictor.reset()
        if config.estimator is not None:
            config.estimator.reset()
        link = SimulatedLink(config.bandwidth, rtt=config.rtt)
        playback = PlaybackSimulator(manifest.window_duration)
        duration = manifest.window_duration
        buffer_wall = config.buffer_windows * duration

        starts: list[float] = []
        records: list[WindowRecord] = []
        trace_cursor = 0

        for window in range(manifest.window_count):
            window_start, window_end = manifest.window_interval(window)
            if window == 0:
                request_time = 0.0
            else:
                due = starts[-1] + duration
                request_time = max(link.busy_until, due - buffer_wall)

            # Feed the predictor every client orientation report up to the
            # media instant playing at request time.
            decision_started = time.perf_counter()
            media_now = self._media_time(starts, duration, request_time)
            trace_cursor = self._observe(predictor, trace, trace_cursor, media_now)

            predicted = self._predicted_tiles(
                predictor, manifest, config, window_start, window_end
            )
            if config.estimator is not None:
                estimated = config.estimator.estimate()
                # Before any transfer completes there is no signal; start
                # from the link's current rate, as a probing client would.
                bandwidth_estimate = (
                    estimated
                    if estimated is not None
                    else config.bandwidth.rate_at(request_time)
                )
            else:
                bandwidth_estimate = config.bandwidth.rate_at(request_time)
            budget = estimate_budget(bandwidth_estimate, duration, config.safety)
            quality_map = config.policy.assign(manifest, window, predicted, budget)
            missing = set(manifest.grid.tiles()) - set(quality_map)
            if missing:
                raise ValueError(
                    f"policy {config.policy.name!r} left tiles {sorted(missing)} unassigned"
                )
            # Partial (popularity-planned) stores may lack the assigned
            # rung for some tiles; ship the stored rung actually used.
            quality_map = {
                tile: manifest.resolve(window, tile, quality)
                for tile, quality in quality_map.items()
            }
            self.metrics.histogram(
                "stream.decision_seconds", "wall time spent predicting + assigning"
            ).observe(time.perf_counter() - decision_started, mode="single")
            # Assemble the payload the wire carries — real segment reads
            # through the cache, so storage metrics reflect delivery.
            # Resilient: transient read errors retry, persistent ones
            # degrade down the tile's stored ladder or skip the tile.
            requested_map = quality_map
            result = read_window_resilient(
                self.storage,
                manifest,
                name,
                window,
                requested_map,
                policy=config.retry,
                metrics=self.metrics,
            )
            quality_map = result.quality_map
            size = manifest.window_size(window, quality_map)
            transfer_start = max(request_time, link.busy_until)
            delivered = link.transfer(size, request_time)
            if config.estimator is not None:
                config.estimator.observe(size, delivered - transfer_start)

            if window == 0:
                playback_start, stall = delivered, 0.0
            else:
                nominal = starts[-1] + duration
                playback_start = max(nominal, delivered)
                stall = playback_start - nominal
            starts.append(playback_start)

            self.metrics.counter("stream.windows", "delivery windows served").inc(
                session=name
            )
            self.metrics.counter("stream.bytes_sent", "media bytes put on the wire").inc(
                size, session=name
            )
            self.metrics.histogram(
                "stream.queue_seconds", "simulated wait for the link per window"
            ).observe(transfer_start - request_time, mode="single")
            self.metrics.histogram(
                "stream.transfer_seconds", "simulated on-the-wire time per window"
            ).observe(delivered - transfer_start, mode="single")
            self.metrics.histogram(
                "stream.stall_seconds", "simulated rebuffering per window"
            ).observe(stall, mode="single")
            if stall > 1e-9:
                self.metrics.counter("stream.stalls", "windows that rebuffered").inc(
                    session=name
                )

            visible = self._actual_visible(trace, manifest, config, window_start, window_end)
            record = WindowRecord(
                window=window,
                decision_time=request_time,
                request_time=request_time,
                delivered_time=delivered,
                playback_start=playback_start,
                stall_seconds=stall,
                bytes_sent=size,
                quality_map=quality_map,
                predicted_tiles=predicted,
                ladder_best=manifest.best_quality,
                visible_tiles=visible,
                requested_map=requested_map,
                events=result.events,
            )
            if config.evaluate_quality:
                record.viewport_psnr = self._probe_window(
                    name, manifest, config, window, quality_map, trace, window_start
                )
            records.append(record)

        # Cross-check the incremental schedule against the playback model.
        recomputed_starts, _ = playback.schedule([r.delivered_time for r in records])
        for mine, model in zip(starts, recomputed_starts):
            if abs(mine - model) > 1e-6:
                raise AssertionError("playback schedule diverged from the client model")
        return QoEReport(records)

    @staticmethod
    def _media_time(starts: list[float], duration: float, wall: float) -> float:
        """The media instant playing at wall time ``wall`` (0 pre-start)."""
        media = 0.0
        for index, start in enumerate(starts):
            if wall < start:
                break
            media = index * duration + min(duration, wall - start)
        return media

    @staticmethod
    def _observe(predictor: Predictor, trace: Trace, cursor: int, up_to: float) -> int:
        """Feed the predictor all unseen trace samples at or before ``up_to``.

        Always guarantees at least one observation (the trace head) so the
        very first window has something to extrapolate from.
        """
        fed = cursor > 0
        while cursor < len(trace) and (trace.times[cursor] <= up_to or not fed):
            predictor.observe(
                float(trace.times[cursor]),
                Orientation(float(trace.thetas[cursor]), float(trace.phis[cursor])),
            )
            fed = True
            cursor += 1
        return cursor

    def _predicted_tiles(
        self,
        predictor: Predictor,
        manifest: Manifest,
        config: SessionConfig,
        window_start: float,
        window_end: float,
    ) -> set[tuple[int, int]]:
        """Union of predicted-visible tiles across the window's span."""
        tiles: set[tuple[int, int]] = set()
        for time in np.linspace(window_start, window_end, config.window_samples + 2)[1:-1]:
            tiles |= predictor.predict_tiles(
                float(time), manifest.grid, config.viewport, config.margin
            )
        return tiles

    def _actual_visible(
        self,
        trace: Trace,
        manifest: Manifest,
        config: SessionConfig,
        window_start: float,
        window_end: float,
    ) -> set[tuple[int, int]]:
        """Ground truth: tiles the viewer actually saw during the window."""
        visible: set[tuple[int, int]] = set()
        for time in np.linspace(window_start, window_end, config.window_samples + 2)[1:-1]:
            orientation = trace.orientation_at(float(time))
            visible |= config.viewport.visible_tiles(orientation, manifest.grid)
        return visible

    def _probe_window(
        self,
        name: str,
        manifest: Manifest,
        config: SessionConfig,
        window: int,
        quality_map,
        trace: Trace,
        window_start: float,
    ) -> float:
        """Viewport PSNR of the delivered window against the best-quality
        render — i.e. degradation relative to what naive delivery shows.

        On partial stores the reference is the best *stored* rung per tile
        (exactly what naive delivery would resolve to)."""
        probe = config.probe or ViewportQualityProbe(config.viewport)
        delivered = self.storage.read_window(name, window, quality_map)
        reference_map = {
            tile: manifest.resolve(window, tile, manifest.best_quality)
            for tile in manifest.grid.tiles()
        }
        reference = self.storage.read_window(name, window, reference_map).decode()
        return probe.window_psnr(delivered, reference, trace, window_start, manifest.fps)
