"""VisualCloud core: the DBMS built on the substrates.

* :mod:`repro.core.storage` — the storage manager: spatiotemporal
  segmentation, multi-quality encoding, versioned no-overwrite metadata,
  GOP/tile indexes.
* :mod:`repro.core.predictor` — the prediction service the server trains
  offline and instantiates per session.
* :mod:`repro.core.streamer` — the delivery engine: per-window predict /
  assign / transfer loop producing QoE reports.
* :mod:`repro.core.query` — the declarative query layer with a rule-based
  planner that substitutes homomorphic physical operators.
* :mod:`repro.core.server` — the :class:`VisualCloud` facade tying the
  pieces together.
"""

from repro.core.cache import LruSegmentCache
from repro.core.errors import (
    CatalogError,
    QueryError,
    SegmentNotFoundError,
    VisualCloudError,
)
from repro.core.export import decode_export, export_video, import_video
from repro.core.multisession import SharedLinkStreamer
from repro.core.popularity import StoragePlanner, tile_popularity
from repro.core.query import QueryExecutor, Scan
from repro.core.server import VisualCloud
from repro.core.storage import IngestConfig, StorageManager, VideoMeta
from repro.core.streamer import SessionConfig, Streamer
from repro.core.vrql import format_expr, parse as parse_vrql

__all__ = [
    "CatalogError",
    "IngestConfig",
    "LruSegmentCache",
    "QueryError",
    "QueryExecutor",
    "Scan",
    "SegmentNotFoundError",
    "SessionConfig",
    "SharedLinkStreamer",
    "StoragePlanner",
    "StorageManager",
    "Streamer",
    "VideoMeta",
    "VisualCloud",
    "VisualCloudError",
    "decode_export",
    "export_video",
    "format_expr",
    "import_video",
    "parse_vrql",
    "tile_popularity",
]
