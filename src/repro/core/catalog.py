"""The video catalog: names, versions, and on-disk layout.

Each video occupies one directory under the catalog root:

.. code-block:: text

    <root>/<name>/
        metadata_v1.mp4     one MP4-style metadata file per version
        metadata_v1.ok      commit marker (written last; holds the
        metadata_v2.mp4      metadata file's content checksum)
        metadata_v2.ok
        segments/           encoded tile segments, shared across versions
            g00000_r0_c0_high_v1.seg

Metadata files are never overwritten: a new STORE writes ``metadata_v{n+1}``
and only the segment files that actually changed, pointing at prior
versions' files for everything else (track-granularity copy-on-write).
Readers therefore get snapshot isolation for free — a version, once
written, never changes underneath them.

Commit protocol: segment files are published first (temp file + fsync +
``os.replace``), then the metadata file, then the ``.ok`` marker — each
step atomic. A version is *committed* once its marker exists;
:meth:`Catalog.versions` never reports a marker-less version in a video
that has any markers, so a hard crash at any point leaves either the old
catalog state or the new one, never a half-written version.
``StorageManager.fsck`` rolls marker-less metadata forward (validating
and adopting it) or back (deleting it). Catalogs written before markers
existed carry no markers at all; such videos are served as-is and
adopted wholesale on their first ``fsck --repair``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.errors import CatalogError
from repro.stream.dash import SegmentKey
from repro.video.quality import Quality

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")
_METADATA_PATTERN = re.compile(r"^metadata_v(\d+)\.mp4$")
_MARKER_PATTERN = re.compile(r"^metadata_v(\d+)\.ok$")


def segment_file_name(
    gop: int, tile: tuple[int, int], quality: Quality, version: int
) -> str:
    """Canonical file name for one encoded tile segment."""
    return SegmentKey(gop, tile, quality).file_name(version)


class Catalog:
    """Directory-backed name/version bookkeeping."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def validate_name(self, name: str) -> None:
        if not _NAME_PATTERN.match(name):
            raise CatalogError(
                f"invalid video name {name!r}: use letters, digits, '_', '.', '-'"
            )

    def video_dir(self, name: str) -> Path:
        self.validate_name(name)
        return self.root / name

    def segments_dir(self, name: str) -> Path:
        return self.video_dir(name) / "segments"

    def exists(self, name: str) -> bool:
        return self.video_dir(name).is_dir()

    def list_videos(self) -> list[str]:
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and _NAME_PATTERN.match(entry.name)
        )

    def scan_versions(self, name: str) -> tuple[set[int], set[int]]:
        """One-pass raw listing: ``(metadata_versions, marker_versions)``.

        The fsck substrate — no commit-state interpretation is applied.
        """
        directory = self.video_dir(name)
        if not directory.is_dir():
            raise CatalogError(f"video {name!r} does not exist")
        metadata: set[int] = set()
        markers: set[int] = set()
        for entry in directory.iterdir():
            match = _METADATA_PATTERN.match(entry.name)
            if match:
                metadata.add(int(match.group(1)))
                continue
            match = _MARKER_PATTERN.match(entry.name)
            if match:
                markers.add(int(match.group(1)))
        return metadata, markers

    def versions(self, name: str) -> list[int]:
        """All committed versions of a video, ascending.

        A version counts as committed when its ``.ok`` marker exists. A
        video with metadata files but *no* markers at all predates the
        commit protocol (legacy catalog): every metadata file is complete
        by the old code's semantics, so all of them are reported.
        """
        metadata, markers = self.scan_versions(name)
        committed = metadata & markers if markers else metadata
        if not committed:
            raise CatalogError(f"video {name!r} has no committed versions")
        return sorted(committed)

    def latest_version(self, name: str) -> int:
        return self.versions(name)[-1]

    def metadata_path(self, name: str, version: int) -> Path:
        return self.video_dir(name) / f"metadata_v{version}.mp4"

    def marker_path(self, name: str, version: int) -> Path:
        """Commit marker published after a version's metadata file."""
        return self.video_dir(name) / f"metadata_v{version}.ok"

    def segment_path(
        self, name: str, gop: int, tile: tuple[int, int], quality: Quality, version: int
    ) -> Path:
        return self.segments_dir(name) / segment_file_name(gop, tile, quality, version)

    def create(self, name: str) -> None:
        """Reserve a video directory (no versions yet)."""
        directory = self.video_dir(name)
        if directory.exists():
            raise CatalogError(f"video {name!r} already exists")
        (directory / "segments").mkdir(parents=True)

    def drop(self, name: str) -> None:
        """Remove a video and all of its versions and segments."""
        directory = self.video_dir(name)
        if not directory.is_dir():
            raise CatalogError(f"video {name!r} does not exist")
        for path in sorted(directory.rglob("*"), reverse=True):
            if path.is_file():
                path.unlink()
            else:
                path.rmdir()
        directory.rmdir()
