"""The declarative query layer and its rule-based planner.

Applications compose queries over stored videos without saying *how* they
execute::

    result = (
        Scan("venice")
        .select(time=(0.0, 3.0))
        .map(udfs.grayscale)
        .store("venice_gray")
    )
    executor = QueryExecutor(storage)
    meta = executor.execute(result)

The executor walks the expression tree bottom-up and picks a physical
operator for each logical one. The load-bearing optimisation — the one
the evaluation quantifies — is *homomorphic substitution*: when a
selection aligns with GOP (window) boundaries or tile-grid lines, or a
union's operands are tile-disjoint, the executor moves encoded bytes
instead of running the decode/re-encode cycle. Execution statistics
record which path each operator took.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import QueryError
from repro.core.storage import StorageManager
from repro.geometry.angles import TWO_PI
from repro.geometry.grid import TileGrid
from repro.video.frame import Frame
from repro.video.quality import Quality
from repro.video.tiles import TiledGop, TiledVideoCodec

_EPS = 1e-9


# -- logical expressions --------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for logical query expressions (immutable, composable)."""

    def select(
        self,
        time: tuple[float, float] | None = None,
        theta: tuple[float, float] | None = None,
        phi: tuple[float, float] | None = None,
    ) -> "Expr":
        """Restrict the video to a spatiotemporal hyperrectangle."""
        if time is None and theta is None and phi is None:
            raise QueryError("select() needs at least one of time, theta, phi")
        return Select(self, time=time, theta=theta, phi=phi)

    def map(self, fn: Callable[[Frame], Frame]) -> "Expr":
        """Apply a frame transformation to every frame."""
        return Map(self, fn=fn)

    def union(self, other: "Expr") -> "Expr":
        """Merge with another video; overlapping tiles prefer ``other``
        (the LAST merge semantics used for overlays)."""
        return Union(self, other)

    def partition(self, seconds: float) -> "Expr":
        """Re-chunk the video into delivery windows of ``seconds``."""
        return Partition(self, seconds=seconds)

    def discretize(self, fps: float) -> "Expr":
        """Resample to a lower frame rate (an integer divisor of the
        current rate)."""
        return Discretize(self, fps=fps)

    def encode(self, quality: Quality) -> "Expr":
        """Request (re-)encoding at a target quality."""
        return Encode(self, quality=quality)

    def store(self, name: str) -> "Expr":
        """Persist the result in the catalog under ``name``."""
        return Store(self, name=name)


@dataclass(frozen=True)
class Scan(Expr):
    """Read a stored video (at one quality rung; best by default)."""

    name: str
    quality: Quality | None = None
    version: int | None = None


@dataclass(frozen=True)
class Select(Expr):
    source: Expr
    time: tuple[float, float] | None = None
    theta: tuple[float, float] | None = None
    phi: tuple[float, float] | None = None


@dataclass(frozen=True)
class Map(Expr):
    source: Expr
    fn: Callable[[Frame], Frame]


@dataclass(frozen=True)
class Union(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Partition(Expr):
    source: Expr
    seconds: float


@dataclass(frozen=True)
class Discretize(Expr):
    source: Expr
    fps: float


@dataclass(frozen=True)
class Encode(Expr):
    source: Expr
    quality: Quality


@dataclass(frozen=True)
class Store(Expr):
    source: Expr
    name: str


# -- physical values --------------------------------------------------------------


@dataclass
class EncodedVideo:
    """Encoded-domain intermediate: a list of tiled windows."""

    windows: list[TiledGop]
    fps: float

    @property
    def grid(self) -> TileGrid:
        return self.windows[0].grid

    @property
    def byte_size(self) -> int:
        return sum(window.byte_size for window in self.windows)


@dataclass
class RawVideo:
    """Decoded-domain intermediate: frames per window."""

    windows: list[list[Frame]]
    fps: float
    grid: TileGrid  # layout to use when re-encoding


@dataclass
class ExecutionStats:
    """What the planner actually did — the evaluation's instrument."""

    homomorphic_ops: int = 0
    decode_ops: int = 0
    encode_ops: int = 0
    segments_read: int = 0
    frames_processed: int = 0
    operator_paths: list[str] = field(default_factory=list)

    def note(self, operator: str, path: str) -> None:
        self.operator_paths.append(f"{operator}:{path}")


@dataclass
class QueryResult:
    """The executor's output: a value plus how it was computed."""

    value: EncodedVideo | RawVideo | object  # Store returns a VideoMeta
    stats: ExecutionStats


# -- the executor -------------------------------------------------------------------


class QueryExecutor:
    """Evaluates logical expressions against a storage manager."""

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage

    def execute(self, expr: Expr) -> QueryResult:
        stats = ExecutionStats()
        value = self._eval(expr, stats)
        return QueryResult(value=value, stats=stats)

    # each _eval_* returns EncodedVideo | RawVideo (Store returns VideoMeta)

    def _eval(self, expr: Expr, stats: ExecutionStats):
        if isinstance(expr, Scan):
            return self._eval_scan(expr, stats)
        if isinstance(expr, Select):
            return self._eval_select(expr, stats)
        if isinstance(expr, Map):
            return self._eval_map(expr, stats)
        if isinstance(expr, Union):
            return self._eval_union(expr, stats)
        if isinstance(expr, Partition):
            return self._eval_partition(expr, stats)
        if isinstance(expr, Discretize):
            return self._eval_discretize(expr, stats)
        if isinstance(expr, Encode):
            return self._eval_encode(expr, stats)
        if isinstance(expr, Store):
            return self._eval_store(expr, stats)
        raise QueryError(f"unknown expression type {type(expr).__name__}")

    def _eval_scan(self, expr: Scan, stats: ExecutionStats) -> EncodedVideo:
        meta = self.storage.meta(expr.name, expr.version)
        quality = expr.quality or meta.qualities[0]
        windows = []
        for gop in range(meta.gop_count):
            quality_map = {tile: quality for tile in meta.grid.tiles()}
            windows.append(self.storage.read_window(expr.name, gop, quality_map, expr.version))
            stats.segments_read += meta.grid.tile_count
        stats.note("scan", "indexed")
        return EncodedVideo(windows=windows, fps=meta.fps)

    # -- SELECT ---------------------------------------------------------------

    def _eval_select(self, expr: Select, stats: ExecutionStats):
        value = self._eval(expr.source, stats)
        if expr.time is not None:
            value = self._select_time(value, expr.time, stats)
        if expr.theta is not None or expr.phi is not None:
            value = self._select_angular(value, expr.theta, expr.phi, stats)
        return value

    def _select_time(self, value, time: tuple[float, float], stats: ExecutionStats):
        t0, t1 = time
        if t1 <= t0:
            raise QueryError(f"empty temporal selection [{t0}, {t1})")
        if isinstance(value, EncodedVideo):
            duration = value.windows[0].frame_count / value.fps
            aligned = (
                abs(t0 / duration - round(t0 / duration)) < _EPS
                and abs(t1 / duration - round(t1 / duration)) < _EPS
            )
            if aligned:
                first = int(round(t0 / duration))
                last = int(round(t1 / duration))
                selected = value.windows[first:last]
                if not selected:
                    raise QueryError(f"temporal selection [{t0}, {t1}) is outside the video")
                stats.homomorphic_ops += 1
                stats.note("select.time", "homomorphic-gop")
                return EncodedVideo(windows=selected, fps=value.fps)
            value = self._decode(value, stats)
        # Frame-accurate selection on raw frames.
        flat = [frame for window in value.windows for frame in window]
        first_frame = max(0, int(math.floor(t0 * value.fps + _EPS)))
        last_frame = min(len(flat), int(math.ceil(t1 * value.fps - _EPS)))
        if first_frame >= last_frame:
            raise QueryError(f"temporal selection [{t0}, {t1}) contains no frames")
        window_size = len(value.windows[0])
        selected_frames = flat[first_frame:last_frame]
        windows = [
            selected_frames[i : i + window_size]
            for i in range(0, len(selected_frames), window_size)
        ]
        stats.note("select.time", "decode")
        return RawVideo(windows=windows, fps=value.fps, grid=value.grid)

    def _select_angular(
        self,
        value,
        theta: tuple[float, float] | None,
        phi: tuple[float, float] | None,
        stats: ExecutionStats,
    ):
        for bounds, extent, label in ((theta, TWO_PI, "theta"), (phi, math.pi, "phi")):
            if bounds is None:
                continue
            lo, hi = bounds
            if hi <= lo:
                raise QueryError(f"empty {label} selection [{lo}, {hi})")
            if lo < 0 or hi > extent + _EPS:
                raise QueryError(
                    f"{label} selection [{lo}, {hi}) outside [0, {extent:.6f}]"
                )
        if isinstance(value, EncodedVideo):
            grid = value.grid
            tiles = _aligned_tile_set(grid, theta, phi)
            if tiles is not None:
                present = set(value.windows[0].payloads)
                if not tiles <= present:
                    raise QueryError(
                        f"angular selection needs tiles {sorted(tiles - present)} "
                        "that are not present"
                    )
                windows = [window.select(tiles) for window in value.windows]
                stats.homomorphic_ops += len(windows)
                stats.note("select.angular", "homomorphic-tile")
                return EncodedVideo(windows=windows, fps=value.fps)
            value = self._decode(value, stats)
        # Pixel-accurate crop on raw frames, rounded outward to 16px blocks.
        height, width = value.windows[0][0].height, value.windows[0][0].width
        x0, x1 = _angular_to_pixels(theta, width, TWO_PI)
        y0, y1 = _angular_to_pixels(phi, height, math.pi)
        cropped = [
            [frame.crop(x0, y0, x1, y1) for frame in window] for window in value.windows
        ]
        stats.note("select.angular", "decode")
        return RawVideo(windows=cropped, fps=value.fps, grid=TileGrid(1, 1))

    # -- MAP --------------------------------------------------------------------

    def _eval_map(self, expr: Map, stats: ExecutionStats) -> RawVideo:
        value = self._eval(expr.source, stats)
        raw = value if isinstance(value, RawVideo) else self._decode(value, stats)
        windows = [[expr.fn(frame) for frame in window] for window in raw.windows]
        stats.frames_processed += sum(len(window) for window in windows)
        stats.note("map", "decode")
        return RawVideo(windows=windows, fps=raw.fps, grid=raw.grid)

    # -- UNION ------------------------------------------------------------------

    def _eval_union(self, expr: Union, stats: ExecutionStats):
        left = self._eval(expr.left, stats)
        right = self._eval(expr.right, stats)
        if isinstance(left, EncodedVideo) and isinstance(right, EncodedVideo):
            # LAST merge at tile granularity: the right operand's tiles win
            # where both sides define a tile — a pure byte substitution.
            compatible = len(left.windows) == len(right.windows) and abs(
                left.fps - right.fps
            ) < _EPS
            if compatible:
                try:
                    windows = [a.replace(b) for a, b in zip(left.windows, right.windows)]
                except ValueError:
                    windows = None  # mismatched layouts: fall through to decode
                if windows is not None:
                    stats.homomorphic_ops += len(windows)
                    stats.note("union", "homomorphic-tile")
                    return EncodedVideo(windows=windows, fps=left.fps)
        raw_left = left if isinstance(left, RawVideo) else self._decode(left, stats)
        raw_right = right if isinstance(right, RawVideo) else self._decode(right, stats)
        if len(raw_left.windows) != len(raw_right.windows):
            raise QueryError(
                f"union operands have {len(raw_left.windows)} vs "
                f"{len(raw_right.windows)} windows"
            )
        windows = []
        for window_a, window_b in zip(raw_left.windows, raw_right.windows):
            if len(window_a) != len(window_b):
                raise QueryError("union operands have mismatched frame counts")
            # LAST merge: the right operand wins wherever both are defined;
            # since raw frames are dense, that means the right frame wins.
            windows.append(list(window_b))
        stats.note("union", "decode")
        return RawVideo(windows=windows, fps=raw_left.fps, grid=raw_left.grid)

    # -- PARTITION / DISCRETIZE ----------------------------------------------------

    def _eval_partition(self, expr: Partition, stats: ExecutionStats):
        """Re-window the video into ``seconds``-long delivery windows.

        When the target is a whole multiple of the current window duration
        and the windows are uniform, adjacent windows merge at the byte
        level (intra frames mid-stream reset the decoder's reference), so
        coarsening the partitioning never decodes. Anything else — finer
        partitions change prediction structure — takes the decode path.
        """
        if expr.seconds <= 0:
            raise QueryError(f"partition duration must be positive, got {expr.seconds}")
        value = self._eval(expr.source, stats)
        if isinstance(value, EncodedVideo):
            frames_per_window = {window.frame_count for window in value.windows}
            uniform = len(frames_per_window) == 1
            if uniform:
                current = value.windows[0].frame_count / value.fps
                factor = expr.seconds / current
                if abs(factor - round(factor)) < 1e-9 and round(factor) >= 1:
                    group = int(round(factor))
                    if group == 1:
                        stats.note("partition", "noop")
                        return value
                    merged = [
                        TiledGop.concat(value.windows[start : start + group])
                        for start in range(0, len(value.windows), group)
                    ]
                    stats.homomorphic_ops += len(merged)
                    stats.note("partition", "homomorphic-gop-merge")
                    return EncodedVideo(windows=merged, fps=value.fps)
            value = self._decode(value, stats)
        frames_per_window = int(round(expr.seconds * value.fps))
        if frames_per_window < 1:
            raise QueryError(
                f"partition of {expr.seconds}s holds no frames at {value.fps} fps"
            )
        flat = [frame for window in value.windows for frame in window]
        windows = [
            flat[start : start + frames_per_window]
            for start in range(0, len(flat), frames_per_window)
        ]
        stats.note("partition", "decode")
        return RawVideo(windows=windows, fps=value.fps, grid=value.grid)

    def _eval_discretize(self, expr: Discretize, stats: ExecutionStats) -> RawVideo:
        """Temporal resampling: keep every k-th frame.

        The target rate must divide the current rate evenly — fractional
        resampling would need frame interpolation the substrate does not
        model.
        """
        if expr.fps <= 0:
            raise QueryError(f"discretize rate must be positive, got {expr.fps}")
        value = self._eval(expr.source, stats)
        raw = value if isinstance(value, RawVideo) else self._decode(value, stats)
        step = raw.fps / expr.fps
        if abs(step - round(step)) > 1e-9 or round(step) < 1:
            raise QueryError(
                f"discretize to {expr.fps} fps requires an integer divisor of "
                f"{raw.fps} fps"
            )
        step = int(round(step))
        if step == 1:
            stats.note("discretize", "noop")
            return raw
        flat = [frame for window in raw.windows for frame in window]
        kept = flat[::step]
        window_size = max(1, len(raw.windows[0]) // step)
        windows = [
            kept[start : start + window_size]
            for start in range(0, len(kept), window_size)
        ]
        stats.note("discretize", "decode")
        return RawVideo(windows=windows, fps=expr.fps, grid=raw.grid)

    # -- ENCODE / STORE ------------------------------------------------------------

    def _eval_encode(self, expr: Encode, stats: ExecutionStats) -> EncodedVideo:
        value = self._eval(expr.source, stats)
        if isinstance(value, EncodedVideo):
            qualities = {
                window.tile_quality(*tile)
                for window in value.windows
                for tile in window.payloads
            }
            if qualities == {expr.quality}:
                stats.note("encode", "noop")  # already at the target quality
                return value
            value = self._decode(value, stats)
        return self._encode(value, expr.quality, stats)

    def _eval_store(self, expr: Store, stats: ExecutionStats):
        value = self._eval(expr.source, stats)
        if isinstance(value, RawVideo):
            value = self._encode(value, Quality.HIGH, stats)
        meta = self.storage.store_windows(expr.name, value.windows, value.fps)
        stats.note("store", "catalog")
        return meta

    # -- domain conversion helpers ---------------------------------------------------

    def _decode(self, value: EncodedVideo, stats: ExecutionStats) -> RawVideo:
        windows = [window.decode() for window in value.windows]
        stats.decode_ops += len(windows)
        stats.frames_processed += sum(len(window) for window in windows)
        stats.note("convert", "decode")
        return RawVideo(windows=windows, fps=value.fps, grid=value.grid)

    def _encode(self, value: RawVideo, quality: Quality, stats: ExecutionStats) -> EncodedVideo:
        if not value.windows or not value.windows[0]:
            raise QueryError("cannot encode an empty video")
        sample = value.windows[0][0]
        grid = value.grid
        if sample.width % (grid.cols * 16) or sample.height % (grid.rows * 16):
            grid = TileGrid(1, 1)  # fall back when the crop broke tile alignment
        codec = TiledVideoCodec(grid, sample.width, sample.height)
        windows = [codec.encode_gop(window, quality) for window in value.windows]
        stats.encode_ops += len(windows)
        stats.note("convert", "encode")
        return EncodedVideo(windows=windows, fps=value.fps)


# -- alignment helpers -------------------------------------------------------------


def _aligned_tile_set(
    grid: TileGrid,
    theta: tuple[float, float] | None,
    phi: tuple[float, float] | None,
) -> set[tuple[int, int]] | None:
    """The tile set exactly covering an angular selection, or ``None`` if
    the bounds do not lie on grid lines (within a small tolerance)."""

    def span(bounds: tuple[float, float] | None, step: float, count: int) -> range | None:
        if bounds is None:
            return range(count)
        lo, hi = bounds
        if hi <= lo:
            raise QueryError(f"empty angular selection [{lo}, {hi})")
        lo_index = lo / step
        hi_index = hi / step
        if abs(lo_index - round(lo_index)) > 1e-6 or abs(hi_index - round(hi_index)) > 1e-6:
            return None
        start, stop = int(round(lo_index)), int(round(hi_index))
        if not (0 <= start < stop <= count):
            raise QueryError(f"angular selection [{lo}, {hi}) outside the sphere")
        return range(start, stop)

    cols = span(theta, grid.theta_step, grid.cols)
    rows = span(phi, grid.phi_step, grid.rows)
    if cols is None or rows is None:
        return None
    return {(row, col) for row in rows for col in cols}


def _angular_to_pixels(
    bounds: tuple[float, float] | None, extent_px: int, extent_rad: float
) -> tuple[int, int]:
    """Angular bounds to pixel bounds, rounded outward to 16px multiples."""
    if bounds is None:
        return (0, extent_px)
    lo, hi = bounds
    if hi <= lo:
        raise QueryError(f"empty angular selection [{lo}, {hi})")
    lo_px = int(math.floor(lo / extent_rad * extent_px / 16.0)) * 16
    hi_px = int(math.ceil(hi / extent_rad * extent_px / 16.0)) * 16
    lo_px = max(0, lo_px)
    hi_px = min(extent_px, max(hi_px, lo_px + 16))
    return (lo_px, hi_px)
