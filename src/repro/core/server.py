"""The VisualCloud facade: one object that is the database.

Applications interact with three verbs:

* ``ingest`` — feed frames in, get a segmented, multi-quality, indexed
  store back;
* ``serve`` — run an adaptive streaming session against a viewer trace
  and get a QoE report;
* ``execute`` — run a declarative query over stored videos.

Everything else (training predictors, building manifests, catalog
management) hangs off the same object.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.predictor import PredictionService
from repro.core.query import Expr, QueryExecutor, QueryResult
from repro.core.storage import IngestConfig, StorageManager, VideoMeta
from repro.core.streamer import Streamer
from repro.obs import MetricsRegistry
from repro.predict.traces import Trace
from repro.stream.network import SimulatedLink
from repro.stream.qoe import QoEReport
from repro.video.frame import Frame


class VisualCloud:
    """A VisualCloud database instance rooted at a directory.

    One :class:`~repro.obs.MetricsRegistry` (``self.metrics``) spans the
    whole instance — storage, cache, prediction, and both streamers all
    report into it, and :meth:`stats` merges the snapshot into the
    operational view.
    """

    def __init__(self, root: Path | str) -> None:
        from repro.core.multisession import SharedLinkStreamer

        self.metrics = MetricsRegistry()
        self.storage = StorageManager(root, registry=self.metrics)
        self.prediction = PredictionService(registry=self.metrics)
        self.streamer = Streamer(self.storage, self.prediction, registry=self.metrics)
        self.shared_streamer = SharedLinkStreamer(
            self.storage, self.prediction, registry=self.metrics
        )
        self.executor = QueryExecutor(self.storage)

    # -- catalog ------------------------------------------------------------

    def list_videos(self) -> list[str]:
        return self.storage.list_videos()

    def exists(self, name: str) -> bool:
        return self.storage.exists(name)

    def drop(self, name: str) -> None:
        self.storage.drop(name)

    def meta(self, name: str, version: int | None = None) -> VideoMeta:
        return self.storage.meta(name, version)

    def vacuum(self, name: str, keep_versions: int = 1) -> tuple[int, int]:
        """Garbage-collect old versions; returns (files deleted, bytes freed)."""
        return self.storage.vacuum(name, keep_versions)

    def stats(self) -> dict:
        """Operational snapshot: catalog, segment cache, and the merged
        metrics registry (counters/gauges/histograms/recent spans)."""
        return {**self.storage.stats(), "metrics": self.metrics.snapshot()}

    def fsck(self, repair: bool = False) -> dict:
        """Crash-recovery audit of the catalog; see ``StorageManager.fsck``."""
        return self.storage.fsck(repair=repair)

    def scrub(self, source=None, video: str | None = None) -> dict:
        """Verify every committed segment's bytes against its checksum,
        optionally repairing from ``source``; see ``StorageManager.scrub``."""
        return self.storage.scrub(source=source, video=video)

    # -- ingest ---------------------------------------------------------------

    def ingest(
        self,
        name: str,
        frames: Iterable[Frame],
        config: IngestConfig | None = None,
        streaming: bool = False,
        quality_plan: dict | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        """Segment, encode at the ladder, index, and commit a video.

        ``quality_plan`` optionally restricts materialised rungs per tile
        (see :mod:`repro.core.popularity`).  ``workers`` overrides the
        encode parallelism of ``config`` for this call only.
        """
        return self.storage.ingest(
            name, frames, config or IngestConfig(), streaming, quality_plan,
            workers=workers,
        )

    def append(
        self, name: str, frames: Iterable[Frame], workers: int | None = None
    ) -> VideoMeta:
        """Extend a live video with newly arrived frames."""
        return self.storage.append(name, frames, workers=workers)

    def reingest(
        self,
        name: str,
        config: IngestConfig | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        """Re-encode a stored video into a new version (optionally resegmented)."""
        return self.storage.reingest(name, config=config, workers=workers)

    # -- prediction ---------------------------------------------------------------

    def train_predictor(self, name: str, traces: list[Trace]) -> None:
        """Train the per-video Markov prior from historical viewer traces."""
        meta = self.storage.meta(name)
        self.prediction.train(name, meta.grid, traces)

    # -- delivery -------------------------------------------------------------------

    def serve(
        self,
        name: str,
        sessions,
        *,
        cluster=None,
        link: SimulatedLink | None = None,
        start_offsets: list[float] | None = None,
        transport: str | None = None,
        base_url: str | None = None,
    ) -> QoEReport | list[QoEReport]:
        """Stream a stored video to one or many viewers — the single
        delivery entry point.

        ``sessions`` is one ``(trace, config)`` pair or a list of them;
        a single pair returns one :class:`QoEReport`, a list returns a
        list in the same order. The delivery tier is described by one
        :class:`~repro.control.ClusterConfig` (``cluster=``); dispatch
        follows its ``transport``:

        * ``"sim"`` (the default), no ``link`` — each session runs on
          its own simulated link (:class:`~repro.core.streamer.Streamer`);
        * ``"sim"`` with ``link`` — all sessions contend for the shared
          bottleneck (:class:`~repro.core.multisession.SharedLinkStreamer`),
          optionally staggered by ``start_offsets``;
        * ``"http"`` — sessions fetch real bytes from the segment server
          at the cluster's ``base_url``
          (:func:`repro.serve.serve_session`), reusing this instance's
          trained predictors. Playback timing still follows each
          session's bandwidth model, so reports stay comparable with the
          simulated paths.

        The pre-cluster kwargs ``transport=``/``base_url=`` keep working
        for one release via a mapping shim that warns. The PR 4-era
        shapes ``serve(name, trace, config)`` and ``serve_all`` (which
        warned for five releases) are gone; use ``(trace, config)``
        pairs and ``serve(name, sessions, link=...)``.
        """
        from repro.control.config import ClusterConfig, cluster_from_legacy_kwargs

        if isinstance(sessions, Trace):
            raise TypeError(
                "serve(name, trace, config) was removed; pass "
                "serve(name, (trace, config)) instead"
            )
        if transport is not None or base_url is not None:
            if cluster is not None:
                raise TypeError(
                    "pass cluster=ClusterConfig(...) or the deprecated "
                    "transport=/base_url= kwargs, not both"
                )
            cluster = cluster_from_legacy_kwargs(transport or "sim", base_url)
        elif cluster is None:
            cluster = ClusterConfig()

        single = isinstance(sessions, tuple)
        pairs = [sessions] if single else list(sessions)
        for pair in pairs:
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise TypeError(
                    f"sessions must be (trace, config) pairs, got {pair!r}"
                )

        if cluster.transport == "http":
            if link is not None:
                raise ValueError(
                    "transport='http' uses the real socket; a simulated "
                    "shared link cannot apply"
                )
            from repro.serve import serve_session

            reports = [
                serve_session(
                    cluster.base_url, name, trace, session_config,
                    registry=self.metrics, prediction=self.prediction,
                )
                for trace, session_config in pairs
            ]
        elif link is not None:
            reports = self.shared_streamer.serve_all(
                [(name, trace, session_config) for trace, session_config in pairs],
                link,
                start_offsets,
            )
        else:
            if start_offsets is not None:
                raise ValueError("start_offsets only applies to shared-link serving")
            reports = [
                self.streamer.serve(name, trace, session_config)
                for trace, session_config in pairs
            ]
        return reports[0] if single else reports

    # -- queries ---------------------------------------------------------------------

    def execute(self, query: Expr) -> QueryResult:
        """Run a declarative query (see :mod:`repro.core.query`)."""
        return self.executor.execute(query)

    def vrql(self, text: str) -> QueryResult:
        """Parse and run a textual VRQL query (see :mod:`repro.core.vrql`).

        >>> db.vrql("SCAN(venice) >> SELECT(time=0:2) >> STORE(head)")
        """
        from repro.core.vrql import parse

        return self.executor.execute(parse(text))
