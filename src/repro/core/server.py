"""The VisualCloud facade: one object that is the database.

Applications interact with three verbs:

* ``ingest`` — feed frames in, get a segmented, multi-quality, indexed
  store back;
* ``serve`` — run an adaptive streaming session against a viewer trace
  and get a QoE report;
* ``execute`` — run a declarative query over stored videos.

Everything else (training predictors, building manifests, catalog
management) hangs off the same object.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Iterable

from repro.core.predictor import PredictionService
from repro.core.query import Expr, QueryExecutor, QueryResult
from repro.core.storage import IngestConfig, StorageManager, VideoMeta
from repro.core.streamer import SessionConfig, Streamer
from repro.obs import MetricsRegistry
from repro.predict.traces import Trace
from repro.stream.network import SimulatedLink
from repro.stream.qoe import QoEReport
from repro.video.frame import Frame


class VisualCloud:
    """A VisualCloud database instance rooted at a directory.

    One :class:`~repro.obs.MetricsRegistry` (``self.metrics``) spans the
    whole instance — storage, cache, prediction, and both streamers all
    report into it, and :meth:`stats` merges the snapshot into the
    operational view.
    """

    def __init__(self, root: Path | str) -> None:
        from repro.core.multisession import SharedLinkStreamer

        self.metrics = MetricsRegistry()
        self.storage = StorageManager(root, registry=self.metrics)
        self.prediction = PredictionService(registry=self.metrics)
        self.streamer = Streamer(self.storage, self.prediction, registry=self.metrics)
        self.shared_streamer = SharedLinkStreamer(
            self.storage, self.prediction, registry=self.metrics
        )
        self.executor = QueryExecutor(self.storage)

    # -- catalog ------------------------------------------------------------

    def list_videos(self) -> list[str]:
        return self.storage.list_videos()

    def exists(self, name: str) -> bool:
        return self.storage.exists(name)

    def drop(self, name: str) -> None:
        self.storage.drop(name)

    def meta(self, name: str, version: int | None = None) -> VideoMeta:
        return self.storage.meta(name, version)

    def vacuum(self, name: str, keep_versions: int = 1) -> tuple[int, int]:
        """Garbage-collect old versions; returns (files deleted, bytes freed)."""
        return self.storage.vacuum(name, keep_versions)

    def stats(self) -> dict:
        """Operational snapshot: catalog, segment cache, and the merged
        metrics registry (counters/gauges/histograms/recent spans)."""
        return {**self.storage.stats(), "metrics": self.metrics.snapshot()}

    # -- ingest ---------------------------------------------------------------

    def ingest(
        self,
        name: str,
        frames: Iterable[Frame],
        config: IngestConfig | None = None,
        streaming: bool = False,
        quality_plan: dict | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        """Segment, encode at the ladder, index, and commit a video.

        ``quality_plan`` optionally restricts materialised rungs per tile
        (see :mod:`repro.core.popularity`).  ``workers`` overrides the
        encode parallelism of ``config`` for this call only.
        """
        return self.storage.ingest(
            name, frames, config or IngestConfig(), streaming, quality_plan,
            workers=workers,
        )

    def append(
        self, name: str, frames: Iterable[Frame], workers: int | None = None
    ) -> VideoMeta:
        """Extend a live video with newly arrived frames."""
        return self.storage.append(name, frames, workers=workers)

    def reingest(
        self,
        name: str,
        config: IngestConfig | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        """Re-encode a stored video into a new version (optionally resegmented)."""
        return self.storage.reingest(name, config=config, workers=workers)

    # -- prediction ---------------------------------------------------------------

    def train_predictor(self, name: str, traces: list[Trace]) -> None:
        """Train the per-video Markov prior from historical viewer traces."""
        meta = self.storage.meta(name)
        self.prediction.train(name, meta.grid, traces)

    # -- delivery -------------------------------------------------------------------

    def serve(
        self,
        name: str,
        sessions,
        config: SessionConfig | None = None,
        *,
        link: SimulatedLink | None = None,
        transport: str = "sim",
        base_url: str | None = None,
        start_offsets: list[float] | None = None,
    ) -> QoEReport | list[QoEReport]:
        """Stream a stored video to one or many viewers — the single
        delivery entry point.

        ``sessions`` is one ``(trace, config)`` pair or a list of them;
        a single pair returns one :class:`QoEReport`, a list returns a
        list in the same order. Dispatch:

        * ``transport="sim"``, no ``link`` — each session runs on its own
          simulated link (:class:`~repro.core.streamer.Streamer`);
        * ``transport="sim"`` with ``link`` — all sessions contend for
          the shared bottleneck
          (:class:`~repro.core.multisession.SharedLinkStreamer`),
          optionally staggered by ``start_offsets``;
        * ``transport="http"`` — sessions fetch real bytes from the
          segment server at ``base_url`` (:func:`repro.serve.serve_session`),
          reusing this instance's trained predictors. Playback timing
          still follows each session's bandwidth model, so reports stay
          comparable with the simulated paths.

        The pre-unification call shape ``serve(name, trace, config)``
        still works but warns: detected by ``trace`` being a
        :class:`Trace`, it runs one simulated session exactly as before.
        """
        if isinstance(sessions, Trace):
            if config is None:
                raise TypeError("legacy serve(name, trace, config) requires a config")
            warnings.warn(
                "serve(name, trace, config) is deprecated; use "
                "serve(name, (trace, config))",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.streamer.serve(name, sessions, config)
        if config is not None:
            raise TypeError(
                "positional config is only for the deprecated "
                "serve(name, trace, config) form; put configs in the "
                "(trace, config) pairs"
            )

        single = isinstance(sessions, tuple)
        pairs = [sessions] if single else list(sessions)
        for pair in pairs:
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise TypeError(
                    f"sessions must be (trace, config) pairs, got {pair!r}"
                )
        if transport not in ("sim", "http"):
            raise ValueError(f"unknown transport {transport!r}; use 'sim' or 'http'")

        if transport == "http":
            if base_url is None:
                raise ValueError("transport='http' requires base_url")
            if link is not None:
                raise ValueError(
                    "transport='http' uses the real socket; a simulated "
                    "shared link cannot apply"
                )
            from repro.serve import serve_session

            reports = [
                serve_session(
                    base_url, name, trace, session_config,
                    registry=self.metrics, prediction=self.prediction,
                )
                for trace, session_config in pairs
            ]
        elif link is not None:
            reports = self.shared_streamer.serve_all(
                [(name, trace, session_config) for trace, session_config in pairs],
                link,
                start_offsets,
            )
        else:
            if start_offsets is not None:
                raise ValueError("start_offsets only applies to shared-link serving")
            reports = [
                self.streamer.serve(name, trace, session_config)
                for trace, session_config in pairs
            ]
        return reports[0] if single else reports

    def serve_all(
        self,
        sessions: list[tuple[str, Trace, SessionConfig]],
        link: SimulatedLink,
        start_offsets: list[float] | None = None,
    ) -> list[QoEReport]:
        """Deprecated: use :meth:`serve` with ``link=``.

        Kept for callers streaming *heterogeneous* video names over one
        link, which the unified entry (scoped to one name) does not
        cover; same behaviour as before, now with a warning.
        """
        warnings.warn(
            "serve_all is deprecated; use serve(name, sessions, link=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.shared_streamer.serve_all(sessions, link, start_offsets)

    # -- queries ---------------------------------------------------------------------

    def execute(self, query: Expr) -> QueryResult:
        """Run a declarative query (see :mod:`repro.core.query`)."""
        return self.executor.execute(query)

    def vrql(self, text: str) -> QueryResult:
        """Parse and run a textual VRQL query (see :mod:`repro.core.vrql`).

        >>> db.vrql("SCAN(venice) >> SELECT(time=0:2) >> STORE(head)")
        """
        from repro.core.vrql import parse

        return self.executor.execute(parse(text))
