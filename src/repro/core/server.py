"""The VisualCloud facade: one object that is the database.

Applications interact with three verbs:

* ``ingest`` — feed frames in, get a segmented, multi-quality, indexed
  store back;
* ``serve`` — run an adaptive streaming session against a viewer trace
  and get a QoE report;
* ``execute`` — run a declarative query over stored videos.

Everything else (training predictors, building manifests, catalog
management) hangs off the same object.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.predictor import PredictionService
from repro.core.query import Expr, QueryExecutor, QueryResult
from repro.core.storage import IngestConfig, StorageManager, VideoMeta
from repro.core.streamer import SessionConfig, Streamer
from repro.predict.traces import Trace
from repro.stream.qoe import QoEReport
from repro.video.frame import Frame


class VisualCloud:
    """A VisualCloud database instance rooted at a directory."""

    def __init__(self, root: Path | str) -> None:
        self.storage = StorageManager(root)
        self.prediction = PredictionService()
        self.streamer = Streamer(self.storage, self.prediction)
        self.executor = QueryExecutor(self.storage)

    # -- catalog ------------------------------------------------------------

    def list_videos(self) -> list[str]:
        return self.storage.list_videos()

    def exists(self, name: str) -> bool:
        return self.storage.exists(name)

    def drop(self, name: str) -> None:
        self.storage.drop(name)

    def meta(self, name: str, version: int | None = None) -> VideoMeta:
        return self.storage.meta(name, version)

    def vacuum(self, name: str, keep_versions: int = 1) -> tuple[int, int]:
        """Garbage-collect old versions; returns (files deleted, bytes freed)."""
        return self.storage.vacuum(name, keep_versions)

    def stats(self) -> dict:
        """Operational snapshot of the catalog and the segment cache."""
        return self.storage.stats()

    # -- ingest ---------------------------------------------------------------

    def ingest(
        self,
        name: str,
        frames: Iterable[Frame],
        config: IngestConfig | None = None,
        streaming: bool = False,
        quality_plan: dict | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        """Segment, encode at the ladder, index, and commit a video.

        ``quality_plan`` optionally restricts materialised rungs per tile
        (see :mod:`repro.core.popularity`).  ``workers`` overrides the
        encode parallelism of ``config`` for this call only.
        """
        return self.storage.ingest(
            name, frames, config or IngestConfig(), streaming, quality_plan,
            workers=workers,
        )

    def append(
        self, name: str, frames: Iterable[Frame], workers: int | None = None
    ) -> VideoMeta:
        """Extend a live video with newly arrived frames."""
        return self.storage.append(name, frames, workers=workers)

    def reingest(
        self,
        name: str,
        config: IngestConfig | None = None,
        workers: int | None = None,
    ) -> VideoMeta:
        """Re-encode a stored video into a new version (optionally resegmented)."""
        return self.storage.reingest(name, config=config, workers=workers)

    # -- prediction ---------------------------------------------------------------

    def train_predictor(self, name: str, traces: list[Trace]) -> None:
        """Train the per-video Markov prior from historical viewer traces."""
        meta = self.storage.meta(name)
        self.prediction.train(name, meta.grid, traces)

    # -- delivery -------------------------------------------------------------------

    def serve(self, name: str, trace: Trace, config: SessionConfig) -> QoEReport:
        """Stream a stored video to one simulated viewer."""
        return self.streamer.serve(name, trace, config)

    # -- queries ---------------------------------------------------------------------

    def execute(self, query: Expr) -> QueryResult:
        """Run a declarative query (see :mod:`repro.core.query`)."""
        return self.executor.execute(query)

    def vrql(self, text: str) -> QueryResult:
        """Parse and run a textual VRQL query (see :mod:`repro.core.vrql`).

        >>> db.vrql("SCAN(venice) >> SELECT(time=0:2) >> STORE(head)")
        """
        from repro.core.vrql import parse

        return self.executor.execute(parse(text))
