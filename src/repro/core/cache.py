"""The in-memory segment cache (the architecture's buffer pool).

The storage manager serves every session from per-segment files; with many
concurrent viewers of the same content, the same high-quality equatorial
segments are read over and over. This cache holds recently used segment
bytes under a byte-capacity bound with least-recently-used eviction —
buffering at GOP granularity improves temporal locality exactly as the
paper's buffer-pool design argues.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return float("nan")
        return self.hits / self.requests


@dataclass
class _InflightLoad:
    """One in-progress loader shared by every session that missed on a key."""

    done: threading.Event = field(default_factory=threading.Event)
    value: bytes | None = None
    error: BaseException | None = None


class LruSegmentCache:
    """A byte-bounded LRU cache for encoded segment payloads.

    Keys are arbitrary hashable segment identities; values are ``bytes``.
    A single value larger than the capacity is never admitted (it would
    evict the whole working set for one read).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, bytes] = OrderedDict()
        self._size = 0
        # One storage manager serves many sessions; gets and puts race.
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _InflightLoad] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._size

    def get(self, key: Hashable) -> bytes | None:
        """The cached payload, refreshed to most-recently-used; else None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: Hashable, value: bytes) -> None:
        """Insert (or refresh) a payload, evicting LRU entries to fit."""
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"cache values must be bytes, got {type(value).__name__}")
        value = bytes(value)
        if len(value) > self.capacity_bytes:
            return  # oversized: serve uncached rather than thrash
        with self._lock:
            if key in self._entries:
                self._size -= len(self._entries.pop(key))
            while self._size + len(value) > self.capacity_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._size -= len(evicted)
                self.stats.evictions += 1
            self._entries[key] = value
            self._size += len(value)

    def get_or_load(self, key: Hashable, loader: Callable[[], bytes]) -> bytes:
        """The cached payload, loading it via ``loader`` on a miss.

        Single-flight: when many sessions miss on the same key at once, one
        becomes the leader and runs ``loader`` (outside the cache lock, so
        distinct keys still load concurrently); the rest block on its result
        instead of stampeding the same segment file. A loader exception is
        propagated to the leader and every waiter, and the key is released
        so a later request can retry.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return entry
                self.stats.misses += 1
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InflightLoad()
                    self._inflight[key] = flight
                    break  # we are the leader
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.value is not None
            return flight.value
        try:
            value = bytes(loader())
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
            raise
        self.put(key, value)
        flight.value = value
        with self._lock:
            self._inflight.pop(key, None)
        flight.done.set()
        return value

    def invalidate(self, key: Hashable) -> None:
        """Drop one entry if present (used when a video is dropped)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._size -= len(entry)

    def invalidate_prefix(self, prefix: Hashable) -> None:
        """Drop every entry whose key is a tuple starting with ``prefix``."""
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] == prefix
            ]
            for key in doomed:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._size -= len(entry)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._size = 0
