"""The in-memory segment cache (the architecture's buffer pool).

The storage manager serves every session from per-segment files; with many
concurrent viewers of the same content, the same high-quality equatorial
segments are read over and over. This cache holds recently used segment
bytes under a byte-capacity bound with least-recently-used eviction —
buffering at GOP granularity improves temporal locality exactly as the
paper's buffer-pool design argues.

Accounting is live: hits, misses, evictions, single-flight waits, and
fenced loads are counters in a :class:`~repro.obs.MetricsRegistry`
(shared with the owning storage manager), and the entry/byte occupancy is
kept as gauges. :class:`CacheStats` remains as a compatibility view over
those counters.

Invalidation is *fencing*: dropping a key (or prefix, or everything) also
cancels any in-flight ``get_or_load`` for it — the leader's result is
still returned to the callers already waiting on it, but it is never
published to the cache, and requests arriving after the invalidation
start a fresh load. Without the fence, a leader that began reading before
``StorageManager.drop`` would re-populate the cache with stale bytes
after the invalidation, which serves wrong data once the name is
re-ingested and ``file_version`` restarts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.obs import MetricsRegistry


class CacheStats:
    """Hit/miss accounting, read live from the cache's metrics registry.

    Kept for API compatibility with the original ad-hoc stats object;
    the counters themselves now live in the registry (``cache.hits``,
    ``cache.misses``, ``cache.evictions``) where every other subsystem
    reports too.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    @property
    def hits(self) -> int:
        return int(self._registry.counter("cache.hits").total())

    @property
    def misses(self) -> int:
        return int(self._registry.counter("cache.misses").total())

    @property
    def evictions(self) -> int:
        return int(self._registry.counter("cache.evictions").total())

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return float("nan")
        return self.hits / self.requests


@dataclass
class _InflightLoad:
    """One in-progress loader shared by every session that missed on a key."""

    done: threading.Event = field(default_factory=threading.Event)
    value: bytes | None = None
    error: BaseException | None = None
    #: Set by invalidation while the load is in flight: the result must
    #: not be published to the cache (it may be stale).
    fenced: bool = False


class LruSegmentCache:
    """A byte-bounded LRU cache for encoded segment payloads.

    Keys are arbitrary hashable segment identities; values are ``bytes``.
    A single value larger than the capacity is never admitted (it would
    evict the whole working set for one read).

    ``registry`` is the metrics registry accounting is reported to; by
    default the cache owns a private one. Pass the storage manager's so
    cache metrics land in the same export as everything else.
    """

    def __init__(self, capacity_bytes: int, registry: MetricsRegistry | None = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.stats = CacheStats(self.metrics)
        self._hits = self.metrics.counter("cache.hits", "cache lookups served from memory")
        self._misses = self.metrics.counter("cache.misses", "cache lookups that fell through")
        self._evictions = self.metrics.counter("cache.evictions", "entries evicted for capacity")
        self._inflight_waits = self.metrics.counter(
            "cache.inflight_waits", "lookups that blocked on another session's load"
        )
        self._fenced_loads = self.metrics.counter(
            "cache.fenced_loads", "in-flight loads cancelled by invalidation"
        )
        self._invalidations = self.metrics.counter(
            "cache.invalidations", "entries dropped by invalidate/clear"
        )
        self._gauge_entries = self.metrics.gauge("cache.entries", "live cache entries")
        self._gauge_bytes = self.metrics.gauge("cache.bytes", "live cached payload bytes")
        self.metrics.gauge("cache.capacity_bytes", "configured capacity").set(capacity_bytes)
        self._entries: OrderedDict[Hashable, bytes] = OrderedDict()
        self._size = 0
        # One storage manager serves many sessions; gets and puts race.
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _InflightLoad] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._size

    def _update_gauges_locked(self) -> None:
        self._gauge_entries.set(len(self._entries))
        self._gauge_bytes.set(self._size)

    def items(self) -> list[tuple[Hashable, bytes]]:
        """A point-in-time snapshot of every (key, payload) pair, in LRU
        order (least recent first). Does not touch recency — built for
        audits (the chaos runner's stale-byte invariant walks it against
        the on-disk files), not for serving reads."""
        with self._lock:
            return list(self._entries.items())

    def get(self, key: Hashable) -> bytes | None:
        """The cached payload, refreshed to most-recently-used; else None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry

    def put(self, key: Hashable, value: bytes) -> None:
        """Insert (or refresh) a payload, evicting LRU entries to fit."""
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"cache values must be bytes, got {type(value).__name__}")
        with self._lock:
            self._put_locked(key, bytes(value))

    def _put_locked(self, key: Hashable, value: bytes) -> None:
        if len(value) > self.capacity_bytes:
            return  # oversized: serve uncached rather than thrash
        if key in self._entries:
            self._size -= len(self._entries.pop(key))
        while self._size + len(value) > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._size -= len(evicted)
            self._evictions.inc()
        self._entries[key] = value
        self._size += len(value)
        self._update_gauges_locked()

    def get_or_load(self, key: Hashable, loader: Callable[[], bytes]) -> bytes:
        """The cached payload, loading it via ``loader`` on a miss.

        Single-flight: when many sessions miss on the same key at once, one
        becomes the leader and runs ``loader`` (outside the cache lock, so
        distinct keys still load concurrently); the rest block on its result
        instead of stampeding the same segment file. A loader exception is
        propagated to the leader and every waiter, and the key is released
        so a later request can retry.

        Invalidation fences in-flight loads: if the key (or the whole
        cache) is invalidated while the leader is loading, the loaded
        bytes are returned to the leader and its waiters but *not*
        cached, and the in-flight slot is released immediately so
        post-invalidation requests load fresh.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits.inc()
                    return entry
                self._misses.inc()
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InflightLoad()
                    self._inflight[key] = flight
                    break  # we are the leader
            self._inflight_waits.inc()
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.value is not None
            return flight.value
        try:
            value = bytes(loader())
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                if self._inflight.get(key) is flight:
                    del self._inflight[key]
            flight.done.set()
            raise
        with self._lock:
            if flight.fenced:
                self._fenced_loads.inc()
            else:
                self._put_locked(key, value)
            if self._inflight.get(key) is flight:
                del self._inflight[key]
        flight.value = value
        flight.done.set()
        return value

    def _fence_locked(self, flight: _InflightLoad | None, key: Hashable) -> None:
        """Cancel one in-flight load: its result must not be cached, and
        the slot is freed so later requests load fresh bytes."""
        if flight is None:
            return
        flight.fenced = True
        if self._inflight.get(key) is flight:
            del self._inflight[key]

    def invalidate(self, key: Hashable) -> None:
        """Drop one entry if present (used when a video is dropped).

        Also fences any in-flight load of the key — see :meth:`get_or_load`.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._size -= len(entry)
                self._invalidations.inc()
                self._update_gauges_locked()
            self._fence_locked(self._inflight.get(key), key)

    def invalidate_prefix(self, prefix: Hashable) -> None:
        """Drop every entry whose key is a tuple starting with ``prefix``,
        fencing matching in-flight loads as well."""

        def matches(key: Hashable) -> bool:
            return isinstance(key, tuple) and bool(key) and key[0] == prefix

        with self._lock:
            for key in [key for key in self._entries if matches(key)]:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._size -= len(entry)
                    self._invalidations.inc()
            for key in [key for key in self._inflight if matches(key)]:
                self._fence_locked(self._inflight.get(key), key)
            self._update_gauges_locked()

    def clear(self) -> None:
        """Drop everything, fencing every in-flight load."""
        with self._lock:
            if self._entries:
                self._invalidations.inc(len(self._entries))
            self._entries.clear()
            self._size = 0
            for key in list(self._inflight):
                self._fence_locked(self._inflight.get(key), key)
            self._update_gauges_locked()
