"""Deterministic chaos: seeded fault injection for the delivery path.

The package has three layers:

* :mod:`repro.chaos.faults` — a :class:`FaultPlan` schedules faults
  (missing segments, detected corruption, slow reads, flaky I/O, cache
  evictions, bandwidth blackouts) by call count, probability, or media
  time, all driven by one seed so any run replays exactly;
* :mod:`repro.chaos.wrappers` — drop-in fault-injecting views over the
  storage manager and segment cache;
* :mod:`repro.chaos.proxy` — a fault-injecting TCP relay that breaks
  the wire itself (refused connections, resets, mid-body truncation,
  slow-loris trickle, added latency), scheduled by the same plans;
* :mod:`repro.chaos.scenario` — a runner that drives whole streaming
  sessions under a plan and checks machine-readable invariants
  (no uncaught exceptions, per-tile coverage, no silent quality
  upgrades, cache/disk consistency, metrics/event agreement — plus, in
  wire mode, taxonomy-only failures, monotone circuit transitions, and
  bounded degradation with a healthy replica).

:mod:`repro.chaos.corrupt` additionally provides the corruption-corpus
primitives (structural truncations, bit flips) the failure-injection
tests are built from.
"""

from repro.chaos.corrupt import (
    atom_boundaries,
    bit_flip,
    gop_boundaries,
    metadata_corruption_corpus,
    segment_corruption_corpus,
    truncate,
)
from repro.chaos.faults import WIRE_KINDS, FaultDecision, FaultPlan, FaultRule
from repro.chaos.proxy import ChaosProxy
from repro.chaos.scenario import (
    InvariantCheck,
    InvariantReport,
    Scenario,
    ScenarioRunner,
)
from repro.chaos.wrappers import ChaosSegmentCache, ChaosStorageManager

__all__ = [
    "ChaosProxy",
    "ChaosSegmentCache",
    "ChaosStorageManager",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "InvariantCheck",
    "InvariantReport",
    "Scenario",
    "ScenarioRunner",
    "atom_boundaries",
    "bit_flip",
    "gop_boundaries",
    "metadata_corruption_corpus",
    "segment_corruption_corpus",
    "truncate",
    "WIRE_KINDS",
]
