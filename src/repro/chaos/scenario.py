"""The chaos scenario runner: whole sessions under a fault plan, judged
by machine-checkable invariants.

A :class:`Scenario` is a self-contained JSON artifact: what to ingest,
how many viewers to simulate (single links or one shared link), the
:class:`~repro.chaos.faults.FaultPlan` to inject, and the invariant
thresholds to enforce. :class:`ScenarioRunner` replays it into an
:class:`InvariantReport` whose JSON is *deterministic for a given seed*
— two runs produce identical reports, including the exact degradation
event sequence — so canned scenarios work as CI regression gates.

Invariants checked on every run:

* ``no_uncaught_exceptions`` — every session terminates with a QoE
  report; nothing escapes the resilience layer;
* ``sessions_complete`` — every session played every window;
* ``visible_tile_coverage`` — every window shipped *some* decodable
  rung for every tile the viewer actually looked at;
* ``no_silent_upgrade`` — delivered quality never exceeds the requested
  (budgeted) rung, in the quality maps and in every event;
* ``qoe_floor`` — optional stall-time and visible-coverage thresholds;
* ``expected_degradations`` — optional: the plan was hostile enough
  that at least one degradation event was recorded (guards against a
  vacuous pass where faults never fired);
* ``cache_disk_consistency`` — every byte in the segment cache equals
  its on-disk file (no stale or corrupt bytes survived invalidation);
* ``metrics_events_agree`` — the ``obs`` counters and the QoE event
  trail tell the same story, exactly.

``sessions.mode == "wire"`` replays the scenario over real sockets: one
or more :class:`~repro.serve.server.SegmentServer` replicas behind
:class:`~repro.chaos.proxy.ChaosProxy` instances (replica 0 gets the
fault plan; siblings relay cleanly), streamed through a
:class:`~repro.serve.failover.FailoverSegmentClient`. Wire runs add:

* ``no_raw_transport_errors`` — any escaping failure is a taxonomy
  error, never a raw ``OSError``;
* ``circuit_monotone`` — every recorded breaker transition is a legal
  edge (closed→open→half_open→{closed | open});
* ``expected_wire_faults`` — anti-vacuous guard that the proxy actually
  injected something;
* ``bounded_degradation`` (any mode, via ``invariants.max_degradations``)
  — a tier with a healthy replica degrades at most that much.

Sharded wire runs (``sessions.shards``) can additionally set
``sessions.materialize`` to give every node its *own* on-disk shard root
(via :func:`~repro.serve.placement.materialize_shards`) instead of one
shared store, and ``sessions.corrupt_at_rest`` to bit-rot one node's
segment files before serving — the read-repair scenario. Those runs add:

* ``repair_restores_ingest_bytes`` — every rotted file the serve tier
  rewrote is byte-identical to the originally ingested segment (a wrong
  repair is strictly worse than no repair);
* ``expected_repairs`` (via ``invariants.min_repairs``) — anti-vacuous
  guard that checksum-triggered peer read-repair actually fired.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.faults import FaultPlan
from repro.chaos.wrappers import ChaosSegmentCache, ChaosStorageManager
from repro.core.resilience import RetryPolicy
from repro.core.server import VisualCloud
from repro.core.storage import IngestConfig
from repro.core.streamer import SessionConfig, Streamer
from repro.core.multisession import SharedLinkStreamer
from repro.geometry.grid import TileGrid
from repro.stream.abr import NaiveFullQuality, PredictiveTilingPolicy, UniformAdaptive
from repro.stream.network import ConstantBandwidth, SimulatedLink
from repro.video.quality import Quality
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

POLICIES = {
    "naive": NaiveFullQuality,
    "uniform": UniformAdaptive,
    "predictive": PredictiveTilingPolicy,
}


@dataclass
class Scenario:
    """One replayable chaos experiment, loadable from JSON."""

    name: str
    plan: FaultPlan
    seed: int = 0
    #: Synthetic source video parameters (see workloads.videos).
    video: dict = field(default_factory=dict)
    #: Session shape: count, mode ("single" | "shared"), bandwidth, ...
    sessions: dict = field(default_factory=dict)
    #: RetryPolicy overrides: attempts, base_delay, multiplier, max_delay.
    retry: dict = field(default_factory=dict)
    #: Invariant thresholds: max_stall_seconds, min_visible_fraction,
    #: expect_degradations.
    invariants: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "video": dict(self.video),
            "sessions": dict(self.sessions),
            "retry": dict(self.retry),
            "invariants": dict(self.invariants),
            "plan": self.plan.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict, seed: int | None = None) -> "Scenario":
        effective_seed = data.get("seed", 0) if seed is None else seed
        return cls(
            name=data.get("name", "scenario"),
            seed=effective_seed,
            video=dict(data.get("video", {})),
            sessions=dict(data.get("sessions", {})),
            retry=dict(data.get("retry", {})),
            invariants=dict(data.get("invariants", {})),
            plan=FaultPlan.from_json(data.get("plan", {}), seed=effective_seed),
        )

    @classmethod
    def load(cls, path: Path | str, seed: int | None = None) -> "Scenario":
        return cls.from_json(
            json.loads(Path(path).read_text(encoding="utf-8")), seed=seed
        )

    # -- resolved knobs -------------------------------------------------------

    def ingest_config(self) -> IngestConfig:
        video = self.video
        rows, cols = video.get("grid", [2, 2])
        qualities = tuple(
            Quality.from_label(label)
            for label in video.get("qualities", ["high", "low"])
        )
        return IngestConfig(
            grid=TileGrid(int(rows), int(cols)),
            qualities=qualities,
            gop_frames=int(video.get("gop_frames", 4)),
            fps=float(video.get("fps", 4.0)),
            workers=1,  # serial ingest: one fewer moving part to replay
        )

    def frames(self):
        video = self.video
        return synthetic_video(
            video.get("profile", "venice"),
            width=int(video.get("width", 64)),
            height=int(video.get("height", 32)),
            fps=float(video.get("fps", 4.0)),
            duration=float(video.get("duration", 2.0)),
            seed=self.seed,
        )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            attempts=int(self.retry.get("attempts", 3)),
            base_delay=float(self.retry.get("base_delay", 0.0)),
            multiplier=float(self.retry.get("multiplier", 2.0)),
            max_delay=float(self.retry.get("max_delay", 0.25)),
        )


@dataclass
class InvariantCheck:
    """One invariant's verdict."""

    name: str
    ok: bool
    details: str = ""

    def to_json(self) -> dict:
        return {"name": self.name, "ok": self.ok, "details": self.details}


@dataclass
class InvariantReport:
    """The runner's output: verdicts, the event trail, and fault stats."""

    scenario: str
    seed: int
    checks: list[InvariantCheck]
    events: list[dict]
    sessions: list[dict]
    metrics: dict

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "checks": [check.to_json() for check in self.checks],
            "events": self.events,
            "sessions": self.sessions,
            "metrics": self.metrics,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


class ScenarioRunner:
    """Replays a :class:`Scenario` into an :class:`InvariantReport`.

    ``root`` optionally pins the database directory (a temporary one is
    used — and cleaned up — otherwise). The runner never touches an
    existing catalog: it always ingests the scenario's synthetic video
    into a fresh directory.
    """

    VIDEO_NAME = "chaos-clip"

    def __init__(self, scenario: Scenario, root: Path | str | None = None) -> None:
        self.scenario = scenario
        self.root = root

    def run(self) -> InvariantReport:
        if self.root is not None:
            return self._run_in(Path(self.root))
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            return self._run_in(Path(tmp))

    # -- internals ------------------------------------------------------------

    def _run_in(self, root: Path) -> InvariantReport:
        scenario = self.scenario
        db = VisualCloud(root / "db")
        db.ingest(self.VIDEO_NAME, scenario.frames(), scenario.ingest_config())
        meta = db.meta(self.VIDEO_NAME)

        scenario.plan.reset()
        if scenario.sessions.get("mode", "single") == "wire":
            return self._run_wire(db, meta)
        chaos_storage = ChaosStorageManager(db.storage, scenario.plan)
        if db.storage.segment_cache is not None and any(
            rule.target == "cache" for rule in scenario.plan.rules
        ):
            db.storage.segment_cache = ChaosSegmentCache(
                db.storage.segment_cache, scenario.plan
            )

        sessions = scenario.sessions
        count = int(sessions.get("count", 2))
        mode = sessions.get("mode", "single")
        bandwidth = float(sessions.get("bandwidth", 50_000.0))
        policy_name = sessions.get("policy", "predictive")
        predictor = sessions.get("predictor", "static")
        margin = int(sessions.get("margin", 1))
        retry_policy = scenario.retry_policy()
        population = ViewerPopulation(seed=scenario.seed)

        def make_config() -> SessionConfig:
            return SessionConfig(
                policy=POLICIES[policy_name](),
                bandwidth=scenario.plan.apply_to_bandwidth(ConstantBandwidth(bandwidth)),
                predictor=predictor,
                margin=margin,
                retry=retry_policy,
            )

        reports: list = [None] * count
        failures: list[tuple[int, str]] = []
        if mode == "shared":
            streamer = SharedLinkStreamer(chaos_storage, db.prediction, registry=db.metrics)
            link = SimulatedLink(
                scenario.plan.apply_to_bandwidth(ConstantBandwidth(bandwidth))
            )
            specs = [
                (
                    self.VIDEO_NAME,
                    population.trace(viewer, duration=meta.duration, rate=10.0),
                    make_config(),
                )
                for viewer in range(count)
            ]
            try:
                reports = streamer.serve_all(specs, link)
            except Exception as error:  # noqa: BLE001 — escapes ARE the finding
                failures = [
                    (viewer, f"{type(error).__name__}: {error}")
                    for viewer in range(count)
                ]
                reports = [None] * count
        else:
            streamer = Streamer(chaos_storage, db.prediction, registry=db.metrics)
            for viewer in range(count):
                trace = population.trace(viewer, duration=meta.duration, rate=10.0)
                try:
                    reports[viewer] = streamer.serve(
                        self.VIDEO_NAME, trace, make_config()
                    )
                except Exception as error:  # noqa: BLE001
                    failures.append((viewer, f"{type(error).__name__}: {error}"))

        return self._judge(db, meta, reports, failures)

    def _run_wire(self, db, meta) -> InvariantReport:
        """Replay over real sockets: servers behind chaos proxies,
        streamed through the failover client.

        Sessions run sequentially over one shared client so the order of
        wire-fault decisions — and with it the whole report — is
        deterministic per seed. ``reset_timeout=0`` keeps breaker
        recovery schedule-driven rather than wall-clock-driven.
        """
        from repro.chaos.proxy import ChaosProxy
        from repro.obs import MetricsRegistry
        from repro.serve.client import RemoteStorage
        from repro.serve.failover import FailoverConfig, FailoverSegmentClient
        from repro.serve.server import ServerConfig, start_server

        scenario = self.scenario
        sessions = scenario.sessions
        count = int(sessions.get("count", 2))
        replica_count = int(sessions.get("replicas", 1))
        if sessions.get("shards"):
            # Shard mode: the tier width is the shard count; each node is
            # both a ring owner and a client-facing replica.
            replica_count = int(sessions["shards"])
        bandwidth = float(sessions.get("bandwidth", 50_000.0))
        policy_name = sessions.get("policy", "predictive")
        predictor = sessions.get("predictor", "static")
        margin = int(sessions.get("margin", 1))
        retry_policy = scenario.retry_policy()
        population = ViewerPopulation(seed=scenario.seed)
        client_metrics = MetricsRegistry()
        hedge_delay = sessions.get("hedge_delay")
        # Sharded wire mode: nodes get *logical* ids ("node-0", ...) so the
        # consistent-hash placement — and with it every routing decision —
        # is identical across replays despite ephemeral ports.
        shard_map = None
        node_ids = [f"node-{index}" for index in range(replica_count)]
        if sessions.get("shards"):
            from repro.serve.placement import ShardMap

            shard_map = ShardMap(
                nodes=tuple(node_ids),
                replication_factor=int(sessions.get("replication_factor", 2)),
            )

        # Per-node shard roots: each server reads (and repairs) its own
        # disk, so an at-rest corruption on one node is invisible to its
        # peers — the precondition for exercising read-repair for real.
        node_storages: dict | None = None
        corrupted: list[dict] = []
        if shard_map is not None and sessions.get("materialize"):
            from repro.core.storage import StorageManager
            from repro.serve.placement import materialize_shards

            base = Path(db.storage.catalog.root).parent
            node_roots = {node: base / f"shard-{node}" for node in node_ids}
            materialize_shards(db.storage, node_roots, shard_map)
            node_storages = {
                node: StorageManager(node_roots[node], registry=db.metrics)
                for node in node_ids
            }
            spec = sessions.get("corrupt_at_rest")
            if spec:
                corrupted = self._corrupt_at_rest(node_storages, spec)

        handles: list = []
        proxies: list[ChaosProxy] = []
        client = None
        try:
            for index in range(replica_count):
                config = (
                    ServerConfig(node_id=node_ids[index], shard_map=shard_map)
                    if shard_map is not None
                    else ServerConfig()
                )
                node_storage = (
                    node_storages[node_ids[index]]
                    if node_storages is not None
                    else db.storage
                )
                handle = start_server(node_storage, config, registry=db.metrics)
                handles.append(handle)
                proxy = ChaosProxy(
                    handle.address,
                    plan=scenario.plan if index == 0 else None,
                )
                proxy.start()
                proxies.append(proxy)
            if shard_map is not None:
                # Peer fetches go server-to-server directly (not through
                # the chaos proxies): the plan's fault surface stays the
                # client-facing wire, exactly as in unsharded runs.
                peers = {
                    node_ids[index]: handles[index].base_url
                    for index in range(replica_count)
                }
                for handle in handles:
                    handle.update_shard_map(shard_map, peers)
            controller = None
            if sessions.get("controller"):
                # Deterministic control plane: driven synchronously
                # between sessions (no wall-clock thread), with a
                # counting clock and deterministic=True (no latency
                # reads), so demand — and with it every plan — is a pure
                # function of the replayed request sequence and the
                # whole report stays byte-identical per seed.
                from itertools import count as _tick_counter

                from repro.control import (
                    ControlConfig,
                    Controller,
                    HandleActuator,
                    NodeState,
                    catalog_from_storage,
                )

                ticks = _tick_counter()
                pin_budget = int(sessions.get("pin_budget", 1 << 20))
                control_nodes = tuple(
                    NodeState(
                        node_id=node_id,
                        pin_budget_bytes=pin_budget,
                        max_inflight=None,
                        processes=1,
                    )
                    for node_id in (node_ids if shard_map is not None else [""])
                )
                controller = Controller(
                    ControlConfig(
                        enabled=True,
                        deterministic=True,
                        prewarm_threshold=float(
                            sessions.get("prewarm_threshold", 0.5)
                        ),
                    ),
                    metrics_source=db.metrics.snapshot,
                    catalog_source=lambda: catalog_from_storage(db.storage),
                    nodes_source=lambda: control_nodes,
                    actuators=tuple(HandleActuator(handle) for handle in handles),
                    clock=lambda: float(next(ticks)),
                )
            client = FailoverSegmentClient(
                [proxy.base_url for proxy in proxies],
                config=FailoverConfig(
                    failure_threshold=int(sessions.get("failure_threshold", 3)),
                    reset_timeout=0.0,
                    request_timeout=float(sessions.get("request_timeout", 2.0)),
                    hedge_delay=None if hedge_delay is None else float(hedge_delay),
                ),
                registry=client_metrics,
                shard_map=shard_map,
                node_urls={
                    node_ids[index]: proxies[index].base_url
                    for index in range(replica_count)
                }
                if shard_map is not None
                else None,
            )
            storage = RemoteStorage(client, registry=client_metrics)
            streamer = Streamer(storage, db.prediction, registry=client_metrics)
            reports: list = [None] * count
            failures: list[tuple[int, str]] = []
            for viewer in range(count):
                trace = population.trace(viewer, duration=meta.duration, rate=10.0)
                config = SessionConfig(
                    policy=POLICIES[policy_name](),
                    bandwidth=scenario.plan.apply_to_bandwidth(
                        ConstantBandwidth(bandwidth)
                    ),
                    predictor=predictor,
                    margin=margin,
                    retry=retry_policy,
                )
                try:
                    reports[viewer] = streamer.serve(self.VIDEO_NAME, trace, config)
                except Exception as error:  # noqa: BLE001 — escapes ARE the finding
                    failures.append((viewer, f"{type(error).__name__}: {error}"))
                if controller is not None:
                    controller.step()
            extra_checks, extra_metrics = self._judge_wire(client, failures)
            if corrupted:
                repair_checks, repair_metrics = self._judge_repair(db, corrupted)
                extra_checks = list(extra_checks) + repair_checks
                extra_metrics["repair"] = repair_metrics
            if controller is not None:
                # Only counter/plan-derived fields: no wall-clock values
                # leak into the report, so double replays stay identical.
                extra_metrics["control"] = {
                    "steps": controller.metrics.counter("control.steps").total(),
                    "plans_applied": controller.metrics.counter(
                        "control.plans_applied"
                    ).total(),
                    "plans_noop": controller.metrics.counter(
                        "control.plans_noop"
                    ).total(),
                    "actuate_errors": controller.metrics.counter(
                        "control.actuate_errors"
                    ).total(),
                    "final_version": (
                        0 if controller.plan is None else controller.plan.version
                    ),
                    "nodes": [
                        {
                            key: value
                            for key, value in handle.control_state().items()
                            if key != "inflight"
                        }
                        for handle in handles
                    ],
                }
            if shard_map is not None:
                extra_metrics["shards"] = {
                    "nodes": len(node_ids),
                    "replication_factor": shard_map.replication_factor,
                    "map_version": shard_map.version,
                    "routed": client.metrics.counter("failover.shard_routed").total(),
                    "unroutable": client.metrics.counter(
                        "failover.shard_unroutable"
                    ).total(),
                    "peer_fetches": db.metrics.counter("serve.peer_fetches").total(),
                    "peer_cache_hits": db.metrics.counter(
                        "serve.peer_cache_hits"
                    ).total(),
                    "peer_errors": db.metrics.counter("serve.peer_errors").total(),
                }
            return self._judge(
                db,
                meta,
                reports,
                failures,
                registry=client_metrics,
                extra_checks=extra_checks,
                extra_metrics=extra_metrics,
            )
        finally:
            if client is not None:
                client.close()
            for proxy in proxies:
                proxy.stop()
            for handle in handles:
                handle.stop()

    def _corrupt_at_rest(self, node_storages, spec) -> list[dict]:
        """Bit-rot one node's segment files on disk before serving.

        ``spec``: ``{"node": "node-0", "quality": "low"}`` — ``node``
        defaults to the first node, ``quality`` (optional) restricts the
        damage to one rung's files. The flip is deterministic (mid-payload,
        bit 3), so double replays rot identical bytes. Rotted files are
        rewritten through a temp file + ``os.replace`` so a hard link
        shared with the canonical store (or a peer) is broken, not
        poisoned.
        """
        from repro.chaos.corrupt import bit_flip

        node = spec.get("node") or next(iter(node_storages))
        label = spec.get("quality")
        storage = node_storages[node]
        records: list[dict] = []
        segments_dir = storage.catalog.segments_dir(self.VIDEO_NAME)
        for path in sorted(segments_dir.iterdir()):
            if not path.name.endswith(".seg"):
                continue
            if label is not None and f"_{label}_" not in path.name:
                continue
            original = path.read_bytes()
            if not original:
                continue
            damaged = bit_flip(original, len(original) // 2, bit=3)
            rotted = path.with_name(path.name + ".rot")
            rotted.write_bytes(damaged)
            os.replace(rotted, path)
            records.append(
                {"node": node, "path": path, "original": original, "damaged": damaged}
            )
        return records

    def _judge_repair(self, db, corrupted):
        """The read-repair invariants plus deterministic repair metrics."""
        scenario = self.scenario
        checks: list[InvariantCheck] = []
        restored = untouched = 0
        wrong: list[str] = []
        for record in corrupted:
            current = record["path"].read_bytes()
            if current == record["original"]:
                restored += 1
            elif current == record["damaged"]:
                untouched += 1  # never read, so never repaired — not a failure
            else:
                wrong.append(record["path"].name)
        checks.append(
            InvariantCheck(
                "repair_restores_ingest_bytes",
                ok=not wrong,
                details=(
                    f"rewritten files differ from ingest bytes: {wrong[:10]}"
                    if wrong
                    else ""
                ),
            )
        )
        registry = db.metrics
        success = registry.counter("storage.repair_success").total()
        min_repairs = scenario.invariants.get("min_repairs")
        if min_repairs is not None:
            ok = success >= int(min_repairs) and restored >= 1
            checks.append(
                InvariantCheck(
                    "expected_repairs",
                    ok=ok,
                    details=(
                        ""
                        if ok
                        else (
                            f"storage.repair_success={success} < "
                            f"min_repairs={min_repairs} "
                            f"(files restored on disk: {restored})"
                        )
                    ),
                )
            )
        metrics = {
            "files_corrupted": len(corrupted),
            "files_restored": restored,
            "files_untouched": untouched,
            "attempts": registry.counter("storage.repair_attempts").total(),
            "success": success,
            "failed": registry.counter("storage.repair_failed").total(),
            "bytes": registry.counter("storage.repair_bytes").total(),
        }
        return checks, metrics

    def _judge_wire(self, client, failures):
        """The wire-only invariants plus deterministic failover metrics.

        Replica URLs carry ephemeral ports, so the report keys breakers
        by index — two replays of the same seed must produce identical
        bytes.
        """
        from repro.chaos.faults import WIRE_KINDS
        from repro.serve.failover import LEGAL_TRANSITIONS

        scenario = self.scenario
        checks: list[InvariantCheck] = []
        taxonomy = {
            "VisualCloudError",
            "CatalogError",
            "SegmentNotFoundError",
            "SegmentCorruptError",
            "TransientSegmentError",
            "SegmentReadTimeout",
        }
        raw = [
            (index, message)
            for index, message in failures
            if message.split(":", 1)[0] not in taxonomy
        ]
        checks.append(
            InvariantCheck(
                "no_raw_transport_errors",
                ok=not raw,
                details=(
                    "; ".join(f"session {i}: {msg}" for i, msg in raw) if raw else ""
                ),
            )
        )
        trails: dict[str, list] = {}
        illegal = []
        for index, replica in enumerate(client.replicas.replicas):
            edges = list(replica.breaker.transitions)
            trails[f"replica-{index}"] = [list(edge) for edge in edges]
            illegal.extend(
                (index, edge) for edge in edges if edge not in LEGAL_TRANSITIONS
            )
        checks.append(
            InvariantCheck(
                "circuit_monotone",
                ok=not illegal,
                details=f"illegal breaker edges: {illegal[:10]}" if illegal else "",
            )
        )
        wire_injected = sum(
            scenario.plan.injected.get(kind, 0) for kind in WIRE_KINDS
        )
        if scenario.invariants.get("expect_wire_faults"):
            checks.append(
                InvariantCheck(
                    "expected_wire_faults",
                    ok=wire_injected >= 1,
                    details="" if wire_injected else "the proxy injected nothing",
                )
            )
        extra_metrics = {
            "wire_calls": scenario.plan.calls("wire"),
            "breaker_transitions": trails,
            "failover": {
                "requests": client.metrics.counter("failover.requests").total(),
                "failovers": client.metrics.counter("failover.failovers").total(),
                "hedges": client.metrics.counter("failover.hedges").total(),
                "budget_exhausted": client.metrics.counter(
                    "failover.budget_exhausted"
                ).total(),
                "budget_spent": client.budget.spent,
                "budget_denied": client.budget.denied,
            },
        }
        return checks, extra_metrics

    def _judge(
        self,
        db,
        meta,
        reports,
        failures,
        registry=None,
        extra_checks=(),
        extra_metrics=None,
    ) -> InvariantReport:
        scenario = self.scenario
        checks: list[InvariantCheck] = []
        completed = [report for report in reports if report is not None]

        checks.append(
            InvariantCheck(
                "no_uncaught_exceptions",
                ok=not failures,
                details="; ".join(f"session {i}: {msg}" for i, msg in failures),
            )
        )

        incomplete = [
            index
            for index, report in enumerate(reports)
            if report is not None and len(report.records) != meta.gop_count
        ]
        checks.append(
            InvariantCheck(
                "sessions_complete",
                ok=not incomplete and not failures,
                details=f"sessions with missing windows: {incomplete}" if incomplete else "",
            )
        )

        uncovered = []
        for index, report in enumerate(reports):
            if report is None:
                continue
            for record in report.records:
                for tile in sorted(record.visible_tiles):
                    if tile not in record.quality_map:
                        uncovered.append((index, record.window, tile))
        checks.append(
            InvariantCheck(
                "visible_tile_coverage",
                ok=not uncovered,
                details=(
                    f"visible tiles with no delivered rung: {uncovered[:10]}"
                    if uncovered
                    else ""
                ),
            )
        )

        upgrades = []
        for index, report in enumerate(reports):
            if report is None:
                continue
            for record in report.records:
                requested_map = record.requested_map or {}
                for tile, delivered in record.quality_map.items():
                    requested = requested_map.get(tile)
                    if requested is not None and delivered > requested:
                        upgrades.append((index, record.window, tile))
                for event in record.events:
                    if event.delivered is not None and event.delivered > event.requested:
                        upgrades.append((index, event.window, event.tile))
        checks.append(
            InvariantCheck(
                "no_silent_upgrade",
                ok=not upgrades,
                details=f"tiles above the requested rung: {upgrades[:10]}" if upgrades else "",
            )
        )

        stream_metrics = registry if registry is not None else db.metrics
        checks.append(self._check_qoe_floor(completed))
        if scenario.invariants.get("expect_degradations"):
            total = sum(report.degradation_count for report in completed)
            checks.append(
                InvariantCheck(
                    "expected_degradations",
                    ok=total >= 1,
                    details="" if total else "plan injected no effective degradation",
                )
            )
        max_degradations = scenario.invariants.get("max_degradations")
        if max_degradations is not None:
            total = sum(report.degradation_count for report in completed)
            checks.append(
                InvariantCheck(
                    "bounded_degradation",
                    ok=total <= int(max_degradations),
                    details=(
                        f"{total} degradation events > allowed {max_degradations}"
                        if total > int(max_degradations)
                        else ""
                    ),
                )
            )
        checks.append(self._check_cache_consistency(db))
        checks.append(self._check_metrics_agree(stream_metrics, completed))
        checks.extend(extra_checks)

        events = []
        for index, report in enumerate(reports):
            if report is None:
                continue
            for event in report.degradation_events:
                events.append({"session": index, **event.to_json()})
        session_summaries = [
            {"session": index, **report.summary()}
            for index, report in enumerate(reports)
            if report is not None
        ]
        metrics = {
            "faults_injected": dict(sorted(scenario.plan.injected.items())),
            "storage_calls": scenario.plan.calls("storage"),
            "cache_calls": scenario.plan.calls("cache"),
            "retries": stream_metrics.counter("stream.retries").total(),
            "degradations": stream_metrics.counter("stream.degradations").total(),
            "tiles_skipped": stream_metrics.counter("stream.tiles_skipped").total(),
        }
        if extra_metrics:
            metrics.update(extra_metrics)
        return InvariantReport(
            scenario=scenario.name,
            seed=scenario.seed,
            checks=checks,
            events=events,
            sessions=session_summaries,
            metrics=metrics,
        )

    def _check_qoe_floor(self, reports) -> InvariantCheck:
        limits = self.scenario.invariants
        problems = []
        max_stall = limits.get("max_stall_seconds")
        min_visible = limits.get("min_visible_fraction")
        for index, report in enumerate(reports):
            if max_stall is not None and report.stall_time > float(max_stall):
                problems.append(
                    f"session {index} stalled {report.stall_time:.3f}s > {max_stall}"
                )
            if min_visible is not None:
                visible = delivered = 0
                for record in report.records:
                    visible += len(record.visible_tiles)
                    delivered += sum(
                        1 for tile in record.visible_tiles if tile in record.quality_map
                    )
                fraction = delivered / visible if visible else 1.0
                if fraction < float(min_visible):
                    problems.append(
                        f"session {index} delivered {fraction:.3f} of visible "
                        f"tile-windows < {min_visible}"
                    )
        return InvariantCheck("qoe_floor", ok=not problems, details="; ".join(problems))

    def _check_cache_consistency(self, db) -> InvariantCheck:
        cache = db.storage.segment_cache
        if cache is None:
            return InvariantCheck("cache_disk_consistency", ok=True, details="cache disabled")
        stale = []
        for key, payload in cache.items():
            if not (isinstance(key, tuple) and len(key) == 5):
                continue
            name, gop, tile, quality, file_version = key
            path = db.storage.catalog.segment_path(name, gop, tile, quality, file_version)
            if not path.exists() or path.read_bytes() != payload:
                stale.append((name, gop, tile, quality.label))
        return InvariantCheck(
            "cache_disk_consistency",
            ok=not stale,
            details=f"cached bytes diverge from disk: {stale[:10]}" if stale else "",
        )

    def _check_metrics_agree(self, registry, reports) -> InvariantCheck:
        event_degrades = sum(
            1
            for report in reports
            for event in report.degradation_events
            if event.kind == "degrade"
        )
        event_skips = sum(
            1
            for report in reports
            for event in report.degradation_events
            if event.kind == "skip"
        )
        counted_degrades = registry.counter("stream.degradations").total()
        counted_skips = registry.counter("stream.tiles_skipped").total()
        problems = []
        if counted_degrades != event_degrades:
            problems.append(
                f"stream.degradations={counted_degrades} but {event_degrades} degrade events"
            )
        if counted_skips != event_skips:
            problems.append(
                f"stream.tiles_skipped={counted_skips} but {event_skips} skip events"
            )
        return InvariantCheck(
            "metrics_events_agree", ok=not problems, details="; ".join(problems)
        )
