"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is the single artifact a chaos run replays: a seed,
a list of :class:`FaultRule`\\ s over segment reads (and cache lookups),
and the link's blackout windows. Two runs of the same plan with the same
seed inject the *same* faults at the *same* points — determinism is what
turns chaos from flakiness into a regression suite.

Scheduling dimensions, combinable per rule:

* ``calls`` — explicit 1-based indices into the plan's global call
  counter (every matching read increments it);
* ``every`` — every Nth matching call;
* ``rate`` — per-call probability, drawn from a per-rule RNG seeded from
  ``(plan seed, rule index)``;
* ``media`` — only reads whose GOP starts inside ``[t0, t1)`` media
  seconds are eligible (the "blackout this scene" scheduler).

``burst`` makes a fired rule sticky: the next ``burst - 1`` reads of the
*same segment* also fault, which is what forces a bounded-retry policy
to actually exhaust and degrade rather than always healing on the first
retry.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field

#: Fault kinds understood by the wrappers.
#: Storage-target kinds: ``missing`` (persistent index/file loss),
#: ``corrupt`` (persistent, detected at validation), ``torn`` (a
#: half-written segment file under an intact index entry — persistent
#: but *repairable*: a replica or scrub pass can restore it), ``slow``
#: (transient latency beyond the read budget), ``flaky`` (transient I/O
#: error).
#: Cache-target kind: ``evict`` (the entry vanishes before lookup).
#: Wire-target kinds (injected by :class:`repro.chaos.proxy.ChaosProxy`
#: between client and server): ``refuse`` (the connection dies before
#: any response byte), ``reset`` (abrupt close mid-status-line),
#: ``truncate`` (headers plus a ``fraction`` of the body, then close),
#: ``trickle`` (slow-loris: the body dribbles one byte per ``delay``
#: seconds until the client gives up), ``delay`` (fixed added latency,
#: then a clean response).
WIRE_KINDS = ("refuse", "reset", "truncate", "trickle", "delay")
STORAGE_KINDS = ("missing", "corrupt", "torn", "slow", "flaky")
KINDS = STORAGE_KINDS + ("evict",) + WIRE_KINDS
TARGETS = ("storage", "cache", "wire")

#: Bound on the remembered injection log (the counters are always exact).
_LOG_LIMIT = 10_000


@dataclass(frozen=True)
class FaultRule:
    """One fault source: what to inject, where, and when."""

    kind: str
    target: str = "storage"
    rate: float = 0.0
    calls: tuple[int, ...] = ()
    every: int = 0
    burst: int = 1
    video: str | None = None
    gop: int | None = None
    tile: tuple[int, int] | None = None
    quality: str | None = None  # a Quality label
    media: tuple[float, float] | None = None
    delay: float = 0.0  # seconds; used by ``slow``, ``trickle``, ``delay``
    fraction: float = 0.5  # body fraction forwarded by ``truncate``

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use one of {KINDS}")
        if self.target not in TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}; use one of {TARGETS}")
        if self.kind == "evict" and self.target != "cache":
            raise ValueError("'evict' faults only make sense with target='cache'")
        if self.kind in STORAGE_KINDS and self.target not in ("storage",):
            raise ValueError(
                f"{self.kind!r} is a storage fault; it needs target='storage'"
            )
        if self.kind in WIRE_KINDS and self.target != "wire":
            raise ValueError(
                f"{self.kind!r} is a wire fault; it needs target='wire'"
            )
        if self.target == "wire" and self.kind not in WIRE_KINDS:
            raise ValueError(
                f"target='wire' only injects {WIRE_KINDS}, not {self.kind!r}"
            )
        if not 0.0 < self.fraction < 1.0 and self.kind == "truncate":
            raise ValueError(f"fraction must be in (0, 1), got {self.fraction}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.every < 0:
            raise ValueError(f"every must be >= 0, got {self.every}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.rate == 0.0 and not self.calls and self.every == 0:
            raise ValueError("rule never fires: set rate, calls, or every")
        if self.media is not None and self.media[1] <= self.media[0]:
            raise ValueError(f"empty media interval {self.media}")
        object.__setattr__(self, "calls", tuple(int(call) for call in self.calls))
        if any(call < 1 for call in self.calls):
            raise ValueError("call indices are 1-based")

    def matches(
        self,
        video: str,
        gop: int,
        tile: tuple[int, int],
        quality: str,
        media_time: float | None,
    ) -> bool:
        if self.video is not None and self.video != video:
            return False
        if self.gop is not None and self.gop != gop:
            return False
        if self.tile is not None and tuple(self.tile) != tuple(tile):
            return False
        if self.quality is not None and self.quality != quality:
            return False
        if self.media is not None:
            if media_time is None or not self.media[0] <= media_time < self.media[1]:
                return False
        return True

    def to_json(self) -> dict:
        data = {"kind": self.kind}
        if self.target != "storage":
            data["target"] = self.target
        if self.rate:
            data["rate"] = self.rate
        if self.calls:
            data["calls"] = list(self.calls)
        if self.every:
            data["every"] = self.every
        if self.burst != 1:
            data["burst"] = self.burst
        for key in ("video", "gop", "quality"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.tile is not None:
            data["tile"] = list(self.tile)
        if self.media is not None:
            data["media"] = list(self.media)
        if self.delay:
            data["delay"] = self.delay
        if self.fraction != 0.5:
            data["fraction"] = self.fraction
        return data

    @classmethod
    def from_json(cls, data: dict) -> "FaultRule":
        kwargs = dict(data)
        if "calls" in kwargs:
            kwargs["calls"] = tuple(kwargs["calls"])
        if "tile" in kwargs and kwargs["tile"] is not None:
            kwargs["tile"] = tuple(kwargs["tile"])
        if "media" in kwargs and kwargs["media"] is not None:
            kwargs["media"] = tuple(kwargs["media"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultDecision:
    """The plan's verdict for one call: which rule fired, and how."""

    kind: str
    rule_index: int
    delay: float = 0.0
    fraction: float = 0.5


class FaultPlan:
    """A seeded schedule of faults, replayable and thread-safe.

    ``decide`` is the single consultation point the wrappers call per
    read; it advances the plan's call counter, per-rule RNG streams, and
    burst state under one lock, so sequential runs are bit-reproducible
    and concurrent runs stay exact (every decision is counted exactly
    once — the stress test pins this).

    ``blackouts`` are link-level faults: intervals of (wall-clock
    simulation) seconds during which the served bandwidth collapses to
    ``blackout_floor`` bytes/s. Apply them to a bandwidth model with
    :meth:`apply_to_bandwidth`.
    """

    def __init__(
        self,
        rules: tuple[FaultRule, ...] | list[FaultRule] = (),
        seed: int = 0,
        blackouts: tuple[tuple[float, float], ...] = (),
        blackout_floor: float = 1.0,
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.blackouts = tuple((float(a), float(b)) for a, b in blackouts)
        self.blackout_floor = float(blackout_floor)
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Rewind to the start of the schedule (fresh RNGs, zero calls)."""
        with self._lock:
            self._calls = {target: 0 for target in TARGETS}
            self._rngs = [
                random.Random(f"{self.seed}:{index}")
                for index in range(len(self.rules))
            ]
            self._bursts: dict[tuple[int, tuple], int] = {}
            self.injected: dict[str, int] = {}
            self.log: list[dict] = []

    def calls(self, target: str = "storage") -> int:
        with self._lock:
            return self._calls[target]

    def decide(
        self,
        video: str,
        gop: int,
        tile: tuple[int, int],
        quality: str,
        media_time: float | None = None,
        target: str = "storage",
    ) -> FaultDecision | None:
        """Should the current call fault? First matching rule wins.

        ``quality`` is a ladder label (``Quality.label``). Rate draws are
        consumed only by rules whose filters match the call, so adding a
        tightly-filtered rule does not perturb the schedule of the rest.
        """
        if target not in TARGETS:
            raise ValueError(f"unknown fault target {target!r}")
        key = (video, int(gop), tuple(tile), str(quality))
        with self._lock:
            self._calls[target] += 1
            call = self._calls[target]
            decision = None
            for index, rule in enumerate(self.rules):
                if rule.target != target:
                    continue
                if not rule.matches(video, gop, tile, str(quality), media_time):
                    continue
                burst_key = (index, key)
                remaining = self._bursts.get(burst_key, 0)
                if remaining > 0:
                    self._bursts[burst_key] = remaining - 1
                    decision = FaultDecision(rule.kind, index, rule.delay, rule.fraction)
                    break
                fired = call in rule.calls
                if not fired and rule.every:
                    fired = call % rule.every == 0
                if not fired and rule.rate > 0.0:
                    fired = self._rngs[index].random() < rule.rate
                if fired:
                    if rule.burst > 1:
                        self._bursts[burst_key] = rule.burst - 1
                    decision = FaultDecision(rule.kind, index, rule.delay, rule.fraction)
                    break
            if decision is not None:
                self.injected[decision.kind] = self.injected.get(decision.kind, 0) + 1
                if len(self.log) < _LOG_LIMIT:
                    self.log.append(
                        {
                            "call": call,
                            "target": target,
                            "kind": decision.kind,
                            "rule": decision.rule_index,
                            "video": video,
                            "gop": int(gop),
                            "tile": list(tile),
                            "quality": str(quality),
                        }
                    )
            return decision

    def decide_key(
        self,
        video: str,
        key,
        media_time: float | None = None,
        target: str = "storage",
    ) -> FaultDecision | None:
        """:meth:`decide` addressed by a canonical ``dash.SegmentKey``.

        Wrappers that already hold a ``SegmentKey`` (the wire server, the
        chaos storage shim) consult the plan through this so rule matching
        uses the same identity as URLs and cache entries.
        """
        return self.decide(
            video,
            key.window,
            key.tile,
            key.quality.label,
            media_time=media_time,
            target=target,
        )

    def apply_to_bandwidth(self, model):
        """Wrap a bandwidth model with this plan's blackout windows."""
        if not self.blackouts:
            return model
        from repro.stream.network import BlackoutBandwidth

        return BlackoutBandwidth(model, self.blackouts, floor_rate=self.blackout_floor)

    # -- (de)serialisation ----------------------------------------------------

    def to_json(self) -> dict:
        data: dict = {
            "seed": self.seed,
            "rules": [rule.to_json() for rule in self.rules],
        }
        if self.blackouts:
            data["blackouts"] = [list(interval) for interval in self.blackouts]
            data["blackout_floor"] = self.blackout_floor
        return data

    @classmethod
    def from_json(cls, data: dict, seed: int | None = None) -> "FaultPlan":
        return cls(
            rules=tuple(FaultRule.from_json(rule) for rule in data.get("rules", ())),
            seed=data.get("seed", 0) if seed is None else seed,
            blackouts=tuple(tuple(pair) for pair in data.get("blackouts", ())),
            blackout_floor=data.get("blackout_floor", 1.0),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str, seed: int | None = None) -> "FaultPlan":
        return cls.from_json(json.loads(text), seed=seed)
