"""Fault-injecting views over storage and the segment cache.

Both wrappers are pure delegators with one interception point, so any
code written against :class:`~repro.core.storage.StorageManager` or
:class:`~repro.core.cache.LruSegmentCache` runs unmodified under chaos —
the streamers, the query executor, and the scenario runner all take the
wrapped object where they took the real one.
"""

from __future__ import annotations

import time

from repro.chaos.faults import FaultDecision, FaultPlan
from repro.core.errors import (
    SegmentCorruptError,
    SegmentNotFoundError,
    SegmentReadTimeout,
    TransientSegmentError,
)
from repro.stream.dash import SegmentKey
from repro.video.quality import Quality
from repro.video.tiles import TiledGop


class ChaosStorageManager:
    """A storage manager whose ``read_segment`` obeys a fault plan.

    Every read consults the plan *before* touching the real store; a
    fired fault surfaces as the matching error from the storage error
    contract (``missing`` → :class:`SegmentNotFoundError`, ``corrupt`` →
    :class:`SegmentCorruptError`, ``torn`` → :class:`SegmentCorruptError`
    with ``repairable=True``, ``slow`` → :class:`SegmentReadTimeout`,
    ``flaky`` → :class:`TransientSegmentError`). ``read_window`` is
    reimplemented through the faulty ``read_segment`` so window assembly
    cannot bypass injection. Everything else (ingest, metadata,
    manifests, vacuum, metrics) delegates to the wrapped manager.

    ``slow_tolerance`` is the simulated read-latency budget: a slow
    fault whose ``delay`` is within the budget merely delays (optionally
    sleeping for real when ``simulate_sleep`` is set — off by default to
    keep harness runs fast) and then serves the bytes; beyond it, the
    read times out.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        slow_tolerance: float = 0.0,
        simulate_sleep: bool = False,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.slow_tolerance = slow_tolerance
        self.simulate_sleep = simulate_sleep

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _raise_for(self, decision: FaultDecision, context: str) -> None:
        if decision.kind == "missing":
            raise SegmentNotFoundError(f"injected fault: segment missing ({context})")
        if decision.kind == "corrupt":
            raise SegmentCorruptError(
                f"injected fault: segment failed validation ({context})"
            )
        if decision.kind == "torn":
            # A half-written file under an intact index entry: persistent,
            # but the repair taxonomy applies — a replica still holds the
            # committed bytes, so read-repair / scrub can heal it.
            error = SegmentCorruptError(
                f"injected fault: torn write — partial segment on disk ({context})"
            )
            error.repairable = True
            raise error
        if decision.kind == "slow":
            raise SegmentReadTimeout(
                f"injected fault: read exceeded {self.slow_tolerance:.3f}s "
                f"budget by {decision.delay:.3f}s ({context})"
            )
        if decision.kind == "flaky":
            raise TransientSegmentError(f"injected fault: transient I/O error ({context})")
        raise AssertionError(f"storage wrapper cannot inject {decision.kind!r}")

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality: Quality,
        version: int | None = None,
    ) -> bytes:
        meta = self.inner.meta(name, version)
        media_time = meta.gop_start_time(gop) if 0 <= gop < meta.gop_count else None
        key = SegmentKey(gop, tile, quality)
        decision = self.plan.decide_key(
            name, key, media_time=media_time, target="storage"
        )
        if decision is not None:
            context = f"{name!r} segment {key.to_path()}"
            if decision.kind == "slow" and decision.delay <= self.slow_tolerance:
                if self.simulate_sleep:
                    time.sleep(min(decision.delay, 0.05))
            else:
                self._raise_for(decision, context)
        return self.inner.read_segment(name, gop, tile, quality, version)

    def read_window(
        self,
        name: str,
        gop: int,
        quality_map: dict[tuple[int, int], Quality],
        version: int | None = None,
    ) -> TiledGop:
        meta = self.inner.meta(name, version)
        payloads = {
            tile: self.read_segment(name, gop, tile, quality, version)
            for tile, quality in quality_map.items()
        }
        return TiledGop(
            width=meta.width,
            height=meta.height,
            grid=meta.grid,
            frame_count=meta.gop_frame_counts[gop],
            payloads=payloads,
        )

    def decode_window(
        self, name: str, gop: int, quality: Quality, version: int | None = None
    ):
        meta = self.inner.meta(name, version)
        quality_map = {tile: quality for tile in meta.grid.tiles()}
        return self.read_window(name, gop, quality_map, version).decode()


class ChaosSegmentCache:
    """A segment cache whose lookups obey a fault plan.

    The only cache-level fault is ``evict``: the key is invalidated the
    instant before the lookup, forcing a miss (and, under concurrency,
    exercising the invalidation fence against whatever load is already
    in flight). Keys that do not look like storage segment keys —
    ``(name, gop, tile, quality, version)`` tuples — bypass the plan.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __len__(self) -> int:
        return len(self.inner)

    def _decide(self, key) -> FaultDecision | None:
        if not (isinstance(key, tuple) and len(key) >= 4):
            return None
        name, gop, tile, quality = key[0], key[1], key[2], key[3]
        label = quality.label if isinstance(quality, Quality) else str(quality)
        return self.plan.decide(name, gop, tile, label, target="cache")

    def get_or_load(self, key, loader):
        decision = self._decide(key)
        if decision is not None and decision.kind == "evict":
            self.inner.invalidate(key)
        return self.inner.get_or_load(key, loader)

    def get(self, key):
        decision = self._decide(key)
        if decision is not None and decision.kind == "evict":
            self.inner.invalidate(key)
        return self.inner.get(key)
