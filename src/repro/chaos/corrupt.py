"""Corruption primitives: structured damage for stored artifacts.

The failure-injection suite used to hand-roll its corruptions (chop ten
bytes here, flip a byte there); these helpers generate *structural*
corpora instead — truncation at every framing boundary of a GOP
bitstream or every atom boundary of a metadata file, bit flips aimed at
header vs payload regions, and the empty file — so the parser error
contract is exercised where real damage lands, and every case is
labelled for parametrized tests.
"""

from __future__ import annotations

import random
import struct

from repro.video.bitstream import read_uvarint

_GOP_HEADER = struct.Struct(">4sBBHHH")  # mirrors repro.video.gop._HEADER


def truncate(data: bytes, length: int) -> bytes:
    """The first ``length`` bytes (clamped)."""
    return data[: max(0, min(length, len(data)))]


def bit_flip(data: bytes, position: int, bit: int = 0) -> bytes:
    """``data`` with one bit flipped at byte ``position``."""
    if not 0 <= position < len(data):
        raise ValueError(f"position {position} outside [0, {len(data)})")
    if not 0 <= bit < 8:
        raise ValueError(f"bit index must be in [0, 8), got {bit}")
    corrupted = bytearray(data)
    corrupted[position] ^= 1 << bit
    return bytes(corrupted)


def gop_boundaries(data: bytes) -> list[int]:
    """Structural offsets of a GOP bitstream: magic end, header end, and
    each frame chunk's varint/payload boundaries (plus 0 and the end).

    Best-effort on damaged input: parsing stops at the first incoherent
    chunk and whatever boundaries were found are returned.
    """
    boundaries = {0, len(data)}
    if len(data) >= 4:
        boundaries.add(4)  # end of the VGOP magic
    if len(data) >= _GOP_HEADER.size:
        boundaries.add(_GOP_HEADER.size)
        try:
            (_, _, _, _, _, frames) = _GOP_HEADER.unpack_from(data, 0)
            offset = _GOP_HEADER.size
            for _ in range(frames):
                length, payload_start = read_uvarint(data, offset)
                boundaries.add(payload_start)
                if payload_start + length > len(data):
                    break
                offset = payload_start + length
                boundaries.add(offset)
        except ValueError:
            pass
    return sorted(boundary for boundary in boundaries if boundary <= len(data))


def atom_boundaries(data: bytes) -> list[int]:
    """Offsets of every top-level MP4 atom edge (plus header splits).

    Walks the ``(size, kind)`` framing directly rather than the parser,
    so it works even when a *later* atom is damaged.
    """
    boundaries = {0, len(data)}
    offset = 0
    while offset + 8 <= len(data):
        try:
            size, _ = struct.unpack_from(">I4s", data, offset)
        except struct.error:
            break
        if size < 8 or offset + size > len(data):
            break
        boundaries.add(offset + 8)  # after this atom's header
        boundaries.add(offset + size)
        offset += size
    return sorted(boundary for boundary in boundaries if boundary <= len(data))


def _truncation_cases(data: bytes, boundaries: list[int]) -> list[tuple[str, bytes]]:
    cases = []
    for boundary in boundaries:
        if boundary == len(data):
            continue  # not a truncation
        cases.append((f"truncate@{boundary}", truncate(data, boundary)))
        if boundary > 0:
            # One byte short of the boundary: the classic partial write.
            cases.append((f"truncate@{boundary - 1}", truncate(data, boundary - 1)))
    return cases


def segment_corruption_corpus(data: bytes, seed: int = 0) -> list[tuple[str, bytes]]:
    """Labelled corruptions of one encoded GOP segment.

    Covers: the empty file, truncation at every framing boundary (and
    one byte before it), bit flips in the header region, and seeded bit
    flips in the payload region.
    """
    rng = random.Random(seed)
    cases: list[tuple[str, bytes]] = [("zero-length", b"")]
    cases.extend(_truncation_cases(data, gop_boundaries(data)))
    header_end = min(_GOP_HEADER.size, len(data))
    for position in range(header_end):
        cases.append((f"header-bitflip@{position}", bit_flip(data, position, bit=7)))
    if len(data) > header_end:
        for _ in range(8):
            position = rng.randrange(header_end, len(data))
            bit = rng.randrange(8)
            cases.append((f"payload-bitflip@{position}.{bit}", bit_flip(data, position, bit)))
    seen: set[str] = set()
    unique = []
    for label, payload in cases:
        if label not in seen:
            seen.add(label)
            unique.append((label, payload))
    return unique


def metadata_corruption_corpus(data: bytes, seed: int = 0) -> list[tuple[str, bytes]]:
    """Labelled corruptions of one metadata (MP4 container) file.

    Covers: the empty file, truncation at every atom boundary (and one
    byte before it), bit flips in the first atom header, seeded flips in
    atom payloads, and pure garbage of the original length.
    """
    rng = random.Random(seed)
    cases: list[tuple[str, bytes]] = [("zero-length", b"")]
    cases.extend(_truncation_cases(data, atom_boundaries(data)))
    for position in range(min(8, len(data))):
        cases.append((f"header-bitflip@{position}", bit_flip(data, position, bit=7)))
    if len(data) > 8:
        for _ in range(8):
            position = rng.randrange(8, len(data))
            bit = rng.randrange(8)
            cases.append((f"payload-bitflip@{position}.{bit}", bit_flip(data, position, bit)))
    cases.append(("garbage", bytes(rng.randrange(256) for _ in range(len(data) or 64))))
    seen: set[str] = set()
    unique = []
    for label, payload in cases:
        if label not in seen:
            seen.add(label)
            unique.append((label, payload))
    return unique
