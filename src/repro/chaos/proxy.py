"""A deterministic, seeded TCP fault-injecting proxy for the wire.

The storage-level chaos wrappers fault *inside* the server; real
deployments also fail *between* server and headset — connections die
mid-body, responses dribble in at bytes per second, sockets reset. The
:class:`ChaosProxy` sits on a loopback port in front of a
:class:`~repro.serve.server.SegmentServer` and injects exactly those
failures, scheduled by the same :class:`~repro.chaos.faults.FaultPlan`
machinery as every other fault in the harness: the proxy parses each
HTTP request head, derives the segment identity from the URL (the
``/segment/...`` tail is :meth:`SegmentKey.to_path`), and consults
``plan.decide(..., target="wire")`` — so wire faults are targetable by
video/GOP/tile/quality, replay bit-identically per seed, and land in the
plan's ``injected`` accounting next to the storage faults.

Wire fault kinds (see :data:`repro.chaos.faults.WIRE_KINDS`):

* ``refuse`` — the connection closes before a single response byte;
* ``reset`` — a few bytes of status line, then a hard RST-style close;
* ``truncate`` — full headers plus ``fraction`` of the body, then close
  (a mid-body disconnect the client must detect, not hang on);
* ``trickle`` — slow-loris: the body arrives one byte per ``delay``
  seconds, which a correctly-budgeted client must abandon as a timeout;
* ``delay`` — ``delay`` seconds of added latency, then a clean relay.

The proxy is request-oriented: it never interprets response semantics
beyond framing (``Content-Length``), forwards request heads verbatim,
and holds one upstream connection per client connection — so keep-alive,
pipelining of sequential requests, and the server's shedding behaviour
all pass through untouched when no rule fires.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

from repro.chaos.faults import FaultPlan
from repro.stream.dash import SegmentKey

_MAX_HEAD = 16 * 1024
#: Ceiling on trickled bytes: enough to outlast any sane client timeout
#: at one byte per ``delay`` seconds without wedging a proxy thread
#: forever if the client never hangs up.
_TRICKLE_LIMIT = 512


def _read_head(sock: socket.socket) -> bytes:
    """Read one HTTP head (through ``\\r\\n\\r\\n``); b"" on EOF."""
    data = b""
    while b"\r\n\r\n" not in data:
        if len(data) > _MAX_HEAD:
            return b""
        try:
            chunk = sock.recv(4096)
        except OSError:
            return b""
        if not chunk:
            return b""
        data += chunk
    return data


def _split_response(head_and_more: bytes, sock: socket.socket) -> tuple[bytes, bytes]:
    """Separate one response into (head incl. blank line, full body)."""
    head, _, rest = head_and_more.partition(b"\r\n\r\n")
    head += b"\r\n\r\n"
    length = 0
    for line in head.split(b"\r\n"):
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    body = rest
    while len(body) < length:
        chunk = sock.recv(min(65536, length - len(body)))
        if not chunk:
            break
        body += chunk
    return head, body


class ChaosProxy:
    """A fault-injecting TCP relay in front of one upstream server.

    ``plan=None`` (or a plan with no wire rules) makes the proxy a pure
    pass-through — the chaos scenario runner uses that for the healthy
    replicas of a tier while the faulty one gets the plan.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        plan: FaultPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        upstream_timeout: float = 10.0,
    ) -> None:
        self.upstream = upstream
        self.plan = plan
        self.host = host
        self.port = port
        self.upstream_timeout = upstream_timeout
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._open_sockets: set[socket.socket] = set()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        self._stopping.clear()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            # close() alone does not wake a thread blocked in accept();
            # shutdown() does.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            victims = list(self._open_sockets)
        for sock in victims:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ChaosProxy":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the relay ------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set() and listener is not None:
            try:
                client, _ = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            threading.Thread(
                target=self._serve_connection, args=(client,), daemon=True
            ).start()

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_sockets.add(sock)

    def _untrack(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_sockets.discard(sock)

    def _decide(self, request_head: bytes):
        if self.plan is None:
            return None
        line = request_head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = line.split(" ")
        path = parts[1] if len(parts) >= 2 else "/"
        segments = [part for part in path.split("?", 1)[0].split("/") if part]
        if len(segments) == 6 and segments[0] == "segment":
            try:
                key = SegmentKey.from_path("/".join(segments[2:]))
                return self.plan.decide_key(segments[1], key, target="wire")
            except ValueError:
                pass
        # Non-segment traffic (manifest, metrics, healthz, junk): match
        # on the route name so unfiltered rules still fire; the sentinel
        # coordinates can never collide with a real segment.
        name = segments[1] if len(segments) > 1 else (segments[0] if segments else "-")
        return self.plan.decide(name, -1, (-1, -1), "-", target="wire")

    @staticmethod
    def _abort(sock: socket.socket) -> None:
        """Close with a pending-data reset rather than a graceful FIN."""
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _serve_connection(self, client: socket.socket) -> None:
        self._track(client)
        upstream: socket.socket | None = None
        try:
            client.settimeout(self.upstream_timeout)
            while not self._stopping.is_set():
                request_head = _read_head(client)
                if not request_head:
                    return
                decision = self._decide(request_head)
                if decision is not None and decision.kind == "refuse":
                    # Not one response byte: to the client this is a
                    # refused/died connection.
                    self._abort(client)
                    return
                if decision is not None and decision.kind == "delay":
                    time.sleep(decision.delay)
                if upstream is None:
                    upstream = socket.create_connection(
                        self.upstream, timeout=self.upstream_timeout
                    )
                    self._track(upstream)
                try:
                    upstream.sendall(request_head)
                    raw = _read_head(upstream)
                    if not raw:
                        return  # upstream died; drop the client too
                    response_head, body = _split_response(raw, upstream)
                except OSError:
                    return
                if decision is None or decision.kind == "delay":
                    try:
                        client.sendall(response_head + body)
                    except OSError:
                        return
                    if b"connection: close" in response_head.lower():
                        return
                    continue
                if decision.kind == "reset":
                    try:
                        client.sendall(response_head[:12])
                    except OSError:
                        pass
                    self._abort(client)
                    return
                if decision.kind == "truncate":
                    cut = max(1, int(len(body) * decision.fraction)) if body else 0
                    try:
                        client.sendall(response_head + body[:cut])
                    except OSError:
                        pass
                    # Graceful FIN, not RST: the cut bytes must reach the
                    # client so it deterministically observes a short body
                    # (IncompleteRead), not a racy reset.
                    try:
                        client.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    try:
                        client.close()
                    except OSError:
                        pass
                    return
                if decision.kind == "trickle":
                    gap = decision.delay if decision.delay > 0 else 0.05
                    try:
                        client.sendall(response_head)
                        for offset in range(min(len(body), _TRICKLE_LIMIT)):
                            time.sleep(gap)
                            if self._stopping.is_set():
                                return
                            client.sendall(body[offset : offset + 1])
                    except OSError:
                        return  # the client gave up — the intended outcome
                    return
                raise AssertionError(f"proxy cannot inject {decision.kind!r}")
        finally:
            self._untrack(client)
            try:
                client.close()
            except OSError:
                pass
            if upstream is not None:
                self._untrack(upstream)
                try:
                    upstream.close()
                except OSError:
                    pass
