"""The predictive control plane: forecast demand, plan placement and
admission, actuate through the serve tier's runtime endpoints.

The loop (see :class:`Controller`):

    metrics stream ──► forecaster ──► planner ──► actuators
    (obs deltas)       (EWMA+trend)   (pure,       (handle / HTTP,
                                      versioned)    rollback-refused)

Configure through :class:`ClusterConfig` — the one object the serve
entry points (``VisualCloud.serve``, the CLI, the bench driver) accept.
"""

from repro.control.actuators import HandleActuator, HttpActuator, StalePlanError
from repro.control.config import ClusterConfig, ControlConfig, cluster_from_legacy_kwargs
from repro.control.controller import (
    Controller,
    catalog_from_storage,
    default_segment_weights,
    nodes_from_config,
)
from repro.control.forecast import (
    EwmaTrendForecaster,
    FORECASTERS,
    Forecast,
    make_forecaster,
)
from repro.control.planner import ControlPlan, NodePlan, NodeState, Planner, diff_plans

__all__ = [
    "ClusterConfig",
    "ControlConfig",
    "ControlPlan",
    "Controller",
    "EwmaTrendForecaster",
    "FORECASTERS",
    "Forecast",
    "HandleActuator",
    "HttpActuator",
    "NodePlan",
    "NodeState",
    "Planner",
    "StalePlanError",
    "catalog_from_storage",
    "cluster_from_legacy_kwargs",
    "default_segment_weights",
    "diff_plans",
    "make_forecaster",
    "nodes_from_config",
]
