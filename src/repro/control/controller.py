"""The background controller: observe → forecast → plan → actuate.

One loop closes what ROADMAP item 2 left open: the serve tier had
popularity weights, live metrics, hot-set pinning, and admission
control, but nothing connecting *predicted* demand to any of them. The
:class:`Controller` is that connection, structured exactly as the
forecaster/planner/actuator split BRAD uses:

1. **Observe** — diff the metrics snapshot against the previous step's
   (:func:`repro.obs.counter_deltas` over ``serve.video_requests``) to
   get per-video request counts this interval, and read the segment
   endpoint's p99 for the SLO loop.
2. **Forecast** — feed the counts into the pluggable demand forecaster
   (EWMA + trend by default, see :mod:`repro.control.forecast`).
3. **Plan** — hand forecasts, the segment catalog, and node states to
   the pure :class:`~repro.control.planner.Planner`; skip actuation when
   the plan is a no-op modulo version (:func:`diff_plans`).
4. **Actuate** — push the versioned plan through every registered
   actuator (local handle, HTTP endpoints, failover broadcast).

Determinism story: the controller owns no hidden state beyond the
forecaster series and the last plan, both pure functions of the
observation stream. With ``deterministic=True`` the p99 read is skipped
entirely (admission holds position — the planner's NaN contract), so a
replayed request sequence produces byte-identical plans; the chaos
harness drives :meth:`step` explicitly between sessions instead of
running the wall-clock thread, and injects its own metrics source.
"""

from __future__ import annotations

import math
import threading
from time import perf_counter

from repro.control.config import ControlConfig
from repro.control.planner import ControlPlan, NodeState, diff_plans
from repro.obs import MetricsRegistry, counter_deltas, series_label, snapshot_quantile

#: The per-video demand counter the serve tier exports and this loop diffs.
DEMAND_COUNTER_PREFIX = "serve.video_requests"
#: The latency histogram series the SLO loop reads.
LATENCY_SERIES = "serve.request_seconds{endpoint=segment}"


def default_segment_weights(manifest) -> dict:
    """Ladder-rank weights when no viewer traces exist yet: every tile
    equally popular, better rungs ahead of the floor — the same shape
    :func:`repro.core.popularity.segment_weights` produces from a
    uniform popularity map."""
    ladder = {quality: rank for rank, quality in enumerate(manifest.qualities)}
    rungs = max(1, len(manifest.qualities))
    return {
        key: 1.0 - ladder.get(key.quality, rungs - 1) / (2.0 * rungs)
        for key in manifest.segment_sizes
    }


def catalog_from_storage(storage, weights_by_video: dict | None = None) -> dict:
    """The planner's catalog view built from a storage manager:
    ``{video: ((request path, weight, size bytes), ...)}``.

    ``weights_by_video`` optionally maps video name → ``{SegmentKey:
    weight}`` (feed it :func:`repro.core.popularity.segment_weights`
    built from real traces); videos without an entry fall back to
    :func:`default_segment_weights`.
    """
    catalog: dict = {}
    for name in storage.list_videos():
        manifest = storage.build_manifest(name)
        weights = (weights_by_video or {}).get(name) or default_segment_weights(
            manifest
        )
        catalog[name] = tuple(
            sorted(
                (
                    f"/segment/{name}/{key.to_path()}",
                    float(weights.get(key, 0.0)),
                    int(size),
                )
                for key, size in manifest.segment_sizes.items()
            )
        )
    return catalog


def nodes_from_config(config) -> tuple[NodeState, ...]:
    """A single-node state vector from one :class:`ServerConfig` — the
    unsharded (or uniformly-workered) deployment case."""
    return (
        NodeState(
            node_id=config.node_id,
            pin_budget_bytes=config.pin_budget_bytes,
            max_inflight=config.max_inflight,
            processes=config.processes,
        ),
    )


class Controller:
    """The control loop. Construct with callables, not objects: the
    metrics/catalog/node sources are injection points, which is the
    whole deterministic-mode mechanism.

    * ``metrics_source()`` → a registry snapshot dict;
    * ``catalog_source()`` → the planner catalog
      (:func:`catalog_from_storage` shape);
    * ``nodes_source()`` → ``tuple[NodeState, ...]``;
    * ``actuators`` — objects with ``apply(plan) -> dict``.

    Run it either as a daemon thread (:meth:`start`/:meth:`stop`, one
    :meth:`step` per ``config.interval`` seconds) or drive :meth:`step`
    by hand — the chaos harness and every unit test do the latter.
    """

    def __init__(
        self,
        config: ControlConfig,
        *,
        metrics_source,
        catalog_source,
        nodes_source,
        actuators=(),
        registry: MetricsRegistry | None = None,
        clock=perf_counter,
    ) -> None:
        self.config = config
        self.forecaster = config.build_forecaster()
        self.planner = config.planner()
        self._metrics_source = metrics_source
        self._catalog_source = catalog_source
        self._nodes_source = nodes_source
        self.actuators = list(actuators)
        self._clock = clock
        self.plan: ControlPlan | None = None
        self._previous_snapshot: dict | None = None
        self._catalog: dict | None = None
        self._thread: threading.Thread | None = None
        self._wake = threading.Event()
        registry = registry or MetricsRegistry()
        self.metrics = registry
        self._steps = registry.counter(
            "control.steps", "controller observe/plan iterations"
        ).labels()
        self._applied = registry.counter(
            "control.plans_applied", "plans pushed through actuators"
        ).labels()
        self._noops = registry.counter(
            "control.plans_noop", "steps whose plan changed nothing"
        ).labels()
        self._errors = registry.counter(
            "control.actuate_errors", "actuator applications that raised"
        ).labels()
        self._gauge_version = registry.gauge(
            "control.plan_version", "version of the last applied plan"
        )
        self._step_seconds = registry.histogram(
            "control.step_seconds", "wall time per controller step"
        ).labels()

    # -- observation ----------------------------------------------------------

    def _observe_demand(self, snapshot: dict) -> dict[str, float]:
        """Per-video request counts this interval, from counter deltas."""
        deltas = counter_deltas(
            self._previous_snapshot or {}, snapshot, prefix=DEMAND_COUNTER_PREFIX
        )
        demand: dict[str, float] = {}
        for name, delta in deltas.items():
            video = series_label(name, "video")
            if video:
                demand[video] = demand.get(video, 0.0) + delta
        return demand

    def _observe_p99(self, snapshot: dict) -> float:
        if self.config.deterministic:
            # NaN means "hold position" to the planner; skipping the
            # read entirely is what keeps replayed plans byte-identical
            # (latency histograms are wall-clock, counters are not).
            return math.nan
        return snapshot_quantile(snapshot, LATENCY_SERIES, "p99")

    # -- one iteration --------------------------------------------------------

    def step(self) -> ControlPlan | None:
        """Observe, forecast, plan, and (when the plan changes anything)
        actuate. Returns the applied plan, or None on a no-op step."""
        started = self._clock()
        snapshot = self._metrics_source()
        demand = self._observe_demand(snapshot)
        p99 = self._observe_p99(snapshot)
        self._previous_snapshot = snapshot
        self._steps.inc()

        for video in sorted(demand):
            self.forecaster.observe(video, demand[video])
        forecasts = self.forecaster.forecasts()

        if self._catalog is None or any(
            video not in self._catalog for video in forecasts
        ):
            self._catalog = self._catalog_source()
        plan = self.planner.plan(
            forecasts,
            self._catalog,
            tuple(self._nodes_source()),
            observed_p99=p99,
            previous=self.plan,
        )
        if not diff_plans(self.plan, plan):
            self._noops.inc()
            self._step_seconds.observe(self._clock() - started)
            return None
        for actuator in self.actuators:
            try:
                actuator.apply(plan)
            except Exception:
                self._errors.inc()
        self.plan = plan
        self._applied.inc()
        self._gauge_version.set(plan.version)
        self._step_seconds.observe(self._clock() - started)
        return plan

    # -- background thread ----------------------------------------------------

    def start(self) -> None:
        """Run :meth:`step` every ``config.interval`` seconds in a
        daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._wake.clear()
        self._thread = threading.Thread(
            target=self._run, name="control-loop", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._wake.wait(self.config.interval):
            try:
                self.step()
            except Exception:
                # The loop must outlive transient scrape/actuation
                # failures (a server mid-restart, a refused stale plan);
                # the error counter is the visibility.
                self._errors.inc()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._wake.set()
        thread.join(timeout=10.0)
        self._thread = None


__all__ = [
    "Controller",
    "DEMAND_COUNTER_PREFIX",
    "LATENCY_SERIES",
    "catalog_from_storage",
    "default_segment_weights",
    "nodes_from_config",
]
