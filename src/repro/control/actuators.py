"""Actuators: the control loop's hands.

An actuator is anything with ``apply(plan) -> dict``: it delivers a
versioned :class:`~repro.control.planner.ControlPlan` to a serving
node and returns the node's application summary (``{"version": ...,
"pinned": ..., "max_inflight": ...}``). Two transports:

* :class:`HandleActuator` — in-process, for a ``ServerHandle`` or
  ``MultiProcessServerHandle`` (anything exposing
  ``apply_control_plan``); what the bench driver and tests use.
* :class:`HttpActuator` — ``POST /control/plan`` over the wire, for
  nodes this process did not start; what ``repro control`` uses.

Both surface version refusal the same way: a node holding a newer plan
answers 409 (wire) or raises ``ValueError`` (local), and the actuator
raises :class:`StalePlanError` — the controller counts it and moves on,
because a refused stale plan means a newer controller is already in
charge, which is the rollback-refusal pattern working as designed.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from urllib.parse import urlsplit

from repro.control.planner import ControlPlan


class StalePlanError(ValueError):
    """The node refused the plan: it already holds a newer version."""


class HandleActuator:
    """Applies plans to an in-process server handle."""

    def __init__(self, handle) -> None:
        self.handle = handle

    def apply(self, plan: ControlPlan) -> dict:
        try:
            return self.handle.apply_control_plan(plan)
        except ValueError as error:
            raise StalePlanError(str(error)) from error


class HttpActuator:
    """Applies plans to a remote node via ``POST /control/plan``.

    One short-lived connection per application — plans flow at control
    cadence (hertz, not kilohertz), so connection reuse buys nothing and
    a pooled socket would be one more thing to reap on failover.
    """

    def __init__(self, base_url: str, timeout: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parts = urlsplit(self.base_url)
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80

    def apply(self, plan: ControlPlan) -> dict:
        body = json.dumps(plan.to_json(), sort_keys=True).encode("utf-8")
        connection = HTTPConnection(self._host, self._port, timeout=self.timeout)
        try:
            connection.request(
                "POST",
                "/control/plan",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = response.read()
        finally:
            connection.close()
        if response.status == 409:
            raise StalePlanError(payload.decode("utf-8", "replace"))
        if response.status != 200:
            raise RuntimeError(
                f"control plan refused by {self.base_url}: "
                f"{response.status} {payload.decode('utf-8', 'replace')}"
            )
        return json.loads(payload)


__all__ = ["HandleActuator", "HttpActuator", "StalePlanError"]
