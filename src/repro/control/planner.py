"""Planning: versioned cluster plans, computed purely from forecasts.

The planner is the declarative middle of the control loop: it never
looks at a clock, a socket, or a registry. :meth:`Planner.plan` is a
pure function of ``(forecasts, catalog, node states, observed p99,
previous plan)`` — feed it the same inputs and it emits the same
:class:`ControlPlan`, byte for byte. That purity is load-bearing twice
over: it is what the property tests pin, and it is what lets the chaos
harness run the whole controller deterministically (inject a scripted
metrics stream, get identical plans on every replay).

Three decisions per node:

* **What to pre-warm.** Videos whose *predicted* demand crosses
  ``prewarm_threshold`` contribute their segments, each ranked by
  ``predicted demand x popularity weight`` — the same heat number the
  hot set's eviction uses (see :meth:`repro.serve.hotset.HotSet.heat`),
  so the planner and the evictor can never disagree about ordering.
  Segments fill the node's pin budget greedily, hottest first.
* **How hard to admit.** Target ``max_inflight`` moves AIMD-style
  against the p99 SLO: multiplicative decrease when observed p99
  breaches it, additive increase when there is comfortable headroom,
  no change in between — and *no change* when p99 is NaN (no samples,
  or a deterministic run that strips histograms), which is what keeps
  replayed plans identical.
* **How many processes.** A recommendation only — forking is not a
  runtime actuation — sized from total predicted demand per interval
  against ``requests_per_process``.

Plans are versioned and monotonic, reusing the shard-map rollback
refusal: an actuator hands a plan to a server, the server compares
versions, and a stale plan is refused with an error rather than applied
— a replayed or delayed plan can never roll the cluster backwards.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace

from repro.control.forecast import Forecast


@dataclass(frozen=True)
class NodeState:
    """What the planner knows about one serving node: identity, budget,
    configured admission ceiling, and (optionally) which request paths
    it owns under the active shard map (``None`` = owns everything)."""

    node_id: str
    pin_budget_bytes: int = 0
    max_inflight: int | None = None
    processes: int = 1
    owned: tuple[str, ...] | None = None


@dataclass(frozen=True)
class NodePlan:
    """One node's slice of a :class:`ControlPlan`."""

    node_id: str
    max_inflight: int | None
    pin_budget_bytes: int
    processes: int
    # (request path, integer heat) hottest-first; heat feeds
    # ``HotSet.set_base_heat`` so prewarmed pins outrank cold traffic.
    prewarm: tuple[tuple[str, int], ...] = ()

    def to_json(self) -> dict:
        return {
            "node_id": self.node_id,
            "max_inflight": self.max_inflight,
            "pin_budget_bytes": self.pin_budget_bytes,
            "processes": self.processes,
            "prewarm": [[path, heat] for path, heat in self.prewarm],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "NodePlan":
        return cls(
            node_id=payload["node_id"],
            max_inflight=payload["max_inflight"],
            pin_budget_bytes=int(payload["pin_budget_bytes"]),
            processes=int(payload["processes"]),
            prewarm=tuple(
                (str(path), int(heat)) for path, heat in payload.get("prewarm", [])
            ),
        )


@dataclass(frozen=True)
class ControlPlan:
    """A versioned, immutable cluster directive.

    Versions are monotonic per control loop; actuators refuse older
    versions exactly as :meth:`SegmentServer.update_shard_map` refuses
    stale shard maps. ``to_json``/``from_json`` round-trip exactly —
    ``canonical()`` is the byte form the chaos replay diffs.
    """

    version: int
    nodes: tuple[NodePlan, ...] = ()

    def __post_init__(self) -> None:
        if self.version < 0:
            raise ValueError(f"plan version must be >= 0, got {self.version}")
        ids = [node.node_id for node in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in plan: {ids!r}")

    def node(self, node_id: str) -> NodePlan | None:
        """The slice for ``node_id``; a single-node plan keyed ``""``
        applies to any node (the unsharded deployment case)."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        if len(self.nodes) == 1 and self.nodes[0].node_id == "":
            return self.nodes[0]
        return None

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "nodes": [node.to_json() for node in self.nodes],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ControlPlan":
        return cls(
            version=int(payload["version"]),
            nodes=tuple(NodePlan.from_json(node) for node in payload.get("nodes", [])),
        )

    def canonical(self) -> str:
        """The canonical byte form: what replay determinism compares."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Planner:
    """Turns forecasts into a :class:`ControlPlan`. Pure: no clocks, no
    I/O, no hidden state beyond the previous plan passed in."""

    slo_p99: float = 0.25  # seconds; the admission loop's setpoint
    slo_headroom: float = 0.5  # p99 below slo*headroom → raise the ceiling
    prewarm_threshold: float = 1.0  # predicted requests/interval to warm a video
    heat_scale: float = 100.0  # demand x weight → integer heat units
    min_inflight: int = 4  # multiplicative decrease floor
    inflight_ceiling: int | None = None  # additive increase cap (None = config value)
    increase_step: int = 4  # additive increase per interval
    decrease_factor: float = 0.5  # multiplicative decrease on SLO breach
    fallback_inflight: int = 64  # imposed when breaching with no ceiling at all
    requests_per_process: float = 500.0  # predicted interval demand one process absorbs
    max_processes: int = 8

    def __post_init__(self) -> None:
        if self.slo_p99 <= 0:
            raise ValueError(f"slo_p99 must be positive, got {self.slo_p99}")
        if not 0.0 < self.slo_headroom <= 1.0:
            raise ValueError(f"slo_headroom must be in (0, 1], got {self.slo_headroom}")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {self.decrease_factor}"
            )
        if self.min_inflight < 1:
            raise ValueError(f"min_inflight must be >= 1, got {self.min_inflight}")
        if self.increase_step < 1:
            raise ValueError(f"increase_step must be >= 1, got {self.increase_step}")
        if self.requests_per_process <= 0:
            raise ValueError(
                f"requests_per_process must be positive, got {self.requests_per_process}"
            )

    # -- the plan function ----------------------------------------------------

    def plan(
        self,
        forecasts: dict[str, Forecast],
        catalog: dict[str, tuple[tuple[str, float, int], ...]],
        nodes: tuple[NodeState, ...],
        observed_p99: float = math.nan,
        previous: "ControlPlan | None" = None,
    ) -> ControlPlan:
        """The next plan.

        ``forecasts`` is per-video predicted demand (requests per
        interval); ``catalog`` maps each video to its segments as
        ``(request path, popularity weight, size bytes)`` tuples;
        ``observed_p99`` is the segment-endpoint p99 in seconds (NaN =
        no signal, admission stays put). The returned plan's version is
        ``previous.version + 1`` (or 1), regardless of whether anything
        changed — idempotence is the caller's concern, monotonicity is
        ours.
        """
        ranked = self._rank_segments(forecasts, catalog)
        node_plans = []
        for state in sorted(nodes, key=lambda s: s.node_id):
            previous_node = previous.node(state.node_id) if previous else None
            node_plans.append(
                NodePlan(
                    node_id=state.node_id,
                    max_inflight=self._target_inflight(
                        state, previous_node, observed_p99
                    ),
                    pin_budget_bytes=state.pin_budget_bytes,
                    processes=self._target_processes(state, forecasts),
                    prewarm=self._fill_budget(ranked, state),
                )
            )
        version = previous.version + 1 if previous is not None else 1
        return ControlPlan(version=version, nodes=tuple(node_plans))

    # -- pre-warm selection ---------------------------------------------------

    def _rank_segments(
        self,
        forecasts: dict[str, Forecast],
        catalog: dict[str, tuple[tuple[str, float, int], ...]],
    ) -> tuple[tuple[str, int, int], ...]:
        """Every warm-worthy segment as ``(path, heat, size)``, hottest
        first, ties broken by path — one global ordering shared by every
        node's budget fill."""
        ranked: list[tuple[str, int, int]] = []
        for video in sorted(catalog):
            forecast = forecasts.get(video)
            if forecast is None or forecast.predicted < self.prewarm_threshold:
                continue
            for path, weight, size in catalog[video]:
                heat = int(round(forecast.predicted * weight * self.heat_scale))
                if heat > 0:
                    ranked.append((path, heat, int(size)))
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return tuple(ranked)

    @staticmethod
    def _fill_budget(
        ranked: tuple[tuple[str, int, int], ...], state: NodeState
    ) -> tuple[tuple[str, int], ...]:
        if state.pin_budget_bytes <= 0:
            return ()
        owned = None if state.owned is None else set(state.owned)
        chosen: list[tuple[str, int]] = []
        used = 0
        for path, heat, size in ranked:
            if owned is not None and path not in owned:
                continue
            if used + size > state.pin_budget_bytes:
                continue  # a smaller segment may still fit, as in prewarm_pins
            chosen.append((path, heat))
            used += size
        return tuple(chosen)

    # -- admission tuning -----------------------------------------------------

    def _target_inflight(
        self,
        state: NodeState,
        previous: NodePlan | None,
        observed_p99: float,
    ) -> int | None:
        current = previous.max_inflight if previous is not None else state.max_inflight
        if math.isnan(observed_p99):
            return current  # no signal (or deterministic mode): hold position
        if observed_p99 > self.slo_p99:
            if current is None:
                # An unbounded node breaching its SLO gets a ceiling
                # imposed; unbounded shedding-free overload is exactly
                # the failure mode the loop exists to prevent.
                return self.fallback_inflight
            return max(self.min_inflight, int(current * self.decrease_factor))
        if current is None:
            return None  # unbounded and inside SLO: nothing to relax
        if observed_p99 < self.slo_p99 * self.slo_headroom:
            ceiling = (
                self.inflight_ceiling
                if self.inflight_ceiling is not None
                else max(current, state.max_inflight or current)
            )
            return min(ceiling, current + self.increase_step)
        return current

    # -- tier sizing ----------------------------------------------------------

    def _target_processes(
        self, state: NodeState, forecasts: dict[str, Forecast]
    ) -> int:
        demand = sum(forecast.predicted for forecast in forecasts.values())
        recommended = max(1, math.ceil(demand / self.requests_per_process))
        return min(self.max_processes, max(state.processes, recommended))


def diff_plans(before: ControlPlan | None, after: ControlPlan) -> bool:
    """Whether ``after`` changes anything besides its version — the
    controller's idempotence check before waking the actuators."""
    if before is None:
        return True
    return replace(before, version=0) != replace(after, version=0)


__all__ = [
    "ControlPlan",
    "NodePlan",
    "NodeState",
    "Planner",
    "diff_plans",
]
