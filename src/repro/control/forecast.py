"""Demand forecasting: turning the metrics stream into predicted load.

The paper's thesis — and the reason a *DBMS* sits under a VR headset —
is that the system should decide ahead of time what to materialize and
where, from viewport and popularity models, rather than reacting to each
request as it arrives. This module is the "ahead of time" half: it
ingests per-interval demand observations (counter deltas from the
``repro.obs`` metrics stream, weighted by the popularity model) and
emits per-key :class:`Forecast`\\s of where demand is *going*.

The baseline is deliberately simple and exactly reproducible — Holt's
double exponential smoothing (an EWMA of the level plus an EWMA of its
per-interval change):

.. math::

    level_t = \\alpha x_t + (1 - \\alpha)(level_{t-1} + trend_{t-1})
    trend_t = \\beta (level_t - level_{t-1}) + (1 - \\beta) trend_{t-1}

and the prediction at horizon ``h`` intervals is
``max(0, level_t + h * trend_t)``. A flash crowd is precisely the regime
where this beats reacting to observed demand: during the ramp the trend
term is large and positive, so the predicted rate crosses the pre-warm
threshold while the *observed* rate is still small — which is what lets
the planner pin the crowd's segments before the crowd peaks.

Forecasters are pluggable through :data:`FORECASTERS`; anything with the
:class:`DemandForecaster` shape (``observe`` / ``forecast`` /
``forecasts``) drops in. Everything here is pure arithmetic on the fed
observations — no clocks, no I/O — which is what makes the controller's
deterministic mode possible: identical observation streams produce
byte-identical forecasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True)
class Forecast:
    """One key's demand outlook, in the units it was observed in
    (typically requests per control interval)."""

    key: str
    level: float  # smoothed current demand
    trend: float  # smoothed per-interval change
    predicted: float  # level + horizon * trend, floored at zero
    observations: int

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "level": self.level,
            "trend": self.trend,
            "predicted": self.predicted,
            "observations": self.observations,
        }


class DemandForecaster(Protocol):
    """The pluggable forecaster contract."""

    def observe(self, key: str, value: float) -> Forecast: ...

    def forecast(self, key: str) -> Forecast: ...

    def forecasts(self) -> dict[str, Forecast]: ...


class _HoltSeries:
    __slots__ = ("level", "trend", "observations")

    def __init__(self) -> None:
        self.level = 0.0
        self.trend = 0.0
        self.observations = 0


class EwmaTrendForecaster:
    """The EWMA + linear-trend baseline (Holt's method), one series per
    key.

    The first observation initialises the level directly (an EWMA
    seeded from zero would need ``1/alpha`` intervals to catch up to a
    step — too slow for a flash crowd); the trend starts at zero and
    earns its value from subsequent deltas.
    """

    def __init__(
        self, alpha: float = 0.4, beta: float = 0.3, horizon: float = 2.0
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if horizon < 0.0:
            raise ValueError(f"horizon must be >= 0 intervals, got {horizon}")
        self.alpha = alpha
        self.beta = beta
        self.horizon = horizon
        self._series: dict[str, _HoltSeries] = {}

    def observe(self, key: str, value: float) -> Forecast:
        """Feed one interval's observed demand for ``key``; returns the
        updated forecast."""
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HoltSeries()
        if series.observations == 0:
            series.level = float(value)
        else:
            previous = series.level
            series.level = self.alpha * float(value) + (1.0 - self.alpha) * (
                series.level + series.trend
            )
            series.trend = (
                self.beta * (series.level - previous)
                + (1.0 - self.beta) * series.trend
            )
        series.observations += 1
        return self.forecast(key)

    def forecast(self, key: str) -> Forecast:
        series = self._series.get(key)
        if series is None:
            return Forecast(key=key, level=0.0, trend=0.0, predicted=0.0, observations=0)
        return Forecast(
            key=key,
            level=series.level,
            trend=series.trend,
            predicted=max(0.0, series.level + self.horizon * series.trend),
            observations=series.observations,
        )

    def forecasts(self) -> dict[str, Forecast]:
        """Every tracked key's current forecast, key-sorted so iteration
        order never depends on observation order."""
        return {key: self.forecast(key) for key in sorted(self._series)}


#: Pluggable forecaster registry: config names map to constructors
#: taking ``(alpha, beta, horizon)``.
FORECASTERS = {
    "ewma": EwmaTrendForecaster,
}


def make_forecaster(
    kind: str, alpha: float, beta: float, horizon: float
) -> DemandForecaster:
    try:
        cls = FORECASTERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown forecaster {kind!r}; available: {sorted(FORECASTERS)}"
        ) from None
    return cls(alpha=alpha, beta=beta, horizon=horizon)
