"""Cluster configuration: one object for the whole serving tier.

Before this module, standing up a cluster meant threading loose kwargs
through three layers — ``ServerConfig`` fields, ``bench-serve`` flags,
and ``VisualCloud.serve(transport=..., base_url=...)`` — each invented
independently. :class:`ClusterConfig` is the composition root: the
server tunables (which already carry pin budget, shard map, process
count), the control-plane knobs, and the delivery transport, in one
validated dataclass that every entry point (``VisualCloud.serve``, the
``serve``/``bench-serve`` CLI, the bench driver) accepts directly.

The old kwargs keep working for one release: ``VisualCloud.serve``
maps ``transport=``/``base_url=`` onto a ClusterConfig through
:func:`cluster_from_legacy_kwargs` with a ``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.control.forecast import DemandForecaster, make_forecaster
from repro.control.planner import Planner
from repro.serve.server import ServerConfig


@dataclass(frozen=True)
class ControlConfig:
    """The control loop's knobs: cadence, forecaster, SLO, and the
    planner parameters derived from them."""

    enabled: bool = False
    interval: float = 0.5  # seconds between controller steps
    forecaster: str = "ewma"  # key into repro.control.forecast.FORECASTERS
    alpha: float = 0.4  # demand-level smoothing
    beta: float = 0.3  # trend smoothing
    horizon: float = 2.0  # prediction lookahead, in intervals
    slo_p99: float = 0.25  # seconds; admission loop setpoint
    prewarm_threshold: float = 1.0  # predicted requests/interval to warm a video
    min_inflight: int = 4
    inflight_ceiling: int | None = None
    increase_step: int = 4
    decrease_factor: float = 0.5
    fallback_inflight: int = 64
    requests_per_process: float = 500.0
    max_processes: int = 8
    deterministic: bool = False  # injected clock/metrics; no wall-time reads

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"control interval must be positive, got {self.interval}")
        # Forecaster/planner parameter validation happens in their
        # constructors; build them eagerly so a bad config fails at
        # construction, not at the first controller step.
        self.build_forecaster()
        self.planner()

    def build_forecaster(self) -> DemandForecaster:
        return make_forecaster(self.forecaster, self.alpha, self.beta, self.horizon)

    def planner(self) -> Planner:
        return Planner(
            slo_p99=self.slo_p99,
            prewarm_threshold=self.prewarm_threshold,
            min_inflight=self.min_inflight,
            inflight_ceiling=self.inflight_ceiling,
            increase_step=self.increase_step,
            decrease_factor=self.decrease_factor,
            fallback_inflight=self.fallback_inflight,
            requests_per_process=self.requests_per_process,
            max_processes=self.max_processes,
        )


@dataclass(frozen=True)
class ClusterConfig:
    """Everything one serving cluster needs, composed.

    * ``server`` — the per-node tunables (:class:`ServerConfig` already
      carries pin budget, shard map/peers, and worker process count);
    * ``control`` — the predictive control plane (off by default);
    * ``transport``/``base_url`` — how ``VisualCloud.serve`` reaches the
      tier: ``"sim"`` runs in-process simulation, ``"http"`` streams
      real bytes from ``base_url``.
    """

    server: ServerConfig = field(default_factory=ServerConfig)
    control: ControlConfig = field(default_factory=ControlConfig)
    transport: str = "sim"
    base_url: str | None = None

    def __post_init__(self) -> None:
        if self.transport not in ("sim", "http"):
            raise ValueError(
                f"unknown transport {self.transport!r}; use 'sim' or 'http'"
            )
        if self.transport == "http" and self.base_url is None:
            raise ValueError("transport='http' requires base_url")
        if self.base_url is not None and self.transport != "http":
            raise ValueError("base_url only applies to transport='http'")

    def with_base_url(self, base_url: str) -> "ClusterConfig":
        """This config pointed at a live server — the bench driver binds
        an ephemeral port first, then derives the session-facing config."""
        return replace(self, transport="http", base_url=base_url)


def cluster_from_legacy_kwargs(
    transport: str = "sim",
    base_url: str | None = None,
    *,
    stacklevel: int = 3,
) -> ClusterConfig:
    """The one-release mapping shim: old ``VisualCloud.serve`` kwargs
    folded into a :class:`ClusterConfig`, with a deprecation warning
    naming the replacement."""
    warnings.warn(
        "serve(..., transport=, base_url=) is deprecated; pass "
        "cluster=ClusterConfig(transport=..., base_url=...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return ClusterConfig(transport=transport, base_url=base_url)


__all__ = ["ClusterConfig", "ControlConfig", "cluster_from_legacy_kwargs"]
