"""Spherical geometry substrate for 360-degree video.

This package provides the angular arithmetic that makes spherical video
different from flat video: a periodic azimuth dimension, a bounded polar
dimension, projections between the sphere and flat pixel rasters, and
viewport (field-of-view) geometry.

Conventions used throughout the repository:

* ``theta`` is the azimuth (yaw) in radians, periodic over ``[0, 2*pi)``.
* ``phi`` is the polar angle (inclination) in radians over ``[0, pi]``,
  measured from the north pole (``phi = 0``) to the south pole
  (``phi = pi``); the equator is at ``phi = pi / 2``.
* An equirectangular raster of width ``W`` and height ``H`` maps column
  ``x`` to ``theta = 2*pi*x / W`` and row ``y`` to ``phi = pi*y / H``.
"""

from repro.geometry.angles import (
    AngularRect,
    angular_difference,
    clamp_phi,
    theta_interval_contains,
    theta_interval_intersects,
    unwrap_theta,
    wrap_theta,
)
from repro.geometry.grid import TileGrid
from repro.geometry.projection import CubemapProjection, EquirectangularProjection
from repro.geometry.sphere import (
    from_unit_vector,
    great_circle_distance,
    solid_angle,
    to_unit_vector,
)
from repro.geometry.viewport import Orientation, Viewport

__all__ = [
    "AngularRect",
    "CubemapProjection",
    "EquirectangularProjection",
    "Orientation",
    "TileGrid",
    "Viewport",
    "angular_difference",
    "clamp_phi",
    "from_unit_vector",
    "great_circle_distance",
    "solid_angle",
    "theta_interval_contains",
    "theta_interval_intersects",
    "to_unit_vector",
    "unwrap_theta",
    "wrap_theta",
]
