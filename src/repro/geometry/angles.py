"""Periodic angular arithmetic.

The azimuth dimension of spherical video is periodic: ``theta = 0`` and
``theta = 2*pi`` are the same direction, and an angular interval such as
``[3*pi/2, pi/2)`` (wrapping through zero) is perfectly well formed. Flat
video systems get this wrong by treating the projected raster as ordinary
pixels; this module centralises the wrap-aware arithmetic so the rest of
the system never has to special-case the seam.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

TWO_PI = 2.0 * math.pi


def wrap_theta(theta):
    """Wrap an azimuth (scalar or array) into ``[0, 2*pi)``.

    Float modulo can round a tiny negative input up to exactly ``2*pi``;
    that edge is folded back to ``0`` so the result is always in range.

    >>> round(wrap_theta(-math.pi / 2), 6) == round(3 * math.pi / 2, 6)
    True
    """
    if isinstance(theta, np.ndarray):
        wrapped = theta % TWO_PI
        return np.where(wrapped >= TWO_PI, 0.0, wrapped)
    wrapped = theta % TWO_PI
    return 0.0 if wrapped >= TWO_PI else wrapped


def clamp_phi(phi):
    """Clamp a polar angle (scalar or array) into ``[0, pi]``.

    Unlike azimuth, the polar dimension does not wrap: looking "past" a pole
    flips the azimuth instead. Callers that model pole crossings should do
    so explicitly (see :mod:`repro.predict.traces`); this helper merely
    keeps numerical noise inside the valid domain.
    """
    if isinstance(phi, np.ndarray):
        return np.clip(phi, 0.0, math.pi)
    return min(max(phi, 0.0), math.pi)


def angular_difference(a, b):
    """Signed shortest rotation from azimuth ``b`` to azimuth ``a``.

    The result lies in ``(-pi, pi]``. Works on scalars and arrays.
    """
    diff = (np.asarray(a) - np.asarray(b) + math.pi) % TWO_PI - math.pi
    # Map the open edge -pi to +pi so the result is unique.
    diff = np.where(diff == -math.pi, math.pi, diff)
    if diff.ndim == 0:
        return float(diff)
    return diff


def unwrap_theta(thetas: np.ndarray) -> np.ndarray:
    """Unwrap a sequence of azimuth samples into a continuous real line.

    Successive samples are assumed to differ by less than ``pi``; the
    result is suitable for fitting regression models that cannot reason
    about periodicity (see
    :class:`repro.predict.predictors.LinearRegressionPredictor`).
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    if thetas.size == 0:
        return thetas.copy()
    deltas = angular_difference(thetas[1:], thetas[:-1])
    out = np.empty_like(thetas)
    out[0] = thetas[0]
    if thetas.size > 1:
        out[1:] = thetas[0] + np.cumsum(deltas)
    return out


def theta_interval_contains(start: float, end: float, theta: float) -> bool:
    """Whether azimuth ``theta`` lies in the interval ``[start, end)``.

    The interval is traversed from ``start`` counter-clockwise to ``end``
    and may wrap through zero. A zero-length interval is empty; a full
    revolution (``end - start >= 2*pi`` before wrapping) should be passed
    as ``(0, 2*pi)`` which contains everything.
    """
    if end == start:
        return False  # zero-length interval is empty
    start = wrap_theta(start)
    theta = wrap_theta(theta)
    span = end - start if end > start else end - start + TWO_PI
    if span >= TWO_PI:
        return True
    offset = (theta - start) % TWO_PI
    return offset < span


def theta_interval_intersects(a0: float, a1: float, b0: float, b1: float) -> bool:
    """Whether azimuth intervals ``[a0, a1)`` and ``[b0, b1)`` overlap."""
    span_a = (a1 - a0) % TWO_PI or (TWO_PI if a1 != a0 else 0.0)
    span_b = (b1 - b0) % TWO_PI or (TWO_PI if b1 != b0 else 0.0)
    if span_a == 0.0 or span_b == 0.0:
        return False
    if span_a >= TWO_PI or span_b >= TWO_PI:
        return True
    start_b_rel = (b0 - a0) % TWO_PI
    # b starts inside a, or a starts inside b.
    return start_b_rel < span_a or (TWO_PI - start_b_rel) % TWO_PI < span_b


@dataclass(frozen=True)
class AngularRect:
    """An axis-aligned rectangle in (theta, phi) angular space.

    ``theta`` spans ``[theta0, theta1)`` counter-clockwise and may wrap
    through zero; ``phi`` spans ``[phi0, phi1)`` and never wraps. Angular
    rectangles are the footprint of spatiotemporal segments (tiles) in the
    VisualCloud storage manager.
    """

    theta0: float
    theta1: float
    phi0: float
    phi1: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.phi0 <= self.phi1 <= math.pi + 1e-9:
            raise ValueError(
                f"phi range [{self.phi0}, {self.phi1}] must be ordered within [0, pi]"
            )

    @property
    def theta_span(self) -> float:
        """Counter-clockwise azimuth extent in radians, in ``(0, 2*pi]``."""
        span = (self.theta1 - self.theta0) % TWO_PI
        if span == 0.0 and self.theta1 != self.theta0:
            return TWO_PI
        return span

    @property
    def phi_span(self) -> float:
        return self.phi1 - self.phi0

    def contains(self, theta: float, phi: float) -> bool:
        """Whether the direction ``(theta, phi)`` falls inside the rect."""
        if not self.phi0 <= phi < self.phi1:
            # The south pole itself belongs to the bottom-most rectangle.
            if not (phi == self.phi1 == math.pi):
                return False
        if self.theta_span >= TWO_PI:
            return True
        return theta_interval_contains(self.theta0, self.theta0 + self.theta_span, theta)

    def intersects(self, other: "AngularRect") -> bool:
        """Whether two angular rectangles overlap (wrap-aware in theta)."""
        if self.phi1 <= other.phi0 or other.phi1 <= self.phi0:
            return False
        return theta_interval_intersects(
            self.theta0, self.theta0 + self.theta_span, other.theta0, other.theta0 + other.theta_span
        )

    def center(self) -> tuple[float, float]:
        """The angular midpoint ``(theta, phi)`` of the rectangle."""
        return (
            wrap_theta(self.theta0 + self.theta_span / 2.0),
            (self.phi0 + self.phi1) / 2.0,
        )
