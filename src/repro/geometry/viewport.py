"""Viewport (field-of-view) geometry.

A VR headset displays a narrow window onto the sphere — typically around
90-110 degrees of the 360 available. Everything VisualCloud saves comes
from this asymmetry: only the tiles intersecting the viewport need high
quality. This module computes, for a head orientation, which directions a
viewer sees, which tiles those directions touch, and the rendered viewport
image itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.angles import clamp_phi, wrap_theta
from repro.geometry.grid import TileGrid
from repro.geometry.projection import EquirectangularProjection
from repro.geometry.sphere import from_unit_vector, to_unit_vector


@dataclass(frozen=True)
class Orientation:
    """A head pose: the direction of gaze as ``(theta, phi)``.

    Roll is ignored throughout the system — it changes which pixels are
    visible only at the viewport corners and has no effect on tile-level
    decisions.
    """

    theta: float
    phi: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "theta", float(wrap_theta(self.theta)))
        object.__setattr__(self, "phi", float(clamp_phi(self.phi)))

    def as_tuple(self) -> tuple[float, float]:
        return (self.theta, self.phi)


@dataclass(frozen=True)
class Viewport:
    """A symmetric perspective frustum with the given field of view.

    ``fov_theta`` and ``fov_phi`` are the horizontal and vertical fields of
    view in radians. The default (100 x 100 degrees) approximates consumer
    headsets of the paper's era.
    """

    fov_theta: float = math.radians(100.0)
    fov_phi: float = math.radians(100.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.fov_theta < math.pi:
            raise ValueError(f"horizontal FOV {self.fov_theta} outside (0, pi)")
        if not 0.0 < self.fov_phi < math.pi:
            raise ValueError(f"vertical FOV {self.fov_phi} outside (0, pi)")

    def _camera_basis(self, orientation: Orientation) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forward/right/up unit vectors for a given gaze direction."""
        forward = to_unit_vector(orientation.theta, orientation.phi)
        world_up = np.array([0.0, 0.0, 1.0])
        right = np.cross(forward, world_up)
        norm = np.linalg.norm(right)
        if norm < 1e-9:
            # Looking straight at a pole: derive "right" from the azimuth so
            # the viewport orientation stays continuous as phi crosses 0/pi.
            right = np.array(
                [-math.sin(orientation.theta), math.cos(orientation.theta), 0.0]
            )
        else:
            right = right / norm
        up = np.cross(right, forward)
        return forward, right, up

    def ray_directions(self, orientation: Orientation, width: int, height: int) -> np.ndarray:
        """Unit view rays for a ``height x width`` viewport raster, ``(h, w, 3)``."""
        if width < 1 or height < 1:
            raise ValueError(f"viewport raster must be positive, got {width}x{height}")
        forward, right, up = self._camera_basis(orientation)
        tan_h = math.tan(self.fov_theta / 2.0)
        tan_v = math.tan(self.fov_phi / 2.0)
        u = (np.arange(width) + 0.5) / width * 2.0 - 1.0
        v = (np.arange(height) + 0.5) / height * 2.0 - 1.0
        u_grid, v_grid = np.meshgrid(u * tan_h, v * tan_v)
        rays = (
            forward[None, None, :]
            + u_grid[..., None] * right[None, None, :]
            - v_grid[..., None] * up[None, None, :]
        )
        return rays / np.linalg.norm(rays, axis=-1, keepdims=True)

    def visible_tiles(
        self, orientation: Orientation, grid: TileGrid, samples: int = 15
    ) -> set[tuple[int, int]]:
        """Tiles intersected by the viewport at the given orientation.

        Conservatively determined by casting a ``samples x samples`` grid of
        rays through the frustum and collecting the tile under each ray.
        Ray sampling is robust where analytic rectangle intersection is
        not — near the poles a frustum's equirectangular footprint is not a
        rectangle at all.
        """
        rays = self.ray_directions(orientation, samples, samples)
        theta, phi = from_unit_vector(rays.reshape(-1, 3))
        indices = np.unique(grid.tiles_of(theta, phi))
        return {grid.tile_at(int(index)) for index in indices}

    def render(
        self,
        plane: np.ndarray,
        orientation: Orientation,
        width: int,
        height: int,
    ) -> np.ndarray:
        """Render the viewport seen at ``orientation`` from an equirect plane.

        Returns a ``height x width`` float array sampled with bilinear
        interpolation. This is the image whose fidelity QoE metrics score:
        degradation outside the viewport is invisible by construction.
        """
        projection = EquirectangularProjection(plane.shape[1], plane.shape[0])
        rays = self.ray_directions(orientation, width, height)
        theta, phi = from_unit_vector(rays)
        return projection.sample(plane, theta, phi)

    def coverage_fraction(self, orientation: Orientation, grid: TileGrid) -> float:
        """Fraction of the grid's tiles visible at the given orientation."""
        return len(self.visible_tiles(orientation, grid)) / grid.tile_count
