"""Unit-sphere math: direction vectors, distances, solid angles.

These are the primitives used to compare a viewer's true orientation with a
predicted one (great-circle error) and to weight tiles by how much of the
sphere they cover (solid angle) when budgeting delivery bandwidth.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.angles import AngularRect


def to_unit_vector(theta, phi) -> np.ndarray:
    """Convert spherical direction(s) to Cartesian unit vector(s).

    Accepts scalars or equally-shaped arrays; returns an array whose final
    axis holds ``(x, y, z)``. The north pole (``phi = 0``) maps to
    ``(0, 0, 1)`` and ``theta = 0`` on the equator maps to ``(1, 0, 0)``.
    """
    theta, phi = np.broadcast_arrays(
        np.asarray(theta, dtype=np.float64), np.asarray(phi, dtype=np.float64)
    )
    sin_phi = np.sin(phi)
    return np.stack(
        [sin_phi * np.cos(theta), sin_phi * np.sin(theta), np.cos(phi)], axis=-1
    )


def from_unit_vector(vec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convert Cartesian unit vector(s) back to ``(theta, phi)``.

    ``theta`` is returned in ``[0, 2*pi)`` and ``phi`` in ``[0, pi]``.
    The input does not need to be exactly normalised.
    """
    vec = np.asarray(vec, dtype=np.float64)
    norm = np.linalg.norm(vec, axis=-1)
    z = np.clip(vec[..., 2] / np.where(norm == 0.0, 1.0, norm), -1.0, 1.0)
    phi = np.arccos(z)
    theta = np.arctan2(vec[..., 1], vec[..., 0]) % (2.0 * math.pi)
    return theta, phi


def great_circle_distance(theta_a, phi_a, theta_b, phi_b):
    """Angular distance in radians between two directions on the sphere.

    Uses the dot-product formulation, which is numerically adequate at the
    precision required for viewport prediction error (fractions of a
    degree do not matter when tiles span tens of degrees).
    """
    a = to_unit_vector(theta_a, phi_a)
    b = to_unit_vector(theta_b, phi_b)
    dot = np.clip(np.sum(a * b, axis=-1), -1.0, 1.0)
    result = np.arccos(dot)
    if result.ndim == 0:
        return float(result)
    return result


def solid_angle(rect: AngularRect) -> float:
    """Solid angle (steradians) subtended by an angular rectangle.

    For a rectangle spanning ``[theta0, theta1) x [phi0, phi1)`` the solid
    angle is ``theta_span * (cos(phi0) - cos(phi1))``: tiles near the poles
    cover far less of the sphere than equatorial tiles of the same angular
    size, which is why uniform equirectangular tilings oversample the poles.
    """
    return rect.theta_span * (math.cos(rect.phi0) - math.cos(rect.phi1))
