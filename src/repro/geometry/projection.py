"""Sphere-to-raster projections.

A 360-degree camera produces a sphere of directions; codecs consume flat
rasters. The *projection* is the lossy bridge between the two, and it is
one of the format incompatibilities the VisualCloud data model hides from
applications. This module implements the equirectangular projection (the
storage format) and a cubemap projection (used by the projection ablation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.angles import TWO_PI, AngularRect


def _bilinear_sample(plane: np.ndarray, x: np.ndarray, y: np.ndarray, wrap_x: bool) -> np.ndarray:
    """Bilinearly sample ``plane[y, x]`` at fractional coordinates.

    ``x`` wraps modulo the width when ``wrap_x`` (the azimuth seam of an
    equirectangular raster is continuous); ``y`` is clamped (the poles are
    edges, not seams).
    """
    height, width = plane.shape[:2]
    x0 = np.floor(x).astype(np.int64)
    y0 = np.floor(y).astype(np.int64)
    fx = x - x0
    fy = y - y0
    if wrap_x:
        x0 %= width
        x1 = (x0 + 1) % width
    else:
        x0 = np.clip(x0, 0, width - 1)
        x1 = np.clip(x0 + 1, 0, width - 1)
    y0 = np.clip(y0, 0, height - 1)
    y1 = np.clip(y0 + 1, 0, height - 1)
    top = plane[y0, x0] * (1.0 - fx) + plane[y0, x1] * fx
    bottom = plane[y1, x0] * (1.0 - fx) + plane[y1, x1] * fx
    return top * (1.0 - fy) + bottom * fy


@dataclass(frozen=True)
class EquirectangularProjection:
    """The equirectangular (lat-long) projection onto a ``width x height`` raster.

    Columns map linearly to azimuth and rows to polar angle, so the raster
    oversamples the poles: the top and bottom rows each represent a single
    direction stretched across the full width.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(f"raster must be at least 2x2, got {self.width}x{self.height}")

    def pixel_to_angle(self, x, y):
        """Direction at the *center* of pixel ``(x, y)``; accepts arrays."""
        theta = (np.asarray(x, dtype=np.float64) + 0.5) * (TWO_PI / self.width)
        phi = (np.asarray(y, dtype=np.float64) + 0.5) * (math.pi / self.height)
        return theta % TWO_PI, np.clip(phi, 0.0, math.pi)

    def angle_to_pixel(self, theta, phi):
        """Fractional pixel coordinates for direction(s) ``(theta, phi)``.

        Inverse of :meth:`pixel_to_angle`: integer results land on pixel
        centers. The returned x may be used with wrap-aware sampling.
        """
        theta = np.asarray(theta, dtype=np.float64) % TWO_PI
        phi = np.clip(np.asarray(phi, dtype=np.float64), 0.0, math.pi)
        x = theta * (self.width / TWO_PI) - 0.5
        y = phi * (self.height / math.pi) - 0.5
        return x, y

    def sample(self, plane: np.ndarray, theta, phi) -> np.ndarray:
        """Bilinearly sample an equirectangular plane at direction(s)."""
        if plane.shape[:2] != (self.height, self.width):
            raise ValueError(
                f"plane shape {plane.shape[:2]} does not match projection "
                f"{self.height}x{self.width}"
            )
        x, y = self.angle_to_pixel(theta, phi)
        return _bilinear_sample(plane.astype(np.float64), x, y, wrap_x=True)

    def pixel_rect(self, rect: AngularRect) -> tuple[int, int, int, int]:
        """Pixel bounds ``(x0, y0, x1, y1)`` of an angular rectangle.

        The rectangle must not wrap through the azimuth seam (storage tiles
        never do: tile 0 starts at ``theta = 0``). Bounds are half-open and
        rounded to the nearest pixel edge.
        """
        if rect.theta0 + rect.theta_span > TWO_PI + 1e-9:
            raise ValueError("pixel_rect requires a non-wrapping angular rectangle")
        x0 = int(round(rect.theta0 * self.width / TWO_PI))
        x1 = int(round((rect.theta0 + rect.theta_span) * self.width / TWO_PI))
        y0 = int(round(rect.phi0 * self.height / math.pi))
        y1 = int(round(rect.phi1 * self.height / math.pi))
        return (x0, y0, x1, y1)

    def sampling_density(self) -> np.ndarray:
        """Relative sample density per row (equator = 1).

        Row ``y`` spans a circle of circumference proportional to
        ``sin(phi)``; equirectangular rasters allocate the same number of
        pixels to every row, so density is ``1 / sin(phi)`` (clipped at the
        poles). Used by the nonuniform-sampling analysis example.
        """
        _, phi = self.pixel_to_angle(np.zeros(self.height), np.arange(self.height))
        return 1.0 / np.maximum(np.sin(phi), 1e-6)


# Cube face order and orientation. Each face is described by the direction
# of its outward normal and the world-space axes that map to the face's
# +u (rightward) and +v (downward) texture directions.
_CUBE_FACES = (
    ("+x", np.array([1.0, 0.0, 0.0]), np.array([0.0, 1.0, 0.0]), np.array([0.0, 0.0, -1.0])),
    ("-x", np.array([-1.0, 0.0, 0.0]), np.array([0.0, -1.0, 0.0]), np.array([0.0, 0.0, -1.0])),
    ("+y", np.array([0.0, 1.0, 0.0]), np.array([-1.0, 0.0, 0.0]), np.array([0.0, 0.0, -1.0])),
    ("-y", np.array([0.0, -1.0, 0.0]), np.array([1.0, 0.0, 0.0]), np.array([0.0, 0.0, -1.0])),
    ("+z", np.array([0.0, 0.0, 1.0]), np.array([0.0, 1.0, 0.0]), np.array([1.0, 0.0, 0.0])),
    ("-z", np.array([0.0, 0.0, -1.0]), np.array([0.0, 1.0, 0.0]), np.array([-1.0, 0.0, 0.0])),
)


@dataclass(frozen=True)
class CubemapProjection:
    """A six-face cubemap projection with square faces of ``face_size`` pixels.

    Cubemaps sample the sphere far more uniformly than equirectangular
    rasters (worst-case density ratio ~1.7 vs. unbounded at the poles) at
    the cost of face seams. VisualCloud stores equirectangular; the
    projection ablation uses this class to quantify the trade-off.
    """

    face_size: int

    def __post_init__(self) -> None:
        if self.face_size < 2:
            raise ValueError(f"face_size must be >= 2, got {self.face_size}")

    @property
    def face_names(self) -> tuple[str, ...]:
        return tuple(name for name, *_ in _CUBE_FACES)

    def face_directions(self, face_index: int) -> np.ndarray:
        """Unit direction for every texel of one face, shape ``(n, n, 3)``."""
        if not 0 <= face_index < 6:
            raise IndexError(f"face index {face_index} outside [0, 6)")
        _, normal, u_axis, v_axis = _CUBE_FACES[face_index]
        n = self.face_size
        coords = (np.arange(n) + 0.5) / n * 2.0 - 1.0
        v_grid, u_grid = np.meshgrid(coords, coords, indexing="ij")
        directions = (
            normal[None, None, :]
            + u_grid[..., None] * u_axis[None, None, :]
            + v_grid[..., None] * v_axis[None, None, :]
        )
        return directions / np.linalg.norm(directions, axis=-1, keepdims=True)

    def from_equirectangular(self, plane: np.ndarray) -> np.ndarray:
        """Resample an equirectangular plane into six faces ``(6, n, n)``."""
        from repro.geometry.sphere import from_unit_vector

        height, width = plane.shape[:2]
        equirect = EquirectangularProjection(width, height)
        faces = np.empty((6, self.face_size, self.face_size), dtype=np.float64)
        for index in range(6):
            theta, phi = from_unit_vector(self.face_directions(index))
            faces[index] = equirect.sample(plane, theta, phi)
        return faces

    def sample(self, faces: np.ndarray, theta, phi) -> np.ndarray:
        """Sample a ``(6, n, n)`` cubemap at direction(s) ``(theta, phi)``."""
        from repro.geometry.sphere import to_unit_vector

        direction = to_unit_vector(theta, phi)
        abs_dir = np.abs(direction)
        axis = np.argmax(abs_dir, axis=-1)
        sign = np.sign(np.take_along_axis(direction, axis[..., None], axis=-1))[..., 0]
        # Face index layout matches _CUBE_FACES: (+x,-x,+y,-y,+z,-z).
        face = axis * 2 + (sign < 0)
        result = np.empty(np.shape(face), dtype=np.float64)
        flat_face = np.ravel(face)
        flat_dir = direction.reshape(-1, 3)
        flat_out = np.ravel(result)
        n = self.face_size
        for index in range(6):
            mask = flat_face == index
            if not np.any(mask):
                continue
            _, normal, u_axis, v_axis = _CUBE_FACES[index]
            d = flat_dir[mask]
            scale = 1.0 / np.abs(d @ normal)
            u = (d @ u_axis) * scale
            v = (d @ v_axis) * scale
            x = (u + 1.0) / 2.0 * n - 0.5
            y = (v + 1.0) / 2.0 * n - 0.5
            flat_out[mask] = _bilinear_sample(faces[index].astype(np.float64), x, y, wrap_x=False)
        return result.reshape(np.shape(face)) if np.ndim(face) else float(flat_out[0])
