"""Angular tile grids.

VisualCloud segments the viewing sphere into a regular grid of tiles over
the equirectangular projection: ``cols`` equal azimuth slices by ``rows``
equal polar slices. Every tile is encoded independently at every quality
level, which is what lets the streamer substitute qualities per tile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.geometry.angles import TWO_PI, AngularRect, wrap_theta


@dataclass(frozen=True)
class TileGrid:
    """A ``rows x cols`` angular tiling of the full sphere.

    ``rows`` divides the polar range ``[0, pi]``; ``cols`` divides the
    azimuth range ``[0, 2*pi)``. Tiles are addressed ``(row, col)`` with
    row 0 at the north pole and col 0 starting at ``theta = 0``.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")

    @property
    def tile_count(self) -> int:
        return self.rows * self.cols

    @property
    def theta_step(self) -> float:
        return TWO_PI / self.cols

    @property
    def phi_step(self) -> float:
        return math.pi / self.rows

    def tiles(self) -> Iterator[tuple[int, int]]:
        """Iterate over all tile coordinates in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield (row, col)

    def index_of(self, row: int, col: int) -> int:
        """Row-major linear index of a tile, validating bounds."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"tile ({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def tile_at(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < self.tile_count:
            raise IndexError(f"tile index {index} outside grid of {self.tile_count}")
        return divmod(index, self.cols)

    def rect(self, row: int, col: int) -> AngularRect:
        """The angular rectangle covered by tile ``(row, col)``."""
        self.index_of(row, col)  # bounds check
        return AngularRect(
            theta0=col * self.theta_step,
            theta1=(col + 1) * self.theta_step if col + 1 < self.cols else TWO_PI,
            phi0=row * self.phi_step,
            phi1=(row + 1) * self.phi_step if row + 1 < self.rows else math.pi,
        )

    def tile_of(self, theta: float, phi: float) -> tuple[int, int]:
        """The tile containing direction ``(theta, phi)``."""
        theta = wrap_theta(theta)
        col = min(int(theta / self.theta_step), self.cols - 1)
        row = min(int(phi / self.phi_step), self.rows - 1)
        return (row, col)

    def tiles_of(self, thetas: np.ndarray, phis: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`tile_of`: returns linear indices for arrays."""
        thetas = np.asarray(thetas) % TWO_PI
        phis = np.clip(np.asarray(phis), 0.0, math.pi)
        cols = np.minimum((thetas / self.theta_step).astype(np.int64), self.cols - 1)
        rows = np.minimum((phis / self.phi_step).astype(np.int64), self.rows - 1)
        return rows * self.cols + cols

    def neighbors(self, row: int, col: int) -> list[tuple[int, int]]:
        """The 8-neighbourhood of a tile, wrap-aware in the column axis.

        Used to expand a predicted-visible tile set by a safety margin:
        column neighbours wrap through the azimuth seam, while row
        neighbours stop at the poles (there is no tile "above" the top
        row — pole adjacency across the cap is approximated by the same
        row's wrapped columns already covering all azimuths).
        """
        self.index_of(row, col)  # bounds check
        result = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                r = row + dr
                if not 0 <= r < self.rows:
                    continue
                candidate = (r, (col + dc) % self.cols)
                if candidate != (row, col):
                    result.append(candidate)
        # Deduplicate: on a 1- or 2-column grid, wrapped offsets collide.
        return sorted(set(result))

    def expand(self, tiles: set[tuple[int, int]], margin: int = 1) -> set[tuple[int, int]]:
        """Grow a tile set by ``margin`` rings of neighbours."""
        current = set(tiles)
        for _ in range(margin):
            grown = set(current)
            for row, col in current:
                grown.update(self.neighbors(row, col))
            current = grown
        return current
