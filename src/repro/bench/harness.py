"""Formatting helpers for benchmark output.

Every benchmark prints the table or series the corresponding paper
figure/table reports; these helpers keep that output uniform and easy to
paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def format_bytes(size: float) -> str:
    """Human-readable byte counts (binary prefixes)."""
    if size < 0:
        raise ValueError(f"negative size {size}")
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024.0 or unit == "TiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0


def ratio(numerator: float, denominator: float) -> str:
    """A 'x-factor' string, tolerant of zero denominators."""
    if denominator == 0:
        return "inf x"
    value = numerator / denominator
    if value >= 100:
        return f"{value:.0f}x"
    return f"{value:.2f}x"


def format_row(row: Mapping[str, object], widths: Mapping[str, int]) -> str:
    return " | ".join(str(row.get(key, "")).rjust(width) for key, width in widths.items())


def format_table(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows of dicts as an aligned text table with a title rule."""
    if not rows:
        return f"== {title} ==\n(no rows)"
    keys: list[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    widths = {
        key: max(len(key), *(len(str(row.get(key, ""))) for row in rows)) for key in keys
    }
    header = " | ".join(key.rjust(widths[key]) for key in keys)
    rule = "-+-".join("-" * widths[key] for key in keys)
    body = "\n".join(format_row(row, widths) for row in rows)
    return f"== {title} ==\n{header}\n{rule}\n{body}"


def emit_table(title: str, rows: Sequence[Mapping[str, object]], path=None) -> str:
    """Print an experiment table and optionally persist it to ``path``.

    Benchmarks use this so the series each paper figure reports exists
    both in the pytest output and as a file EXPERIMENTS.md can cite.
    """
    rendered = format_table(title, rows)
    print("\n" + rendered)
    if path is not None:
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(rendered + "\n")
    return rendered


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right aggregate for speedup factors."""
    if not values:
        raise ValueError("geometric mean of no values")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))
