"""Shared experiment-harness utilities for the benchmark suite."""

from repro.bench.harness import (
    format_bytes,
    format_row,
    format_table,
    geometric_mean,
    ratio,
)

__all__ = ["format_bytes", "format_row", "format_table", "geometric_mean", "ratio"]
