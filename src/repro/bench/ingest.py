"""Ingest throughput harness: ``python -m repro.bench.ingest``.

Measures the two axes the parallel-ingest work optimises and writes the
numbers to ``BENCH_ingest.json`` so later PRs have a perf trajectory to
beat:

1. **Entropy codec hot path** — the vectorized exp-Golomb coder
   (:func:`repro.video.codec._write_rows` / ``_read_rows``) against the
   scalar reference implementation, on quantised coefficient rows taken
   from real frames. Byte identity is asserted, not assumed.
2. **End-to-end ingest** — frames/sec and encoded MB/s through
   ``StorageManager.ingest`` at ``workers=1`` versus ``workers=N``
   (serial-vs-parallel speedup), plus the encode/decode split of the GOP
   codec.

Run with ``--smoke`` in CI for a seconds-long small-input pass.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import emit_table, format_bytes, ratio
from repro.core.storage import IngestConfig, StorageManager, segment_checksum
from repro.geometry.grid import TileGrid
from repro.video.codec import (
    FrameCodec,
    _read_rows,
    _read_rows_reference,
    _write_rows,
    _write_rows_reference,
)
from repro.video.bitstream import BitReader, BitWriter
from repro.video.gop import GopCodec
from repro.video.quality import Quality
from repro.video.shmem import shared_memory_available
from repro.video.tiles import encode_start_method
from repro.workloads.videos import synthetic_video


def _best_of(repeats: int, fn) -> float:
    """Best wall-clock seconds over ``repeats`` runs (min filters noise)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _quantised_rows(frames, quality: Quality) -> list[np.ndarray]:
    """Real coefficient rows, one stacked array per frame (intra-coded).

    Mirrors :meth:`FrameCodec.encode_frame`, which stacks all three planes
    into one entropy call per frame.
    """
    codec = FrameCodec(quality)
    rows: list[np.ndarray] = []
    for frame in frames:
        rows.append(
            np.vstack(
                [
                    plane_codec.quantise(plane, None)[0]
                    for plane_codec, plane in zip(codec._plane_codecs(), frame.planes)
                ]
            )
        )
    return rows


def bench_entropy(frames, quality: Quality, repeats: int) -> dict:
    """Vectorized vs reference exp-Golomb coder on real quantised rows."""
    all_rows = _quantised_rows(frames, quality)

    def encode(write) -> list[bytes]:
        payloads = []
        for rows in all_rows:
            writer = BitWriter()
            write(writer, rows)
            payloads.append(writer.getvalue())
        return payloads

    vec_payloads = encode(_write_rows)
    ref_payloads = encode(_write_rows_reference)
    if vec_payloads != ref_payloads:
        raise AssertionError("vectorized entropy coder is not byte-identical")

    encode_vec = _best_of(repeats, lambda: encode(_write_rows))
    encode_ref = _best_of(repeats, lambda: encode(_write_rows_reference))

    def decode(read) -> None:
        for rows, payload in zip(all_rows, vec_payloads):
            read(BitReader(payload), rows.shape[0])

    decode(_read_rows)  # correctness is covered by tests; warm the path
    decode_vec = _best_of(repeats, lambda: decode(_read_rows))
    decode_ref = _best_of(repeats, lambda: decode(_read_rows_reference))

    payload_bytes = sum(len(p) for p in vec_payloads)
    return {
        "planes": len(all_rows),
        "payload_bytes": payload_bytes,
        "encode_seconds_reference": encode_ref,
        "encode_seconds_vectorized": encode_vec,
        "encode_speedup": encode_ref / encode_vec,
        "encode_mb_per_sec_vectorized": payload_bytes / encode_vec / 1e6,
        "decode_seconds_reference": decode_ref,
        "decode_seconds_vectorized": decode_vec,
        "decode_speedup": decode_ref / decode_vec,
        "byte_identical": True,
    }


def bench_ingest(
    frames, config_args: dict, workers_list: list[int], transport: str = "auto"
) -> dict:
    """End-to-end ``StorageManager.ingest`` at each worker count.

    Before timing anything, one small untimed ingest at the highest
    worker count warms the process-pool machinery (the forkserver and
    its preloaded imports are per-process daemons, amortised across every
    later pool) so the timed runs measure steady-state ingest throughput
    rather than one-time interpreter startup.
    """
    raw_bytes = sum(plane.nbytes for frame in frames for plane in frame.planes)
    max_workers = max(workers_list)
    if max_workers > 1:
        warm_config = IngestConfig(
            workers=max_workers, transport=transport, **config_args
        )
        warm_frames = frames[: config_args.get("gop_frames", len(frames))]
        with tempfile.TemporaryDirectory(prefix="bench-ingest-warm-") as root:
            StorageManager(root).ingest("warmup", iter(warm_frames), warm_config)
    runs: dict[str, dict] = {}
    metrics_snapshot: dict = {}
    for workers in workers_list:
        config = IngestConfig(workers=workers, transport=transport, **config_args)
        with tempfile.TemporaryDirectory(prefix="bench-ingest-") as root:
            storage = StorageManager(root)
            start = time.perf_counter()
            storage.ingest("bench", iter(frames), config)
            seconds = time.perf_counter() - start
            stored = storage.total_bytes("bench")
            metrics_snapshot = storage.metrics.snapshot()
        counters = metrics_snapshot.get("counters", {})
        runs[str(workers)] = {
            "seconds": seconds,
            "frames_per_sec": len(frames) / seconds,
            "encoded_mb_per_sec": stored / seconds / 1e6,
            "raw_mb_per_sec": raw_bytes / seconds / 1e6,
            "stored_bytes": stored,
            # What actually happened, not what was asked for: GOPs that
            # went over shared memory vs pickling, and pool fallbacks.
            "shm_gops": counters.get("ingest.shm_gops", 0),
            "pickled_gops": counters.get("ingest.pickled_gops", 0),
            "pool_fallbacks": counters.get("ingest.pool_fallback", 0),
        }
    serial = runs[str(workers_list[0])]["seconds"]
    return {
        "frames": len(frames),
        "raw_bytes": raw_bytes,
        "workers": runs,
        "parallel_speedup": {
            key: serial / run["seconds"] for key, run in runs.items()
        },
        # Per-phase observability of the last (most parallel) run: span
        # histograms for encode/write/commit plus storage counters.
        "metrics": metrics_snapshot,
    }


def bench_split(frames, gop_frames: int, quality: Quality, repeats: int) -> dict:
    """Encode/decode wall-clock split of the GOP codec itself."""
    codec = GopCodec(quality)
    gops = [
        frames[start : start + gop_frames]
        for start in range(0, len(frames), gop_frames)
    ]
    payloads = [codec.encode_gop(gop) for gop in gops]
    encode_seconds = _best_of(
        repeats, lambda: [codec.encode_gop(gop) for gop in gops]
    )
    decode_seconds = _best_of(
        repeats, lambda: [codec.decode_gop(payload) for payload in payloads]
    )
    total = encode_seconds + decode_seconds
    return {
        "encode_seconds": encode_seconds,
        "decode_seconds": decode_seconds,
        "encode_fraction": encode_seconds / total,
        "encoded_bytes": sum(len(p) for p in payloads),
    }


def bench_checksum(frames, config_args: dict, repeats: int) -> dict:
    """The durability tax: per-segment content checksums at ingest time
    plus the raw verify throughput a read path pays.

    Ingest is timed with ``checksums=True`` (the default every other
    number in this report was measured under) against ``checksums=False``
    so the overhead is a measured fraction, not an asterisk.  Verify
    throughput hashes the actual stored segment payloads.
    """

    def one_ingest(checksums: bool) -> float:
        config = IngestConfig(workers=1, checksums=checksums, **config_args)
        with tempfile.TemporaryDirectory(prefix="bench-csum-") as root:
            storage = StorageManager(root)
            start = time.perf_counter()
            storage.ingest("bench", iter(frames), config)
            return time.perf_counter() - start

    with_seconds = min(one_ingest(True) for _ in range(max(1, repeats)))
    without_seconds = min(one_ingest(False) for _ in range(max(1, repeats)))

    with tempfile.TemporaryDirectory(prefix="bench-csum-") as root:
        storage = StorageManager(root)
        meta = storage.ingest(
            "bench", iter(frames), IngestConfig(workers=1, **config_args)
        )
        payloads = [
            storage.read_segment("bench", gop, tile, quality)
            for gop, tile, quality in sorted(meta.entries, key=str)
        ]
    verified_bytes = sum(len(payload) for payload in payloads)
    verify_seconds = _best_of(
        repeats, lambda: [segment_checksum(payload) for payload in payloads]
    )
    return {
        "segments": len(payloads),
        "verified_bytes": verified_bytes,
        "ingest_seconds_with_checksums": with_seconds,
        "ingest_seconds_without_checksums": without_seconds,
        "ingest_overhead_fraction": max(0.0, with_seconds / without_seconds - 1.0),
        "verify_seconds": verify_seconds,
        "verify_microseconds_per_segment": (
            1e6 * verify_seconds / len(payloads) if payloads else 0.0
        ),
        "verify_mb_per_second": (
            verified_bytes / verify_seconds / 1e6 if verify_seconds > 0 else 0.0
        ),
    }


def run(args: argparse.Namespace) -> dict:
    frames = list(
        synthetic_video(
            args.profile,
            width=args.width,
            height=args.height,
            fps=args.fps,
            duration=args.duration,
            seed=args.seed,
        )
    )
    grid = TileGrid(*(int(part) for part in args.grid.lower().split("x")))
    quality = Quality.from_label(args.quality)
    config_args = {
        "grid": grid,
        "qualities": (Quality.HIGH, Quality.LOWEST),
        "gop_frames": args.gop_frames,
        "fps": args.fps,
    }
    workers_list = sorted({1, *args.workers})
    cpu_count = os.cpu_count() or 1
    bench_warnings: list[str] = []
    if max(workers_list) > cpu_count:
        message = (
            f"workers={max(workers_list)} exceeds cpu_count={cpu_count}: extra "
            "workers time-slice one core and parallel speedup cannot exceed "
            "1.0x on this machine — the scaling numbers below are not "
            "representative of multi-core hardware"
        )
        bench_warnings.append(message)
        print(f"WARNING: {message}", file=sys.stderr)

    entropy = bench_entropy(frames, quality, args.repeats)
    split = bench_split(frames, args.gop_frames, quality, args.repeats)
    ingest = bench_ingest(frames, config_args, workers_list, transport=args.transport)
    checksum = bench_checksum(frames, config_args, args.repeats)

    report = {
        "params": {
            "profile": args.profile,
            "width": args.width,
            "height": args.height,
            "fps": args.fps,
            "duration": args.duration,
            "seed": args.seed,
            "grid": args.grid,
            "gop_frames": args.gop_frames,
            "quality": args.quality,
            "repeats": args.repeats,
            # Scaling provenance: a speedup curve is meaningless without
            # the machine and transport it was recorded on.
            "cpu_count": cpu_count,
            "start_method": encode_start_method(),
            "transport": args.transport,
            "shm_available": shared_memory_available(),
            # The timed ingest runs pay the per-segment content checksum
            # (IngestConfig default); the "checksum" section isolates it.
            "checksums": True,
        },
        "warnings": bench_warnings,
        "entropy": entropy,
        "split": split,
        "ingest": ingest,
        "checksum": checksum,
    }

    emit_table(
        "entropy codec (vectorized vs reference)",
        [
            {
                "path": "encode",
                "reference_ms": f"{entropy['encode_seconds_reference'] * 1e3:.2f}",
                "vectorized_ms": f"{entropy['encode_seconds_vectorized'] * 1e3:.2f}",
                "speedup": ratio(
                    entropy["encode_seconds_reference"],
                    entropy["encode_seconds_vectorized"],
                ),
            },
            {
                "path": "decode",
                "reference_ms": f"{entropy['decode_seconds_reference'] * 1e3:.2f}",
                "vectorized_ms": f"{entropy['decode_seconds_vectorized'] * 1e3:.2f}",
                "speedup": ratio(
                    entropy["decode_seconds_reference"],
                    entropy["decode_seconds_vectorized"],
                ),
            },
        ],
    )
    emit_table(
        "ingest throughput",
        [
            {
                "workers": workers,
                "transport": (
                    "shm"
                    if run_stats["shm_gops"]
                    else "pickle"
                    if run_stats["pickled_gops"]
                    else "serial"
                ),
                "seconds": f"{run_stats['seconds']:.2f}",
                "frames/s": f"{run_stats['frames_per_sec']:.1f}",
                "encoded": format_bytes(run_stats["stored_bytes"]),
                "encoded MB/s": f"{run_stats['encoded_mb_per_sec']:.2f}",
                "speedup": ratio(
                    ingest["workers"][str(workers_list[0])]["seconds"],
                    run_stats["seconds"],
                ),
            }
            for workers, run_stats in (
                (int(key), value) for key, value in ingest["workers"].items()
            )
        ],
    )
    print(
        f"\nGOP codec split: encode {split['encode_seconds'] * 1e3:.1f} ms, "
        f"decode {split['decode_seconds'] * 1e3:.1f} ms "
        f"({split['encode_fraction'] * 100:.0f}% encode)"
    )
    print(
        f"checksum tax: +{checksum['ingest_overhead_fraction'] * 100:.1f}% ingest, "
        f"verify {checksum['verify_microseconds_per_segment']:.1f} µs/segment "
        f"({checksum['verify_mb_per_second']:.0f} MB/s over "
        f"{checksum['segments']} segments)"
    )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="venice")
    parser.add_argument("--width", type=int, default=256)
    parser.add_argument("--height", type=int, default=128)
    parser.add_argument("--fps", type=float, default=10.0)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--grid", default="4x8")
    parser.add_argument("--gop-frames", type=int, default=10)
    parser.add_argument("--quality", default="high")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, os.cpu_count() or 1],
        help="worker counts to compare (1 is always included)",
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="frame transport to the encode workers (default: auto)",
    )
    parser.add_argument("--output", default="BENCH_ingest.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long small-input pass for CI",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.width, args.height = 128, 64
        args.duration = min(args.duration, 2.0)
        args.repeats = 1
        args.grid = "2x4"
    run(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
