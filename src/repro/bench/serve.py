"""Wire delivery load harness: ``python -m repro.bench.serve``.

Starts one asyncio segment server over a freshly ingested store and
drives N *concurrent* wire sessions against it from client threads —
each session the full ABR + predictor + resilient-assembly loop of the
simulated path, every segment fetched over a real localhost socket.

Three things are measured and checked:

1. **Sustained concurrency** — all N sessions run to completion; the
   report records wall time, aggregate request and byte throughput, and
   the server's per-request latency percentiles straight from the shared
   metrics registry (the ``/metrics`` endpoint, so the numbers are the
   ones operators would scrape).
2. **Chaos invariants, no-fault edition** — with a healthy store the
   wire must deliver flawlessly: every session covers every window,
   zero degradation events, zero skipped tiles. Any violation fails the
   run (exit 1), mirroring the scenario runner's verdicts.
3. **Sim/wire equivalence** — each session's QoE summary must equal a
   simulated-path run of the same trace and config (the differential
   acceptance criterion), since playback timing follows the same
   bandwidth model on both paths.

``--replicas N`` serves the same store from N servers and streams every
session through the failover client; ``--kill-after T`` hard-stops
replica 0 mid-run (requires ``--replicas >= 2``). In that mode the bench
measures failover QoE instead of sim-equivalence: every session must
still complete every window with zero escaped errors, and the report
gains a ``failover`` section (failovers, retries, degradations, budget
spend) so the cost of the outage is visible, not just survived.

Writes ``BENCH_serve.json``. Run with ``--smoke`` in CI for a
seconds-long pass with 4 sessions.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.bench.harness import emit_table, format_bytes
from repro.core.predictor import PredictionService
from repro.core.storage import IngestConfig, StorageManager
from repro.core.streamer import SessionConfig, Streamer
from repro.geometry.grid import TileGrid
from repro.obs import MetricsRegistry
from repro.serve.client import HttpSegmentClient, serve_session
from repro.serve.server import ServerConfig, start_server
from repro.stream.abr import PredictiveTilingPolicy
from repro.stream.estimator import HarmonicMeanEstimator
from repro.stream.network import ConstantBandwidth
from repro.video.quality import Quality
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video


def _session_config(bandwidth: float) -> SessionConfig:
    return SessionConfig(
        policy=PredictiveTilingPolicy(),
        bandwidth=ConstantBandwidth(bandwidth),
        predictor="static",
        estimator=HarmonicMeanEstimator(),
    )


def _summary_key(report) -> str:
    """A comparable rendering of a QoE summary (NaN-stable via JSON)."""
    return json.dumps(report.summary(), sort_keys=True)


def _check_invariants(
    results: list[dict],
    window_count: int,
    require_sim_match: bool = True,
    require_no_degradation: bool = True,
) -> list[str]:
    """The wire invariants; returns violation descriptions.

    A kill-mid-run failover bench relaxes exactly two of them: sessions
    may degrade (bounded, reported) and their QoE need not bit-match the
    simulated path — but they must still complete every window with no
    escaped error.
    """
    violations: list[str] = []
    for result in results:
        session = result["session"]
        if result.get("error"):
            violations.append(f"session {session} raised: {result['error']}")
            continue
        if result["windows"] != window_count:
            violations.append(
                f"session {session} covered {result['windows']}/{window_count} windows"
            )
        if require_no_degradation and (result["degradations"] or result["skips"]):
            violations.append(
                f"session {session} degraded on a healthy store "
                f"({result['degradations']} degradations, {result['skips']} skips)"
            )
        if require_sim_match and not result["matches_sim"]:
            violations.append(
                f"session {session} wire QoE diverged from the simulated path"
            )
    return violations


def run(args: argparse.Namespace) -> dict:
    grid = TileGrid(*(int(part) for part in args.grid.lower().split("x")))
    frames = list(
        synthetic_video(
            args.profile,
            width=args.width,
            height=args.height,
            fps=args.fps,
            duration=args.duration,
            seed=args.seed,
        )
    )
    population = ViewerPopulation(seed=args.seed)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as root:
        storage = StorageManager(root)
        meta = storage.ingest(
            "bench",
            iter(frames),
            IngestConfig(
                grid=grid,
                qualities=(Quality.HIGH, Quality.LOW),
                gop_frames=args.gop_frames,
                fps=args.fps,
            ),
        )
        manifest = storage.build_manifest("bench")

        # Simulated-path references, one per viewer: the differential
        # baseline the wire sessions must reproduce exactly.
        traces = [
            population.trace(viewer, duration=meta.duration, rate=10.0)
            for viewer in range(args.sessions)
        ]
        sim_registry = MetricsRegistry()
        sim_streamer = Streamer(
            storage, PredictionService(registry=sim_registry), registry=sim_registry
        )
        sim_keys = [
            _summary_key(
                sim_streamer.serve("bench", trace, _session_config(args.bandwidth))
            )
            for trace in traces
        ]

        failover_mode = args.replicas > 1 or args.kill_after is not None
        serve_registry = MetricsRegistry()  # shared: /metrics is tier-wide
        handles = [
            start_server(
                storage,
                ServerConfig(
                    read_workers=args.read_workers, queue_depth=args.queue_depth
                ),
                registry=serve_registry,
            )
            for _ in range(args.replicas)
        ]
        killer: threading.Timer | None = None
        try:
            base_urls = [handle.base_url for handle in handles]
            target = base_urls if failover_mode else base_urls[0]
            session_registries = [MetricsRegistry() for _ in range(args.sessions)]

            def drive(viewer: int) -> dict:
                registry = session_registries[viewer]
                try:
                    report = serve_session(
                        target,
                        "bench",
                        traces[viewer],
                        _session_config(args.bandwidth),
                        registry=registry,
                    )
                except Exception as error:  # a died session is a violation, not a crash
                    return {"session": viewer, "error": f"{type(error).__name__}: {error}"}
                return {
                    "session": viewer,
                    "error": "",
                    "windows": len(report.records),
                    "degradations": report.degradation_count,
                    "skips": sum(
                        1
                        for record in report.records
                        for event in record.events
                        if event.kind == "skip"
                    ),
                    "bytes": sum(record.bytes_sent for record in report.records),
                    "matches_sim": _summary_key(report) == sim_keys[viewer],
                }

            if args.kill_after is not None:

                def kill_first_replica() -> None:
                    try:
                        handles[0].stop()
                    except Exception:  # noqa: BLE001 — a racing clean stop is fine
                        pass

                killer = threading.Timer(args.kill_after, kill_first_replica)
                killer.daemon = True
                killer.start()

            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=args.sessions) as pool:
                results = list(pool.map(drive, range(args.sessions)))
            wall_seconds = time.perf_counter() - started

            with HttpSegmentClient(handles[-1].base_url) as probe:
                metrics = probe.fetch_metrics()
        finally:
            if killer is not None:
                killer.cancel()
            for handle in handles:
                try:
                    handle.stop()
                except Exception:  # noqa: BLE001 — already killed mid-run
                    pass

    violations = _check_invariants(
        results,
        manifest.window_count,
        require_sim_match=not failover_mode,
        require_no_degradation=args.kill_after is None,
    )
    counters = metrics["counters"]
    histograms = metrics["histograms"]
    segment_latency = histograms.get("serve.request_seconds{endpoint=segment}", {})
    requests_total = sum(
        value
        for key, value in counters.items()
        if key.startswith("serve.requests")
    )
    bytes_sent = counters.get("serve.bytes_sent", 0.0)
    ok_sessions = sum(1 for result in results if not result.get("error"))

    report = {
        "params": {
            "sessions": args.sessions,
            "bandwidth": args.bandwidth,
            "profile": args.profile,
            "width": args.width,
            "height": args.height,
            "fps": args.fps,
            "duration": args.duration,
            "grid": args.grid,
            "gop_frames": args.gop_frames,
            "seed": args.seed,
            "read_workers": args.read_workers,
            "queue_depth": args.queue_depth,
            "replicas": args.replicas,
            "kill_after": args.kill_after,
        },
        "wall_seconds": wall_seconds,
        "sessions_completed": ok_sessions,
        "sessions_per_second": ok_sessions / wall_seconds if wall_seconds else 0.0,
        "requests_total": requests_total,
        "requests_per_second": requests_total / wall_seconds if wall_seconds else 0.0,
        "bytes_sent": bytes_sent,
        "bytes_per_second": bytes_sent / wall_seconds if wall_seconds else 0.0,
        "segment_latency_seconds": segment_latency,
        "invariants": {
            "violations": violations,
            "ok": not violations,
        },
        "sessions": results,
        "metrics": metrics,
    }
    if failover_mode:

        def across_sessions(name: str) -> float:
            return sum(
                registry.counter(name).total() for registry in session_registries
            )

        report["failover"] = {
            "requests": across_sessions("failover.requests"),
            "failovers": across_sessions("failover.failovers"),
            "hedges": across_sessions("failover.hedges"),
            "budget_exhausted": across_sessions("failover.budget_exhausted"),
            "stream_retries": across_sessions("stream.retries"),
            "degradations": sum(
                result.get("degradations", 0) for result in results
            ),
            "skips": sum(result.get("skips", 0) for result in results),
        }

    def fmt_quantile(name: str) -> str:
        value = segment_latency.get(name, math.nan)
        return f"{value * 1e3:.2f}" if isinstance(value, float) else "n/a"

    emit_table(
        "wire delivery",
        [
            {
                "sessions": args.sessions,
                "completed": ok_sessions,
                "wall s": f"{wall_seconds:.2f}",
                "req/s": f"{report['requests_per_second']:.0f}",
                "sent": format_bytes(bytes_sent),
                "p50 ms": fmt_quantile("p50"),
                "p90 ms": fmt_quantile("p90"),
                "p99 ms": fmt_quantile("p99"),
                "violations": len(violations),
            }
        ],
    )
    if failover_mode:
        failover = report["failover"]
        emit_table(
            "failover",
            [
                {
                    "replicas": args.replicas,
                    "kill s": "-" if args.kill_after is None else f"{args.kill_after:g}",
                    "failovers": f"{failover['failovers']:.0f}",
                    "retries": f"{failover['stream_retries']:.0f}",
                    "degraded": f"{failover['degradations']:.0f}",
                    "skips": f"{failover['skips']:.0f}",
                    "budget dry": f"{failover['budget_exhausted']:.0f}",
                }
            ],
        )
    for violation in violations:
        print(f"INVARIANT VIOLATED: {violation}", file=sys.stderr)

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--bandwidth", type=float, default=200_000.0, help="bytes/second")
    parser.add_argument("--profile", default="venice")
    parser.add_argument("--width", type=int, default=128)
    parser.add_argument("--height", type=int, default=64)
    parser.add_argument("--fps", type=float, default=10.0)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--grid", default="2x4")
    parser.add_argument("--gop-frames", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--read-workers", type=int, default=8)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve the store from N replicas through the failover client",
    )
    parser.add_argument(
        "--kill-after",
        type=float,
        default=None,
        help="hard-stop replica 0 this many seconds into the run",
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long 4-session pass for CI",
    )
    args = parser.parse_args(argv)
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    if args.kill_after is not None and args.replicas < 2:
        parser.error("--kill-after needs --replicas >= 2 (a survivor must remain)")
    if args.smoke:
        args.sessions = min(args.sessions, 4)
        args.width, args.height = 64, 32
        args.duration = min(args.duration, 2.0)
        args.grid = "2x2"
        args.gop_frames = 5
    report = run(args)
    return 0 if report["invariants"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
