"""Wire delivery load harness: ``python -m repro.bench.serve``.

Two phases over one freshly ingested store:

**QoE phase** — drives N *concurrent* wire sessions (the full ABR +
predictor + resilient-assembly loop, every segment over a real localhost
socket) and checks the delivery invariants:

1. **Chaos invariants, no-fault edition** — with a healthy store the
   wire must deliver flawlessly: every session covers every window,
   zero degradation events, zero skipped tiles. Any violation fails the
   run (exit 1), mirroring the scenario runner's verdicts.
2. **Sim/wire equivalence** — each session's QoE summary must equal a
   simulated-path run of the same trace and config (the differential
   acceptance criterion), since playback timing follows the same
   bandwidth model on both paths.

**Load phase** — the saturating driver: hundreds of lightweight
keep-alive connections issue pipelined GETs over a Zipf-skewed segment
popularity distribution (the request shape viewport-adaptive tiled
delivery actually sees), with a warmup period excluded and a fixed
measurement window, in three server modes — single process unpinned,
single process with the RAM hot set pinned, and ``processes=N`` workers
sharing the port via SO_REUSEPORT. Each mode reports requests/s and
client-observed p50/p90/p99 (measured send-to-last-byte per pipelined
batch, so the quantiles are conservative), plus the server's own merged
``/metrics`` view as a cross-check.

``--replicas N`` serves the same store from N servers and streams every
session through the failover client; ``--kill-after T`` hard-stops
replica 0 mid-run (requires ``--replicas >= 2``). In that mode the bench
measures failover QoE instead of sim-equivalence (and skips the load
phase): every session must still complete every window with zero escaped
errors, and the report gains a ``failover`` section (failovers, retries,
degradations, budget spend) so the cost of the outage is visible, not
just survived.

``--shards N`` (with ``--replication-factor R``) runs the *sharded*
tier instead: the ingested store is partitioned across N per-node roots
by the consistent-hash shard map (every node holds all metadata but only
its owned segment files — see :mod:`repro.serve.placement`), sessions
stream through the shard-aware failover client, and non-owned requests
exercise the server-side peer-fetch tier. A deterministic *peer probe*
(one non-owned segment fetched directly from a non-owner, byte-compared
against storage) runs before the sessions so the report always proves
the fabric works. Without ``--kill-after`` the sharded QoE must still
bit-match the simulated path — the differential acceptance criterion
extended to shard routing; with it, node-0 dies mid-run and every
session must still complete. The report gains a ``shards`` section with
the peer-fetch and shard-routing counters.

``--controller`` adds the **flash-crowd phase**: a small Zipf catalog of
videos is served while background demand spikes ~100× onto one video
(throttled baseline → linear ramp → unthrottled peak), twice — once with
the predictive control plane off and once with a live
:class:`~repro.control.Controller` forecasting demand and actuating
pre-warm pins, pin-budget resizing, and admission ceilings through the
``/control`` plane. Both arms run identical servers (cold hot set,
bounded ``max_inflight``); QoE sessions on the spiking video launch at
peak start. The report's ``flash_crowd`` section carries per-arm peak
p99, shed counts, QoE degradations, the controller's plan trail, and an
off-vs-on comparison — the CI gate fails when controller-on regresses
either p99 or QoE.

Writes ``BENCH_serve.json``. Run with ``--smoke`` in CI for a
seconds-long pass with 4 sessions and a 1-second measurement window.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import random
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.bench.harness import emit_table, format_bytes
from repro.core.predictor import PredictionService
from repro.core.storage import IngestConfig, StorageManager, segment_checksum
from repro.core.streamer import SessionConfig, Streamer
from repro.geometry.grid import TileGrid
from repro.obs import MetricsRegistry
from repro.serve.client import HttpSegmentClient, serve_session
from repro.serve.server import ServerConfig, start_server
from repro.stream.abr import PredictiveTilingPolicy
from repro.stream.estimator import HarmonicMeanEstimator
from repro.stream.network import ConstantBandwidth
from repro.video.quality import Quality
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video


def _session_config(bandwidth: float) -> SessionConfig:
    return SessionConfig(
        policy=PredictiveTilingPolicy(),
        bandwidth=ConstantBandwidth(bandwidth),
        predictor="static",
        estimator=HarmonicMeanEstimator(),
    )


def _summary_key(report) -> str:
    """A comparable rendering of a QoE summary (NaN-stable via JSON)."""
    return json.dumps(report.summary(), sort_keys=True)


def _check_invariants(
    results: list[dict],
    window_count: int,
    require_sim_match: bool = True,
    require_no_degradation: bool = True,
) -> list[str]:
    """The wire invariants; returns violation descriptions.

    A kill-mid-run failover bench relaxes exactly two of them: sessions
    may degrade (bounded, reported) and their QoE need not bit-match the
    simulated path — but they must still complete every window with no
    escaped error.
    """
    violations: list[str] = []
    for result in results:
        session = result["session"]
        if result.get("error"):
            violations.append(f"session {session} raised: {result['error']}")
            continue
        if result["windows"] != window_count:
            violations.append(
                f"session {session} covered {result['windows']}/{window_count} windows"
            )
        if require_no_degradation and (result["degradations"] or result["skips"]):
            violations.append(
                f"session {session} degraded on a healthy store "
                f"({result['degradations']} degradations, {result['skips']} skips)"
            )
        if require_sim_match and not result["matches_sim"]:
            violations.append(
                f"session {session} wire QoE diverged from the simulated path"
            )
    return violations


def _sessions_summary(results: list[dict], window_count: int) -> dict:
    """The aggregate view that replaced the per-session array: diffable
    at thousands of sessions, and everything the validators check."""
    return {
        "sessions": len(results),
        "completed": sum(1 for r in results if not r.get("error")),
        "errors": sum(1 for r in results if r.get("error")),
        "windows_ok": sum(
            1 for r in results if r.get("windows") == window_count
        ),
        "degradations": sum(r.get("degradations", 0) for r in results),
        "skips": sum(r.get("skips", 0) for r in results),
        "bytes": sum(r.get("bytes", 0) for r in results),
        "matches_sim": sum(1 for r in results if r.get("matches_sim")),
    }


def _bench_checksum_cost(storage, manifest) -> dict:
    """Verify-cost honesty: every wire response in this report was
    checksum-stamped and every storage read checksum-verified; this
    measures what that per-segment hash actually costs, best-of-5 over
    the bench catalog's real payloads."""
    keys = sorted(manifest.segment_sizes, key=lambda key: key.to_path())
    payloads = [
        storage.read_segment("bench", key.window, key.tile, key.quality)
        for key in keys
    ]
    total = sum(len(payload) for payload in payloads)
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for payload in payloads:
            segment_checksum(payload)
        best = min(best, time.perf_counter() - start)
    return {
        "segments": len(payloads),
        "bytes": total,
        "verify_seconds": best,
        "verify_microseconds_per_segment": (
            1e6 * best / len(payloads) if payloads else 0.0
        ),
        "verify_mb_per_second": total / best / 1e6 if best > 0 else 0.0,
    }


def _peer_probe(storage, manifest, shard_map, node_ids, node_urls) -> dict:
    """One deterministic peer fetch: the first segment (path order)
    requested from a node that does *not* own it, byte-compared against
    the authoritative store.

    This is the fabric's proof-of-life, independent of whether the
    session traffic happens to route any request off its owners — the CI
    gate asserts on the resulting ``serve.peer_fetches >= 1``.
    """
    keys = sorted(manifest.segment_sizes, key=lambda key: key.to_path())
    for key in keys:
        owners = shard_map.owners("bench", key)
        outsiders = [node for node in node_ids if node not in owners]
        if not outsiders:
            continue  # replication_factor == shards: everyone owns everything
        node = outsiders[0]
        with HttpSegmentClient(node_urls[node]) as client:
            data = client.fetch_segment("bench", key)
        expected = storage.read_segment("bench", key.window, key.tile, key.quality)
        return {
            "node": node,
            "segment": key.to_path(),
            "owners": list(owners),
            "byte_identical": data == expected,
        }
    return {"skipped": "every node owns every segment"}


# -- the saturating load driver -----------------------------------------------


def _zipf_paths(manifest, name: str, seed: int, count: int = 4096) -> list[str]:
    """A Zipf-skewed request sequence over the stored segments.

    Viewport-adaptive delivery concentrates on a small equatorial hot
    set; rank-1/r^1.1 over a seeded shuffle reproduces that shape
    deterministically.
    """
    keys = sorted(manifest.segment_sizes, key=lambda key: key.to_path())
    rng = random.Random(seed)
    rng.shuffle(keys)
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(keys))]
    paths = [f"/segment/{name}/{key.to_path()}" for key in keys]
    return rng.choices(paths, weights=weights, k=count)


async def _drive_load(
    host: str,
    port: int,
    paths: list[str],
    connections: int,
    warmup: float,
    measure: float,
    pipeline: int,
) -> dict:
    """Open-loop-style saturation: ``connections`` keep-alive sockets,
    each issuing ``pipeline`` back-to-back GETs per round, for a fixed
    wall-clock window with warmup excluded.

    Latency is measured batch-send to response-complete, so with
    ``pipeline > 1`` every quantile *includes* in-batch queueing — the
    conservative direction for the p99 acceptance bound.
    """
    requests = [
        f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("ascii")
        for path in paths
    ]
    loop = asyncio.get_running_loop()
    started = loop.time()
    warm_end = started + warmup
    end = warm_end + measure
    latencies: list[float] = []
    counts = {"requests": 0, "warmup": 0, "tail": 0, "errors": 0, "bytes": 0}
    total = len(requests)

    async def worker(offset: int) -> None:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            counts["errors"] += 1
            return
        index = offset
        try:
            while loop.time() < end:
                payload = b"".join(
                    requests[(index + step) % total] for step in range(pipeline)
                )
                sent = loop.time()
                writer.write(payload)
                await writer.drain()
                for _ in range(pipeline):
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = 0
                    for line in head.split(b"\r\n")[1:]:
                        if line[:15].lower() == b"content-length:":
                            length = int(line[15:])
                    if length:
                        await reader.readexactly(length)
                    finish = loop.time()
                    if not head.startswith(b"HTTP/1.1 200"):
                        counts["errors"] += 1
                    elif finish < warm_end:
                        counts["warmup"] += 1
                    elif finish > end:
                        counts["tail"] += 1
                    else:
                        counts["requests"] += 1
                        counts["bytes"] += length
                        latencies.append(finish - sent)
                index += pipeline
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            counts["errors"] += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # Spread each connection's start offset so the fleet doesn't sweep
    # the path list in lockstep.
    await asyncio.gather(*(worker(index * 37) for index in range(connections)))

    latencies.sort()

    def quantile(q: float) -> float:
        if not latencies:
            return math.nan
        return latencies[min(len(latencies) - 1, max(0, round(q * (len(latencies) - 1))))]

    return {
        **counts,
        "seconds": measure,
        "requests_per_second": counts["requests"] / measure if measure else 0.0,
        "bytes_per_second": counts["bytes"] / measure if measure else 0.0,
        "latency_ms": {
            "mean": (sum(latencies) / len(latencies)) * 1e3 if latencies else math.nan,
            "p50": quantile(0.5) * 1e3,
            "p90": quantile(0.9) * 1e3,
            "p99": quantile(0.99) * 1e3,
            "max": latencies[-1] * 1e3 if latencies else math.nan,
        },
    }


def _load_modes(args) -> list[tuple[str, ServerConfig]]:
    base = dict(
        read_workers=args.read_workers,
        queue_depth=args.queue_depth,
        drain_timeout=2.0,
    )
    pinned = dict(
        pin_budget_bytes=args.pin_budget,
        pin_threshold=1,
        prewarm=("bench",),
    )
    return [
        ("1proc", ServerConfig(**base)),
        ("1proc-pinned", ServerConfig(**base, **pinned)),
        (
            f"{args.processes}proc-pinned",
            ServerConfig(**base, **pinned, processes=args.processes),
        ),
    ]


def _run_load_phase(storage: StorageManager, args) -> list[dict]:
    manifest = storage.build_manifest("bench")
    paths = _zipf_paths(manifest, "bench", args.seed)
    modes: list[dict] = []
    for name, config in _load_modes(args):
        registry = MetricsRegistry() if config.processes == 1 else None
        handle = start_server(storage, config, registry=registry)
        try:
            host, port = handle.address
            stats = asyncio.run(
                _drive_load(
                    host,
                    port,
                    paths,
                    args.connections,
                    args.warmup,
                    args.measure_seconds,
                    args.pipeline,
                )
            )
            with HttpSegmentClient(handle.base_url) as probe:
                snapshot = probe.fetch_metrics()
        finally:
            handle.stop()
        counters = snapshot.get("counters", {})
        modes.append(
            {
                "mode": name,
                "processes": config.processes,
                "pinned": config.pin_budget_bytes > 0,
                **stats,
                "server": {
                    "workers": snapshot.get("workers", 1),
                    "requests_total": sum(
                        value
                        for key, value in counters.items()
                        if key.startswith("serve.requests")
                    ),
                    "pin_hits": counters.get("serve.pin_hits", 0.0),
                },
            }
        )
    return modes


def _check_load_invariants(modes: list[dict]) -> list[str]:
    violations: list[str] = []
    for mode in modes:
        if mode["requests"] == 0:
            violations.append(f"load mode {mode['mode']} completed zero requests")
            continue
        if mode["errors"] > 0.01 * mode["requests"]:
            violations.append(
                f"load mode {mode['mode']} had {mode['errors']} errors over "
                f"{mode['requests']} requests"
            )
    return violations


# -- the flash-crowd phase (predictive control plane on vs off) ----------------


def _catalog_zipf_paths(
    storage: StorageManager, names: list[str], seed: int, count: int = 2048
) -> list[str]:
    """Zipf-skewed request mix over every video in the catalog."""
    rng = random.Random(seed)
    entries: list[str] = []
    for name in names:
        manifest = storage.build_manifest(name)
        keys = sorted(manifest.segment_sizes, key=lambda key: key.to_path())
        entries.extend(f"/segment/{name}/{key.to_path()}" for key in keys)
    rng.shuffle(entries)
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(entries))]
    return rng.choices(entries, weights=weights, k=count)


async def _drive_flash(
    host: str,
    port: int,
    baseline_paths: list[str],
    spike_paths: list[str],
    *,
    baseline_seconds: float,
    ramp_seconds: float,
    peak_seconds: float,
    connections: int,
    base_interval: float,
    seed: int,
) -> dict:
    """The spiking background load: every connection serves the Zipf
    catalog at a throttled baseline rate, shifts linearly onto the spike
    video while shedding its throttle through the ramp, then hammers the
    spike video unthrottled through the peak (~100x the baseline rate).

    Latencies are bucketed per phase; 503/429 shed responses are counted
    separately from errors (admission control working as designed is not
    a failure — it is exactly what the controller is supposed to relax).
    Each phase reports two distributions: ``served`` over 200 responses
    only, and ``effective`` — the client-perceived one — where every
    shed is charged its ``Retry-After`` backoff on top of the response
    time. Comparing arms on ``served`` alone is survivorship bias: a
    tier that sheds most of the crowd posts excellent latencies for the
    lucky few.
    """
    loop = asyncio.get_running_loop()
    started = loop.time()
    ramp_start = started + baseline_seconds
    peak_start = ramp_start + ramp_seconds
    end = peak_start + peak_seconds
    phases: dict[str, list[float]] = {"baseline": [], "ramp": [], "peak": []}
    effective: dict[str, list[float]] = {"baseline": [], "ramp": [], "peak": []}
    counts = {"requests": 0, "shed": 0, "errors": 0, "reconnects": 0}

    async def worker(index: int) -> None:
        rng = random.Random(seed * 9973 + index)
        reader = writer = None

        async def connect():
            nonlocal reader, writer
            reader, writer = await asyncio.open_connection(host, port)

        async def close():
            if writer is None:
                return
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

        try:
            await connect()
        except OSError:
            counts["errors"] += 1
            return
        try:
            while True:
                now = loop.time()
                if now >= end:
                    break
                if now < ramp_start:
                    phase, pool, delay = "baseline", baseline_paths, base_interval
                elif now < peak_start:
                    fraction = (now - ramp_start) / ramp_seconds
                    phase = "ramp"
                    pool = spike_paths if rng.random() < fraction else baseline_paths
                    delay = base_interval * (1.0 - fraction)
                else:
                    phase, pool, delay = "peak", spike_paths, 0.0
                path = rng.choice(pool)
                request = f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("ascii")
                sent = loop.time()
                try:
                    writer.write(request)
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = 0
                    for line in head.split(b"\r\n")[1:]:
                        if line[:15].lower() == b"content-length:":
                            length = int(line[15:])
                    if length:
                        await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
                    counts["reconnects"] += 1
                    await close()
                    try:
                        await connect()
                    except OSError:
                        counts["errors"] += 1
                        return
                    continue
                finish = loop.time()
                counts["requests"] += 1
                if head.startswith(b"HTTP/1.1 200"):
                    phases[phase].append(finish - sent)
                    effective[phase].append(finish - sent)
                elif head.startswith((b"HTTP/1.1 503", b"HTTP/1.1 429")):
                    counts["shed"] += 1
                    retry_after = 0.5
                    for line in head.split(b"\r\n")[1:]:
                        if line[:12].lower() == b"retry-after:":
                            retry_after = float(line[12:])
                    effective[phase].append(finish - sent + retry_after)
                else:
                    counts["errors"] += 1
                if b"Connection: close" in head:
                    counts["reconnects"] += 1
                    await close()
                    try:
                        await connect()
                    except OSError:
                        counts["errors"] += 1
                        return
                if delay:
                    await asyncio.sleep(delay)
        finally:
            await close()

    await asyncio.gather(*(worker(index) for index in range(connections)))

    def stats(latencies: list[float]) -> dict:
        latencies = sorted(latencies)

        def quantile(q: float) -> float:
            if not latencies:
                return math.nan
            return latencies[
                min(len(latencies) - 1, max(0, round(q * (len(latencies) - 1))))
            ]

        return {
            "requests": len(latencies),
            "p50_ms": quantile(0.5) * 1e3,
            "p90_ms": quantile(0.9) * 1e3,
            "p99_ms": quantile(0.99) * 1e3,
        }

    return {
        **counts,
        "phases": {
            name: {
                **stats(phases[name]),
                "effective": stats(effective[name]),
            }
            for name in phases
        },
    }


def _run_flash_arm(
    storage: StorageManager,
    names: list[str],
    spike_name: str,
    traces: list,
    args,
    controller_on: bool,
) -> dict:
    """One arm of the flash-crowd comparison. Both arms get an identical
    server — cold hot set (budget 0), bounded admission — and identical
    load; only the ``on`` arm runs the control loop."""
    from repro.control import (
        ClusterConfig,
        ControlConfig,
        Controller,
        HandleActuator,
        NodeState,
        catalog_from_storage,
    )

    cluster = ClusterConfig(
        server=ServerConfig(
            read_workers=args.read_workers,
            queue_depth=args.queue_depth,
            max_inflight=args.flash_inflight,
            pin_budget_bytes=0,
            drain_timeout=2.0,
        ),
        control=ControlConfig(
            enabled=controller_on,
            interval=args.control_interval,
            horizon=3.0,
            prewarm_threshold=1.0,
            min_inflight=4,
            inflight_ceiling=max(64, 8 * args.flash_inflight),
            fallback_inflight=args.flash_inflight,
        ),
    )
    registry = MetricsRegistry()
    handle = start_server(storage, cluster.server, registry=registry)
    controller = None
    control_metrics = MetricsRegistry()
    if controller_on:
        controller = Controller(
            cluster.control,
            metrics_source=registry.snapshot,
            catalog_source=lambda: catalog_from_storage(storage),
            nodes_source=lambda: (
                NodeState(
                    node_id=cluster.server.node_id,
                    pin_budget_bytes=args.pin_budget,
                    max_inflight=cluster.server.max_inflight,
                    processes=1,
                ),
            ),
            actuators=(HandleActuator(handle),),
            registry=control_metrics,
        )
    try:
        host, port = handle.address
        baseline_paths = _catalog_zipf_paths(storage, names, args.seed)
        spike_paths = _zipf_paths(
            storage.build_manifest(spike_name), spike_name, args.seed, count=1024
        )
        if controller is not None:
            controller.start()

        driver_result: dict = {}

        def run_driver() -> None:
            driver_result.update(
                asyncio.run(
                    _drive_flash(
                        host,
                        port,
                        baseline_paths,
                        spike_paths,
                        baseline_seconds=args.flash_baseline,
                        ramp_seconds=args.flash_ramp,
                        peak_seconds=args.flash_peak,
                        connections=args.flash_connections,
                        base_interval=0.05,
                        seed=args.seed,
                    )
                )
            )

        driver = threading.Thread(target=run_driver, name="flash-driver")
        driver.start()
        # QoE sessions on the spiking video launch exactly at peak start,
        # so they contend with the worst of the crowd.
        time.sleep(args.flash_baseline + args.flash_ramp)
        pre_peak_state = handle.control_state()

        def drive_session(viewer: int) -> dict:
            session_registry = MetricsRegistry()
            try:
                report = serve_session(
                    [handle.base_url],
                    spike_name,
                    traces[viewer],
                    _session_config(args.bandwidth),
                    registry=session_registry,
                )
            except Exception as error:  # noqa: BLE001 — counted, not fatal
                return {"error": f"{type(error).__name__}: {error}"}
            return {
                "error": "",
                "windows": len(report.records),
                "degradations": report.degradation_count,
                "skips": sum(
                    1
                    for record in report.records
                    for event in record.events
                    if event.kind == "skip"
                ),
            }

        with ThreadPoolExecutor(max_workers=len(traces)) as pool:
            session_results = list(pool.map(drive_session, range(len(traces))))
        driver.join()
        final_state = handle.control_state()
    finally:
        if controller is not None:
            controller.stop()
        handle.stop()

    arm = {
        "controller": controller_on,
        "load": driver_result,
        "qoe": {
            "sessions": len(session_results),
            "completed": sum(1 for r in session_results if not r["error"]),
            "errors": sum(1 for r in session_results if r["error"]),
            "degradations": sum(r.get("degradations", 0) for r in session_results),
            "skips": sum(r.get("skips", 0) for r in session_results),
        },
        "server": {
            "shed": registry.counter("serve.shed").total(),
            "pin_hits": registry.counter("serve.pin_hits").total(),
            "pre_peak_state": pre_peak_state,
            "final_state": final_state,
        },
    }
    if controller_on:
        arm["control"] = {
            "steps": control_metrics.counter("control.steps").total(),
            "plans_applied": control_metrics.counter("control.plans_applied").total(),
            "plans_noop": control_metrics.counter("control.plans_noop").total(),
            "actuate_errors": control_metrics.counter(
                "control.actuate_errors"
            ).total(),
            "final_plan_version": final_state["version"],
        }
    return arm


def _run_flash_crowd(root: Path, frames: list, grid: TileGrid, args) -> dict:
    """The controller-on/off differential: one Zipf catalog, one ~100x
    spike, two identical runs apart from the control loop."""
    storage = StorageManager(root)
    names = [f"vid-{index}" for index in range(args.catalog)]
    for name in names:
        storage.ingest(
            name,
            iter(frames),
            IngestConfig(
                grid=grid,
                qualities=(Quality.HIGH, Quality.LOW),
                gop_frames=args.gop_frames,
                fps=args.fps,
            ),
        )
    spike_name = names[0]
    meta = storage.meta(spike_name)
    population = ViewerPopulation(seed=args.seed + 17)
    traces = [
        population.trace(viewer, duration=meta.duration, rate=10.0)
        for viewer in range(args.flash_sessions)
    ]
    off = _run_flash_arm(storage, names, spike_name, traces, args, controller_on=False)
    on = _run_flash_arm(storage, names, spike_name, traces, args, controller_on=True)
    # The headline p99 is the *effective* (client-perceived) one: sheds
    # are charged their Retry-After backoff, so an arm cannot buy a good
    # tail by refusing the crowd.
    off_p99 = off["load"]["phases"]["peak"]["effective"]["p99_ms"]
    on_p99 = on["load"]["phases"]["peak"]["effective"]["p99_ms"]
    comparison = {
        "peak_p99_ms_off": off_p99,
        "peak_p99_ms_on": on_p99,
        "peak_p99_improvement_ms": off_p99 - on_p99,
        "peak_served_p99_ms_off": off["load"]["phases"]["peak"]["p99_ms"],
        "peak_served_p99_ms_on": on["load"]["phases"]["peak"]["p99_ms"],
        # An errored session (every request shed, client gave up) counts
        # as one degradation-equivalent: under a hard overload the off
        # arm can complete zero sessions, and "no completed sessions" is
        # worse than any degradation count, not better.
        "qoe_degradations_off": off["qoe"]["degradations"]
        + off["qoe"]["skips"]
        + off["qoe"]["errors"],
        "qoe_degradations_on": on["qoe"]["degradations"]
        + on["qoe"]["skips"]
        + on["qoe"]["errors"],
        "shed_off": off["server"]["shed"],
        "shed_on": on["server"]["shed"],
        "controller_wins_p99": bool(on_p99 <= off_p99)
        if math.isfinite(on_p99) and math.isfinite(off_p99)
        else False,
        "controller_wins_qoe": (
            on["qoe"]["degradations"] + on["qoe"]["skips"] + on["qoe"]["errors"]
        )
        <= (
            off["qoe"]["degradations"]
            + off["qoe"]["skips"]
            + off["qoe"]["errors"]
        ),
    }
    return {
        "params": {
            "catalog": args.catalog,
            "spike_video": spike_name,
            "flash_sessions": args.flash_sessions,
            "flash_connections": args.flash_connections,
            "baseline_seconds": args.flash_baseline,
            "ramp_seconds": args.flash_ramp,
            "peak_seconds": args.flash_peak,
            "max_inflight": args.flash_inflight,
            "pin_budget_bytes": args.pin_budget,
            "control_interval": args.control_interval,
        },
        "off": off,
        "on": on,
        "comparison": comparison,
    }


def _check_flash_invariants(flash: dict | None) -> list[str]:
    """Anti-vacuity only: the on-vs-off quality gate lives in CI, where
    a tolerance keeps shared-runner noise from flaking the bench."""
    if flash is None:
        return []
    violations: list[str] = []
    for arm_name in ("off", "on"):
        arm = flash[arm_name]
        if arm["load"]["phases"]["peak"]["requests"] == 0:
            violations.append(
                f"flash-crowd {arm_name} arm served zero peak requests"
            )
        if arm["qoe"]["completed"] == 0 and arm["qoe"]["errors"] == 0:
            violations.append(
                f"flash-crowd {arm_name} arm ran zero QoE sessions"
            )
    on = flash["on"]
    # The off arm may legitimately complete nothing under a hard
    # overload (every request shed) — that IS the finding. The on arm
    # completing nothing means the controller failed at its one job.
    if on["qoe"]["completed"] == 0:
        violations.append(
            "flash-crowd controller-on arm completed zero QoE sessions"
        )
    if on["control"]["steps"] == 0:
        violations.append("flash-crowd controller never stepped")
    if on["control"]["plans_applied"] == 0:
        violations.append("flash-crowd controller never applied a plan")
    return violations


def run(args: argparse.Namespace) -> dict:
    grid = TileGrid(*(int(part) for part in args.grid.lower().split("x")))
    frames = list(
        synthetic_video(
            args.profile,
            width=args.width,
            height=args.height,
            fps=args.fps,
            duration=args.duration,
            seed=args.seed,
        )
    )
    population = ViewerPopulation(seed=args.seed)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as root:
        storage = StorageManager(root)
        meta = storage.ingest(
            "bench",
            iter(frames),
            IngestConfig(
                grid=grid,
                qualities=(Quality.HIGH, Quality.LOW),
                gop_frames=args.gop_frames,
                fps=args.fps,
            ),
        )
        manifest = storage.build_manifest("bench")
        checksum_cost = _bench_checksum_cost(storage, manifest)

        # Simulated-path references, one per viewer: the differential
        # baseline the wire sessions must reproduce exactly.
        traces = [
            population.trace(viewer, duration=meta.duration, rate=10.0)
            for viewer in range(args.sessions)
        ]
        sim_registry = MetricsRegistry()
        sim_streamer = Streamer(
            storage, PredictionService(registry=sim_registry), registry=sim_registry
        )
        sim_keys = [
            _summary_key(
                sim_streamer.serve("bench", trace, _session_config(args.bandwidth))
            )
            for trace in traces
        ]

        shard_mode = args.shards > 1
        failover_mode = args.replicas > 1 or args.kill_after is not None or shard_mode
        serve_registry = MetricsRegistry()  # shared: /metrics is tier-wide
        shard_map = None
        node_urls: dict[str, str] | None = None
        shards_report: dict | None = None
        if shard_mode:
            from repro.serve.placement import ShardMap, materialize_shards

            node_ids = [f"node-{index}" for index in range(args.shards)]
            shard_map = ShardMap(
                nodes=tuple(node_ids), replication_factor=args.replication_factor
            )
            node_roots = {
                node: Path(root) / "shards" / node for node in node_ids
            }
            placed = materialize_shards(storage, node_roots, shard_map)
            handles = [
                start_server(
                    StorageManager(node_roots[node], registry=serve_registry),
                    ServerConfig(
                        read_workers=args.read_workers,
                        queue_depth=args.queue_depth,
                        node_id=node,
                        shard_map=shard_map,
                        peer_timeout=2.0,
                    ),
                    registry=serve_registry,
                )
                for node in node_ids
            ]
            # Two-phase wiring: ports are ephemeral, so the node → URL
            # table exists only after every server is up.
            node_urls = {
                node_ids[index]: handles[index].base_url
                for index in range(args.shards)
            }
            for handle in handles:
                handle.update_shard_map(shard_map, node_urls)
            shards_report = {
                "shards": args.shards,
                "replication_factor": args.replication_factor,
                "map_version": shard_map.version,
                "segments_per_node": placed,
                "probe": _peer_probe(
                    storage, manifest, shard_map, node_ids, node_urls
                ),
            }
        else:
            handles = [
                start_server(
                    storage,
                    ServerConfig(
                        read_workers=args.read_workers, queue_depth=args.queue_depth
                    ),
                    registry=serve_registry,
                )
                for _ in range(args.replicas)
            ]
        killer: threading.Timer | None = None
        try:
            base_urls = [handle.base_url for handle in handles]
            target = base_urls if failover_mode else base_urls[0]
            session_registries = [MetricsRegistry() for _ in range(args.sessions)]

            def drive(viewer: int) -> dict:
                registry = session_registries[viewer]
                try:
                    report = serve_session(
                        target,
                        "bench",
                        traces[viewer],
                        _session_config(args.bandwidth),
                        registry=registry,
                        shard_map=shard_map,
                        node_urls=node_urls,
                    )
                except Exception as error:  # a died session is a violation, not a crash
                    return {"session": viewer, "error": f"{type(error).__name__}: {error}"}
                return {
                    "session": viewer,
                    "error": "",
                    "windows": len(report.records),
                    "degradations": report.degradation_count,
                    "skips": sum(
                        1
                        for record in report.records
                        for event in record.events
                        if event.kind == "skip"
                    ),
                    "bytes": sum(record.bytes_sent for record in report.records),
                    "matches_sim": _summary_key(report) == sim_keys[viewer],
                }

            if args.kill_after is not None:

                def kill_first_replica() -> None:
                    try:
                        handles[0].stop()
                    except Exception:  # noqa: BLE001 — a racing clean stop is fine
                        pass

                killer = threading.Timer(args.kill_after, kill_first_replica)
                killer.daemon = True
                killer.start()

            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=args.sessions) as pool:
                results = list(pool.map(drive, range(args.sessions)))
            wall_seconds = time.perf_counter() - started

            with HttpSegmentClient(handles[-1].base_url) as probe:
                metrics = probe.fetch_metrics()
        finally:
            if killer is not None:
                killer.cancel()
            for handle in handles:
                try:
                    handle.stop()
                except Exception:  # noqa: BLE001 — already killed mid-run
                    pass

        # Saturating load phase: single-server raw-speed modes. Skipped
        # in failover mode, which measures outage QoE instead.
        load_modes = [] if (failover_mode or args.skip_load) else _run_load_phase(
            storage, args
        )

        # Flash-crowd phase: the predictive control plane's differential.
        flash = (
            _run_flash_crowd(Path(root) / "flash", frames, grid, args)
            if args.controller
            else None
        )

    violations = _check_invariants(
        results,
        manifest.window_count,
        # A healthy sharded tier must still bit-match the simulated path
        # (the shard-routing differential); only replica spreading and
        # mid-run kills relax the equivalence.
        require_sim_match=(not failover_mode)
        or (shard_mode and args.replicas == 1 and args.kill_after is None),
        require_no_degradation=args.kill_after is None,
    )
    violations.extend(_check_load_invariants(load_modes))
    violations.extend(_check_flash_invariants(flash))
    metrics.pop("spans", None)  # per-request debug detail, not a bench artifact
    counters = metrics["counters"]
    histograms = metrics["histograms"]
    segment_latency = histograms.get("serve.request_seconds{endpoint=segment}", {})
    requests_total = sum(
        value
        for key, value in counters.items()
        if key.startswith("serve.requests")
    )
    bytes_sent = counters.get("serve.bytes_sent", 0.0)
    ok_sessions = sum(1 for result in results if not result.get("error"))
    peak = max(
        (mode["requests_per_second"] for mode in load_modes),
        default=requests_total / wall_seconds if wall_seconds else 0.0,
    )

    report = {
        "params": {
            "sessions": args.sessions,
            "bandwidth": args.bandwidth,
            "profile": args.profile,
            "width": args.width,
            "height": args.height,
            "fps": args.fps,
            "duration": args.duration,
            "grid": args.grid,
            "gop_frames": args.gop_frames,
            "seed": args.seed,
            "read_workers": args.read_workers,
            "queue_depth": args.queue_depth,
            "replicas": args.replicas,
            "kill_after": args.kill_after,
            "shards": args.shards,
            "replication_factor": args.replication_factor,
            "cpu_count": os.cpu_count(),
            "processes": args.processes,
            "pin_budget_bytes": args.pin_budget,
            "connections": args.connections,
            "warmup_seconds": args.warmup,
            "measure_seconds": args.measure_seconds,
            "pipeline": args.pipeline,
            # Every wire response above carried an X-Checksum and every
            # storage read was verified; the "checksum" section prices it.
            "checksums": True,
        },
        "checksum": checksum_cost,
        "wall_seconds": wall_seconds,
        "sessions_completed": ok_sessions,
        "sessions_per_second": ok_sessions / wall_seconds if wall_seconds else 0.0,
        "requests_total": requests_total,
        "requests_per_second": peak,
        "qoe_requests_per_second": requests_total / wall_seconds if wall_seconds else 0.0,
        "bytes_sent": bytes_sent,
        "bytes_per_second": bytes_sent / wall_seconds if wall_seconds else 0.0,
        "segment_latency_seconds": segment_latency,
        "invariants": {
            "violations": violations[:50],
            "violation_count": len(violations),
            "ok": not violations,
        },
        "sessions_summary": _sessions_summary(results, manifest.window_count),
        "load": {"modes": load_modes},
        "metrics": metrics,
    }
    if flash is not None:
        report["flash_crowd"] = flash
    if shard_mode:
        assert shards_report is not None
        shards_report.update(
            {
                "peer_fetches": serve_registry.counter("serve.peer_fetches").total(),
                "peer_bytes": serve_registry.counter("serve.peer_bytes").total(),
                "peer_cache_hits": serve_registry.counter(
                    "serve.peer_cache_hits"
                ).total(),
                "peer_errors": serve_registry.counter("serve.peer_errors").total(),
                "peer_fallback_local": serve_registry.counter(
                    "serve.peer_fallback_local"
                ).total(),
                "shard_routed": sum(
                    registry.counter("failover.shard_routed").total()
                    for registry in session_registries
                ),
                "shard_unroutable": sum(
                    registry.counter("failover.shard_unroutable").total()
                    for registry in session_registries
                ),
            }
        )
        report["shards"] = shards_report
    if failover_mode:

        def across_sessions(name: str) -> float:
            return sum(
                registry.counter(name).total() for registry in session_registries
            )

        report["failover"] = {
            "requests": across_sessions("failover.requests"),
            "failovers": across_sessions("failover.failovers"),
            "hedges": across_sessions("failover.hedges"),
            "budget_exhausted": across_sessions("failover.budget_exhausted"),
            "stream_retries": across_sessions("stream.retries"),
            "degradations": sum(
                result.get("degradations", 0) for result in results
            ),
            "skips": sum(result.get("skips", 0) for result in results),
        }

    def fmt_quantile(name: str) -> str:
        value = segment_latency.get(name, math.nan)
        return f"{value * 1e3:.2f}" if isinstance(value, float) else "n/a"

    emit_table(
        "wire delivery (QoE phase)",
        [
            {
                "sessions": args.sessions,
                "completed": ok_sessions,
                "wall s": f"{wall_seconds:.2f}",
                "req/s": f"{report['qoe_requests_per_second']:.0f}",
                "sent": format_bytes(bytes_sent),
                "p50 ms": fmt_quantile("p50"),
                "p90 ms": fmt_quantile("p90"),
                "p99 ms": fmt_quantile("p99"),
                "violations": len(violations),
            }
        ],
    )
    print(
        f"checksum verify: {checksum_cost['verify_microseconds_per_segment']:.1f} "
        f"µs/segment ({checksum_cost['verify_mb_per_second']:.0f} MB/s over "
        f"{checksum_cost['segments']} segments)"
    )
    if load_modes:
        emit_table(
            "saturating load",
            [
                {
                    "mode": mode["mode"],
                    "req/s": f"{mode['requests_per_second']:.0f}",
                    "p50 ms": f"{mode['latency_ms']['p50']:.2f}",
                    "p90 ms": f"{mode['latency_ms']['p90']:.2f}",
                    "p99 ms": f"{mode['latency_ms']['p99']:.2f}",
                    "errors": mode["errors"],
                    "workers": mode["server"]["workers"],
                    "pin hits": f"{mode['server']['pin_hits']:.0f}",
                }
                for mode in load_modes
            ],
        )
    if shard_mode:
        shards = report["shards"]
        emit_table(
            "sharded delivery",
            [
                {
                    "nodes": shards["shards"],
                    "rf": shards["replication_factor"],
                    "peer fetches": f"{shards['peer_fetches']:.0f}",
                    "peer hits": f"{shards['peer_cache_hits']:.0f}",
                    "peer errs": f"{shards['peer_errors']:.0f}",
                    "routed": f"{shards['shard_routed']:.0f}",
                    "probe": "ok"
                    if shards["probe"].get("byte_identical")
                    else shards["probe"].get("skipped", "FAILED"),
                }
            ],
        )
    if flash is not None:
        comparison = flash["comparison"]
        emit_table(
            "flash crowd (controller off vs on)",
            [
                {
                    "arm": "off" if not arm["controller"] else "on",
                    "eff p99 ms": (
                        f"{arm['load']['phases']['peak']['effective']['p99_ms']:.2f}"
                    ),
                    "served p99 ms": f"{arm['load']['phases']['peak']['p99_ms']:.2f}",
                    "peak reqs": arm["load"]["phases"]["peak"]["requests"],
                    "shed": f"{arm['server']['shed']:.0f}",
                    "qoe degr": arm["qoe"]["degradations"] + arm["qoe"]["skips"],
                    "pins@peak": arm["server"]["pre_peak_state"]["pinned_entries"],
                    "plans": f"{arm.get('control', {}).get('plans_applied', 0):.0f}",
                }
                for arm in (flash["off"], flash["on"])
            ],
        )
        print(
            "flash crowd: controller "
            + ("WINS" if comparison["controller_wins_p99"] else "LOSES")
            + f" p99 ({comparison['peak_p99_ms_off']:.2f} -> "
            f"{comparison['peak_p99_ms_on']:.2f} ms), "
            + ("WINS" if comparison["controller_wins_qoe"] else "LOSES")
            + f" QoE ({comparison['qoe_degradations_off']} -> "
            f"{comparison['qoe_degradations_on']} degradations)"
        )
    if failover_mode:
        failover = report["failover"]
        emit_table(
            "failover",
            [
                {
                    "replicas": args.replicas,
                    "kill s": "-" if args.kill_after is None else f"{args.kill_after:g}",
                    "failovers": f"{failover['failovers']:.0f}",
                    "retries": f"{failover['stream_retries']:.0f}",
                    "degraded": f"{failover['degradations']:.0f}",
                    "skips": f"{failover['skips']:.0f}",
                    "budget dry": f"{failover['budget_exhausted']:.0f}",
                }
            ],
        )
    for violation in violations:
        print(f"INVARIANT VIOLATED: {violation}", file=sys.stderr)

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--bandwidth", type=float, default=200_000.0, help="bytes/second")
    parser.add_argument("--profile", default="venice")
    parser.add_argument("--width", type=int, default=128)
    parser.add_argument("--height", type=int, default=64)
    parser.add_argument("--fps", type=float, default=10.0)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--grid", default="2x4")
    parser.add_argument("--gop-frames", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--read-workers", type=int, default=8)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve the store from N replicas through the failover client",
    )
    parser.add_argument(
        "--kill-after",
        type=float,
        default=None,
        help="hard-stop replica (or shard node) 0 this many seconds into the run",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the store across N consistent-hash shard nodes",
    )
    parser.add_argument(
        "--replication-factor",
        type=int,
        default=2,
        help="owners per segment in the shard map (--shards mode)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=128,
        help="concurrent keep-alive sockets in the saturating load phase",
    )
    parser.add_argument(
        "--pipeline",
        type=int,
        default=4,
        help="back-to-back GETs per connection round (HTTP/1.1 pipelining)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=1.0,
        help="seconds of load excluded from the measurement window",
    )
    parser.add_argument(
        "--measure-seconds",
        type=float,
        default=5.0,
        help="fixed measurement window per load mode",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="worker processes for the multi-process load mode",
    )
    parser.add_argument(
        "--pin-budget",
        type=int,
        default=64 * 1024 * 1024,
        help="hot-set pin budget (bytes) for the pinned load modes",
    )
    parser.add_argument(
        "--skip-load",
        action="store_true",
        help="run only the QoE phase (the pre-saturation bench shape)",
    )
    parser.add_argument(
        "--controller",
        action="store_true",
        help="run the flash-crowd phase: predictive control plane on vs off",
    )
    parser.add_argument(
        "--catalog",
        type=int,
        default=3,
        help="videos in the flash-crowd Zipf catalog",
    )
    parser.add_argument(
        "--flash-sessions",
        type=int,
        default=4,
        help="QoE sessions launched on the spiking video at peak start",
    )
    parser.add_argument(
        "--flash-connections",
        type=int,
        default=32,
        help="background-load connections in the flash-crowd phase",
    )
    parser.add_argument(
        "--flash-baseline",
        type=float,
        default=2.0,
        help="seconds of throttled whole-catalog load before the ramp",
    )
    parser.add_argument(
        "--flash-ramp",
        type=float,
        default=2.0,
        help="seconds over which demand shifts onto the spike video",
    )
    parser.add_argument(
        "--flash-peak",
        type=float,
        default=4.0,
        help="seconds of unthrottled spike-video load",
    )
    parser.add_argument(
        "--flash-inflight",
        type=int,
        default=8,
        help="both arms' starting admission ceiling (max_inflight)",
    )
    parser.add_argument(
        "--control-interval",
        type=float,
        default=0.3,
        help="controller step cadence in seconds (must exceed the "
        "server's /metrics render TTL of 0.25s)",
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long 4-session pass for CI",
    )
    args = parser.parse_args(argv)
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    if args.shards < 0 or args.shards == 1:
        parser.error("--shards must be 0 (off) or >= 2")
    if args.shards:
        if args.replicas > 1:
            parser.error("--shards and --replicas are mutually exclusive tiers")
        if not 1 <= args.replication_factor <= args.shards:
            parser.error("--replication-factor must be in [1, --shards]")
        if args.kill_after is not None and args.replication_factor < 2:
            parser.error(
                "--kill-after with --shards needs --replication-factor >= 2 "
                "(a surviving owner must remain for every segment)"
            )
    elif args.kill_after is not None and args.replicas < 2:
        parser.error("--kill-after needs --replicas >= 2 (a survivor must remain)")
    if args.connections < 1:
        parser.error("--connections must be >= 1")
    if args.pipeline < 1:
        parser.error("--pipeline must be >= 1")
    if args.processes < 2:
        parser.error("--processes must be >= 2 (it names the multi-process mode)")
    if args.controller:
        if args.shards or args.replicas > 1 or args.kill_after is not None:
            parser.error(
                "--controller benches a single node; it composes with "
                "neither --shards, --replicas, nor --kill-after"
            )
        if args.catalog < 2:
            parser.error("--catalog must be >= 2 (the spike needs a background)")
        if args.control_interval <= 0.25:
            parser.error(
                "--control-interval must exceed the server's 0.25s "
                "/metrics render TTL or the controller reads stale counters"
            )
    if args.smoke:
        args.sessions = min(args.sessions, 4)
        args.width, args.height = 64, 32
        args.duration = min(args.duration, 2.0)
        args.grid = "2x2"
        args.gop_frames = 5
        args.connections = min(args.connections, 32)
        args.warmup = min(args.warmup, 0.3)
        args.measure_seconds = min(args.measure_seconds, 1.0)
        args.catalog = min(args.catalog, 2)
        args.flash_sessions = min(args.flash_sessions, 2)
        args.flash_connections = min(args.flash_connections, 16)
        args.flash_baseline = min(args.flash_baseline, 1.0)
        args.flash_ramp = min(args.flash_ramp, 1.5)
        args.flash_peak = min(args.flash_peak, 2.5)
    report = run(args)
    return 0 if report["invariants"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
