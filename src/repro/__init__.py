"""VisualCloud reproduction: a DBMS for virtual-reality (360-degree) video.

The public API in one import::

    from repro import (
        VisualCloud, IngestConfig, SessionConfig,
        Quality, TileGrid, Viewport,
        NaiveFullQuality, UniformAdaptive, PredictiveTilingPolicy,
        ConstantBandwidth, HeadMovementModel,
        FaultPlan, FaultRule, RetryPolicy,
    )

See the README for a quickstart and ``DESIGN.md`` for the system map.
"""

from repro.chaos import FaultPlan, FaultRule
from repro.core.query import Scan
from repro.core.resilience import RetryPolicy
from repro.core.server import VisualCloud
from repro.core.storage import IngestConfig
from repro.core.streamer import SessionConfig
from repro.geometry.grid import TileGrid
from repro.geometry.viewport import Orientation, Viewport
from repro.obs import MetricsRegistry
from repro.predict.traces import HeadMovementModel, Trace
from repro.serve import (
    HttpSegmentClient,
    RemoteStorage,
    SegmentServer,
    ServerConfig,
    ServerHandle,
    serve_session,
    start_server,
)
from repro.stream.abr import NaiveFullQuality, PredictiveTilingPolicy, UniformAdaptive
from repro.stream.network import ConstantBandwidth, SteppedBandwidth, TraceBandwidth
from repro.video.frame import Frame
from repro.video.quality import Quality

__version__ = "1.0.0"

__all__ = [
    "ConstantBandwidth",
    "FaultPlan",
    "FaultRule",
    "Frame",
    "HeadMovementModel",
    "HttpSegmentClient",
    "IngestConfig",
    "RetryPolicy",
    "MetricsRegistry",
    "NaiveFullQuality",
    "Orientation",
    "PredictiveTilingPolicy",
    "Quality",
    "RemoteStorage",
    "Scan",
    "SegmentServer",
    "ServerConfig",
    "ServerHandle",
    "SessionConfig",
    "SteppedBandwidth",
    "TileGrid",
    "Trace",
    "TraceBandwidth",
    "UniformAdaptive",
    "VisualCloud",
    "Viewport",
    "__version__",
    "serve_session",
    "start_server",
]
