"""Procedural 360-degree video generators.

Each profile mimics one of the evaluation's reference videos:

* ``timelapse`` — a static camera over a slowly changing, highly detailed
  scene: almost all bits go to the first intra frame of each GOP.
* ``venice``  — moderate detail with several independently moving
  objects: a balanced intra/predicted bit split.
* ``coaster`` — a fast-panning camera: global motion makes predicted
  frames expensive, the worst case for zero-motion residual coding.

Frames are equirectangular: generators produce luma/chroma fields over
``(theta, phi)`` so content wraps correctly through the azimuth seam.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.video.frame import Frame


@dataclass(frozen=True)
class VideoProfile:
    """Knobs that determine how hard content is to encode."""

    name: str
    detail: float  # amplitude of high-frequency background texture
    texture_scale: float  # spatial frequency multiplier of the texture
    object_count: int  # independently moving foreground blobs
    object_speed: float  # blob angular speed, radians/second
    pan_speed: float  # global camera pan, radians/second
    drift: float  # slow luminance drift per second (timelapse lighting)
    noise: float  # per-frame sensor noise sigma


PROFILES: dict[str, VideoProfile] = {
    "timelapse": VideoProfile(
        name="timelapse",
        detail=55.0,
        texture_scale=2.0,
        object_count=1,
        object_speed=0.05,
        pan_speed=0.0,
        drift=6.0,
        noise=1.0,
    ),
    "venice": VideoProfile(
        name="venice",
        detail=40.0,
        texture_scale=1.4,
        object_count=6,
        object_speed=0.35,
        pan_speed=0.0,
        drift=1.0,
        noise=1.5,
    ),
    "coaster": VideoProfile(
        name="coaster",
        detail=35.0,
        texture_scale=1.0,
        object_count=3,
        object_speed=0.5,
        pan_speed=0.6,
        drift=0.0,
        noise=2.0,
    ),
}


def _texture_field(
    width: int, height: int, scale: float, rng: np.random.Generator, waves: int = 8
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Wave parameters for a wrap-correct background texture.

    Returns per-wave integer azimuth frequencies, polar frequencies, and
    phases; integer azimuth frequencies guarantee continuity across the
    equirectangular seam.
    """
    k_theta = rng.integers(1, max(2, int(6 * scale)) + 1, size=waves)
    k_phi = rng.uniform(0.5, 5.0 * scale, size=waves)
    phases = rng.uniform(0.0, 2.0 * math.pi, size=waves)
    return k_theta.astype(np.float64), k_phi, phases


def synthetic_video(
    profile: VideoProfile | str,
    width: int = 256,
    height: int = 128,
    fps: float = 30.0,
    duration: float = 3.0,
    seed: int = 0,
) -> Iterator[Frame]:
    """Generate ``duration`` seconds of procedural 360 video.

    Deterministic for a given (profile, dimensions, fps, duration, seed).
    """
    if isinstance(profile, str):
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
        profile = PROFILES[profile]
    if width % 16 or height % 16:
        raise ValueError(f"dimensions must be multiples of 16, got {width}x{height}")
    rng = np.random.default_rng(seed)
    frame_count = int(round(duration * fps))
    if frame_count < 1:
        raise ValueError(f"duration {duration}s at {fps}fps yields no frames")

    theta = (np.arange(width) + 0.5) * (2.0 * math.pi / width)
    phi = (np.arange(height) + 0.5) * (math.pi / height)
    theta_grid, phi_grid = np.meshgrid(theta, phi)

    k_theta, k_phi, phases = _texture_field(width, height, profile.texture_scale, rng)
    amplitudes = profile.detail * rng.uniform(0.3, 1.0, size=k_theta.size) / k_theta.size * 2.5

    # Foreground blobs: (theta, phi, angular radius, luma amplitude, velocity).
    blob_theta = rng.uniform(0.0, 2.0 * math.pi, profile.object_count)
    blob_phi = rng.uniform(0.3 * math.pi, 0.7 * math.pi, profile.object_count)
    blob_radius = rng.uniform(0.15, 0.4, profile.object_count)
    blob_amp = rng.uniform(40.0, 90.0, profile.object_count) * rng.choice(
        [-1.0, 1.0], profile.object_count
    )
    blob_velocity = rng.uniform(0.5, 1.0, profile.object_count) * profile.object_speed
    blob_direction = rng.choice([-1.0, 1.0], profile.object_count)

    chroma_phase_u = rng.uniform(0, 2 * math.pi)
    chroma_phase_v = rng.uniform(0, 2 * math.pi)

    for index in range(frame_count):
        time = index / fps
        pan = profile.pan_speed * time
        shifted_theta = theta_grid + pan  # camera pan = content shifts in azimuth

        luma = np.full((height, width), 110.0 + profile.drift * time)
        for k_t, k_p, phase, amplitude in zip(k_theta, k_phi, phases, amplitudes):
            luma += amplitude * np.sin(k_t * shifted_theta + phase) * np.cos(
                k_p * phi_grid
            )
        for blob in range(profile.object_count):
            center_theta = blob_theta[blob] + blob_direction[blob] * blob_velocity[blob] * time + pan
            center_phi = blob_phi[blob] + 0.1 * math.sin(
                time * blob_velocity[blob] * 2.0 + blob
            )
            # Angular distance approximation, wrap-aware in theta.
            d_theta = np.angle(np.exp(1j * (theta_grid - center_theta)))
            d_phi = phi_grid - center_phi
            dist_sq = d_theta * d_theta * np.sin(center_phi) ** 2 + d_phi * d_phi
            luma += blob_amp[blob] * np.exp(-dist_sq / (2.0 * blob_radius[blob] ** 2))
        if profile.noise > 0:
            luma += rng.normal(0.0, profile.noise, luma.shape)

        u_plane = 128.0 + 24.0 * np.sin(shifted_theta + chroma_phase_u)
        v_plane = 128.0 + 24.0 * np.cos(phi_grid * 2.0 + chroma_phase_v)
        u_sub = u_plane.reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3))
        v_sub = v_plane.reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3))

        to_u8 = lambda plane: np.clip(np.round(plane), 0, 255).astype(np.uint8)
        yield Frame(y=to_u8(luma), u=to_u8(u_sub), v=to_u8(v_sub))


def solid_video(
    width: int = 64, height: int = 32, frames: int = 4, luma: int = 100
) -> list[Frame]:
    """A flat, trivially compressible clip for unit tests."""
    return [Frame.blank(width, height, luma=luma) for _ in range(frames)]


def checkerboard_video(
    width: int = 64,
    height: int = 32,
    frames: int = 4,
    square: int = 8,
    step: int = 2,
) -> list[Frame]:
    """A moving checkerboard: maximal high-frequency content, known motion.

    The pattern shifts ``step`` pixels per frame, so consecutive frames
    differ everywhere — the stress case for residual coding.
    """
    base_x = np.arange(width)
    base_y = np.arange(height)
    result = []
    for index in range(frames):
        x_idx = (base_x + index * step) // square
        pattern = ((x_idx[None, :] + (base_y // square)[:, None]) % 2) * 200 + 28
        result.append(Frame.from_luma(pattern.astype(np.uint8)))
    return result
