"""Viewer populations: many users, varied behaviour, staggered arrivals.

The scalability experiment (E8) and the Markov-predictor training both
need *populations* of viewers rather than single traces: users who watch
the same content with correlated (hotspot-driven) but individually noisy
behaviour, arriving over time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.predict.traces import DEFAULT_HOTSPOTS, HeadMovementModel, Hotspot, Trace


@dataclass
class ViewerPopulation:
    """A reproducible population of viewers of one video.

    Every viewer shares the content's hotspot layout (people look at the
    same interesting things) but has private dwell/saccade randomness and
    a personal attention span (fixation-duration multiplier).
    """

    hotspots: tuple[Hotspot, ...] = DEFAULT_HOTSPOTS
    base_fixation: float = 2.5
    attention_spread: float = 0.5  # lognormal sigma of per-user fixation scale
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def trace(self, user: int, duration: float, rate: float = 30.0) -> Trace:
        """The head-movement trace of one user (deterministic per user)."""
        user_rng = np.random.default_rng((self.seed, user))
        fixation = self.base_fixation * math.exp(
            user_rng.normal(0.0, self.attention_spread)
        )
        model = HeadMovementModel(
            hotspots=self.hotspots,
            fixation_duration_mean=fixation,
        )
        return model.generate(duration, rate=rate, seed=int(user_rng.integers(2**31)))

    def traces(self, count: int, duration: float, rate: float = 30.0) -> list[Trace]:
        """Traces for users ``0..count-1``."""
        if count < 1:
            raise ValueError(f"population must have at least one user, got {count}")
        return [self.trace(user, duration, rate) for user in range(count)]

    def arrivals(self, count: int, horizon: float) -> list[float]:
        """Poisson-ish session start times over ``[0, horizon)``, sorted."""
        if count < 1:
            raise ValueError(f"need at least one arrival, got {count}")
        times = np.sort(self._rng.uniform(0.0, horizon, count))
        return [float(time) for time in times]

    def split(self, count: int, train_fraction: float = 0.5) -> tuple[list[int], list[int]]:
        """Deterministically split user ids into train/test populations.

        The Markov predictor must be trained on *other* users' traces than
        the ones it is evaluated on; this is the split that enforces it.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train fraction must be in (0, 1), got {train_fraction}")
        cut = max(1, int(round(count * train_fraction)))
        cut = min(cut, count - 1)
        users = list(range(count))
        return users[:cut], users[cut:]
