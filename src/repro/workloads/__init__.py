"""Workload generators: synthetic 360 content and viewer populations.

The reference datasets the original evaluation used (the "Timelapse",
"Venice", and "Coaster" 4K captures) are unavailable offline; these
generators produce procedural stand-ins whose *coding-relevant* properties
— spatial detail, temporal change, global camera motion — are controlled
per profile, so the relative behaviour of policies and codecs carries
over even though absolute bitrates do not.
"""

from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import (
    PROFILES,
    VideoProfile,
    checkerboard_video,
    solid_video,
    synthetic_video,
)

__all__ = [
    "PROFILES",
    "VideoProfile",
    "ViewerPopulation",
    "checkerboard_video",
    "solid_video",
    "synthetic_video",
]
