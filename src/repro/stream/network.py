"""Simulated network links.

Delivery experiments need a deterministic link whose capacity can be
constant, stepped (to exercise rate adaptation), or driven by a recorded
throughput trace. All models are piecewise-constant in time, which makes
transfer-time computation exact rather than numerically integrated.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np


class BandwidthModel(abc.ABC):
    """Link capacity as a piecewise-constant function of time (bytes/s)."""

    @abc.abstractmethod
    def rate_at(self, time: float) -> float:
        """Capacity in bytes/second at ``time``."""

    @abc.abstractmethod
    def next_change(self, time: float) -> float:
        """The next instant after ``time`` at which the rate changes
        (``math.inf`` if it never does)."""


@dataclass(frozen=True)
class ConstantBandwidth(BandwidthModel):
    """A fixed-capacity link."""

    rate: float  # bytes per second

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.rate}")

    def rate_at(self, time: float) -> float:
        return self.rate

    def next_change(self, time: float) -> float:
        return math.inf


@dataclass(frozen=True)
class SteppedBandwidth(BandwidthModel):
    """Capacity that switches at fixed instants.

    ``steps`` is a sequence of ``(start_time, rate)`` pairs, sorted by
    start time; the first entry must start at or before 0.
    """

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("at least one step is required")
        times = [start for start, _ in self.steps]
        if times != sorted(times):
            raise ValueError("steps must be sorted by start time")
        if times[0] > 0:
            raise ValueError("the first step must cover time zero")
        if any(rate <= 0 for _, rate in self.steps):
            raise ValueError("all rates must be positive")

    def rate_at(self, time: float) -> float:
        rate = self.steps[0][1]
        for start, step_rate in self.steps:
            if start <= time:
                rate = step_rate
            else:
                break
        return rate

    def next_change(self, time: float) -> float:
        for start, _ in self.steps:
            if start > time:
                return start
        return math.inf


class TraceBandwidth(BandwidthModel):
    """Capacity replayed from a sampled throughput trace.

    Holds each sample's rate until the next sample; past the end, the
    final rate persists. A synthetic trace generator is provided for
    experiments (:meth:`random_walk`).
    """

    def __init__(self, times: np.ndarray, rates: np.ndarray) -> None:
        times = np.asarray(times, dtype=np.float64)
        rates = np.asarray(rates, dtype=np.float64)
        if times.shape != rates.shape or times.ndim != 1 or times.size == 0:
            raise ValueError("times and rates must be equal-length 1-D arrays")
        if np.any(np.diff(times) <= 0):
            raise ValueError("trace times must be strictly increasing")
        if times[0] > 0:
            raise ValueError("the trace must cover time zero")
        if np.any(rates <= 0):
            raise ValueError("all rates must be positive")
        self.times = times
        self.rates = rates

    @classmethod
    def random_walk(
        cls,
        duration: float,
        mean_rate: float,
        volatility: float = 0.2,
        step: float = 1.0,
        seed: int = 0,
    ) -> "TraceBandwidth":
        """A mean-reverting log-random-walk throughput trace."""
        rng = np.random.default_rng(seed)
        count = max(2, int(math.ceil(duration / step)) + 1)
        log_rates = np.empty(count)
        log_rates[0] = math.log(mean_rate)
        target = math.log(mean_rate)
        for i in range(1, count):
            pull = 0.3 * (target - log_rates[i - 1])
            log_rates[i] = log_rates[i - 1] + pull + rng.normal(0.0, volatility)
        return cls(np.arange(count) * step, np.exp(log_rates))

    def rate_at(self, time: float) -> float:
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        return float(self.rates[max(index, 0)])

    def next_change(self, time: float) -> float:
        index = int(np.searchsorted(self.times, time, side="right"))
        if index >= self.times.size:
            return math.inf
        return float(self.times[index])


class BlackoutBandwidth(BandwidthModel):
    """A base model with scheduled near-total outages.

    During each ``(start, end)`` blackout interval the link's capacity
    collapses to ``floor_rate`` (bytes/s) — not zero, so transfers still
    terminate, but slow enough that anything mid-flight effectively
    stalls. This is the chaos harness's link fault: deterministic,
    piecewise-constant, and composable with any base model.
    """

    def __init__(
        self,
        base: BandwidthModel,
        blackouts: tuple[tuple[float, float], ...],
        floor_rate: float = 1.0,
    ) -> None:
        if floor_rate <= 0:
            raise ValueError(f"floor rate must be positive, got {floor_rate}")
        intervals = tuple((float(start), float(end)) for start, end in blackouts)
        for start, end in intervals:
            if end <= start:
                raise ValueError(f"empty blackout interval [{start}, {end})")
        if list(intervals) != sorted(intervals):
            raise ValueError("blackouts must be sorted by start time")
        for (_, prev_end), (next_start, _) in zip(intervals, intervals[1:]):
            if next_start < prev_end:
                raise ValueError("blackout intervals must not overlap")
        self.base = base
        self.blackouts = intervals
        self.floor_rate = floor_rate

    def _blacked_out(self, time: float) -> bool:
        return any(start <= time < end for start, end in self.blackouts)

    def rate_at(self, time: float) -> float:
        if self._blacked_out(time):
            return self.floor_rate
        return self.base.rate_at(time)

    def next_change(self, time: float) -> float:
        boundaries = [self.base.next_change(time)]
        for start, end in self.blackouts:
            if start > time:
                boundaries.append(start)
            if end > time:
                boundaries.append(end)
        return min(boundaries)


class SimulatedLink:
    """A sequential link: transfers occupy the link one at a time.

    The link tracks its own busy-until time, so back-to-back transfers
    queue naturally — exactly how a single HTTP connection behaves.
    ``rtt`` charges a fixed per-request round-trip before the first byte
    flows; it is the term that makes very short delivery windows expensive
    (one request per window, amortised over fewer media bytes).
    """

    def __init__(self, model: BandwidthModel, rtt: float = 0.0) -> None:
        if rtt < 0:
            raise ValueError(f"RTT must be non-negative, got {rtt}")
        self.model = model
        self.rtt = rtt
        self.busy_until = 0.0
        self.bytes_sent = 0

    def transfer(self, size: int, request_time: float) -> float:
        """Send ``size`` bytes at ``request_time``; returns completion time.

        The transfer starts when both the request has been issued and the
        link is free, pays one RTT, then drains at the piecewise-constant
        capacity.
        """
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size}")
        start = max(request_time, self.busy_until) + self.rtt
        time = start
        remaining = float(size)
        while remaining > 1e-9:
            rate = self.model.rate_at(time)
            boundary = self.model.next_change(time)
            window = boundary - time
            can_send = rate * window
            if can_send >= remaining:
                time += remaining / rate
                remaining = 0.0
            else:
                remaining -= can_send
                time = boundary
        self.busy_until = time
        self.bytes_sent += size
        return time
