"""Adaptive delivery substrate: links, manifests, ABR policies, QoE.

VisualCloud's delivery engine is a tile-aware variant of MPEG-DASH
adaptive streaming: the client (here, a simulator) fetches one delivery
window at a time, each window being a set of per-tile segments whose
qualities a policy chose under a bandwidth budget. This package provides
the network link simulation, the manifest, the quality-assignment
policies (including the two baselines the evaluation compares against),
and the QoE accounting.
"""

from repro.stream.abr import (
    NaiveFullQuality,
    PredictiveTilingPolicy,
    QualityPolicy,
    UniformAdaptive,
)
from repro.stream.client import PlaybackSimulator, ViewportQualityProbe
from repro.stream.dash import Manifest, SegmentKey
from repro.stream.network import (
    BandwidthModel,
    ConstantBandwidth,
    SimulatedLink,
    SteppedBandwidth,
    TraceBandwidth,
)
from repro.stream.qoe import QoEReport, WindowRecord

__all__ = [
    "BandwidthModel",
    "ConstantBandwidth",
    "Manifest",
    "NaiveFullQuality",
    "PlaybackSimulator",
    "PredictiveTilingPolicy",
    "QoEReport",
    "QualityPolicy",
    "SegmentKey",
    "SimulatedLink",
    "SteppedBandwidth",
    "TraceBandwidth",
    "UniformAdaptive",
    "ViewportQualityProbe",
    "WindowRecord",
]
