"""Client-side throughput estimation.

A real client cannot read the link's true capacity; it estimates from the
transfers it has completed. The streamer accepts any estimator here in
place of its default oracle (the link model's actual rate), letting the
estimation ablation measure how much of the system's performance depends
on knowing the bandwidth.
"""

from __future__ import annotations

import abc
from collections import deque

#: Floor applied to observed transfer durations. On a fast (or simulated)
#: link a window can complete in the same instant it starts; discarding
#: those samples would leave the estimator blind forever exactly when the
#: link is at its best, silently falling back to the oracle rate. Clamping
#: to one millisecond keeps the sample as a very-high-rate observation.
MIN_TRANSFER_SECONDS = 1e-3


def _clamped_rate(size_bytes: int, duration_seconds: float) -> float | None:
    """Bytes/second of one transfer, or None if it carries no signal.

    Zero-byte windows are dropped (no signal); zero/negative durations are
    clamped to :data:`MIN_TRANSFER_SECONDS` rather than dropped.
    """
    if size_bytes <= 0:
        return None
    return size_bytes / max(duration_seconds, MIN_TRANSFER_SECONDS)


class ThroughputEstimator(abc.ABC):
    """Online bytes-per-second estimator fed by completed transfers."""

    @abc.abstractmethod
    def observe(self, size_bytes: int, duration_seconds: float) -> None:
        """Record one completed transfer."""

    @abc.abstractmethod
    def estimate(self) -> float | None:
        """Current bytes/second estimate, or None before any observation."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Forget all observations (start of a new session)."""


class HarmonicMeanEstimator(ThroughputEstimator):
    """Harmonic mean of the last ``window`` transfer rates.

    The harmonic mean weights slow transfers heavily, which is the
    conservative behaviour DASH players use: one stalled segment should
    drag the estimate down hard.
    """

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)

    def observe(self, size_bytes: int, duration_seconds: float) -> None:
        rate = _clamped_rate(size_bytes, duration_seconds)
        if rate is not None:
            self._samples.append(rate)

    def estimate(self) -> float | None:
        if not self._samples:
            return None
        return len(self._samples) / sum(1.0 / rate for rate in self._samples)

    def reset(self) -> None:
        self._samples.clear()


class EwmaEstimator(ThroughputEstimator):
    """Exponentially weighted moving average of transfer rates.

    ``alpha`` is the weight of the newest sample; smaller values smooth
    more and react slower.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    def observe(self, size_bytes: int, duration_seconds: float) -> None:
        rate = _clamped_rate(size_bytes, duration_seconds)
        if rate is None:
            return
        if self._value is None:
            self._value = rate
        else:
            self._value = self.alpha * rate + (1.0 - self.alpha) * self._value

    def estimate(self) -> float | None:
        return self._value

    def reset(self) -> None:
        self._value = None


class LastSampleEstimator(ThroughputEstimator):
    """The most recent transfer's rate, unsmoothed — the naive baseline
    that chases every fluctuation."""

    def __init__(self) -> None:
        self._value: float | None = None

    def observe(self, size_bytes: int, duration_seconds: float) -> None:
        rate = _clamped_rate(size_bytes, duration_seconds)
        if rate is not None:
            self._value = rate

    def estimate(self) -> float | None:
        return self._value

    def reset(self) -> None:
        self._value = None
