"""Quality-assignment (ABR) policies.

Given a delivery window, the set of tiles the predictor expects to be
visible, and a byte budget derived from the link estimate, a policy
assigns a quality to every tile of the window. The three policies here
are the systems the evaluation compares:

* :class:`NaiveFullQuality` — what monolithic 360 services do: ship the
  whole sphere at top quality, ignore the budget.
* :class:`UniformAdaptive` — classic un-tiled DASH: one quality for the
  whole sphere, the best that fits the budget.
* :class:`PredictiveTilingPolicy` — VisualCloud: top quality inside the
  predicted viewport, the floor quality elsewhere, degrading gracefully
  when even that exceeds the budget.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.stream.dash import Manifest
from repro.video.quality import Quality

QualityMap = dict[tuple[int, int], Quality]


class QualityPolicy(abc.ABC):
    """Assigns a quality to every tile of one delivery window."""

    name: str = "policy"

    @abc.abstractmethod
    def assign(
        self,
        manifest: Manifest,
        window: int,
        predicted_tiles: set[tuple[int, int]],
        budget_bytes: float,
    ) -> QualityMap:
        """Quality per tile. Every grid tile must appear in the result —
        a tile that is never delivered would render as a grey hole."""


@dataclass
class NaiveFullQuality(QualityPolicy):
    """The baseline: the entire sphere at the best quality, always."""

    name: str = "naive"

    def assign(
        self,
        manifest: Manifest,
        window: int,
        predicted_tiles: set[tuple[int, int]],
        budget_bytes: float,
    ) -> QualityMap:
        return {tile: manifest.best_quality for tile in manifest.grid.tiles()}


@dataclass
class UniformAdaptive(QualityPolicy):
    """Un-tiled rate adaptation: the best single quality that fits.

    Falls back to the worst rung when nothing fits (a DASH player would
    likewise keep playing at the lowest representation and stall).
    """

    name: str = "uniform"

    def assign(
        self,
        manifest: Manifest,
        window: int,
        predicted_tiles: set[tuple[int, int]],
        budget_bytes: float,
    ) -> QualityMap:
        for quality in manifest.qualities:
            if manifest.full_sphere_size(window, quality) <= budget_bytes:
                return {tile: quality for tile in manifest.grid.tiles()}
        return {tile: manifest.worst_quality for tile in manifest.grid.tiles()}


@dataclass
class PredictiveTilingPolicy(QualityPolicy):
    """VisualCloud's policy: spend quality where the viewer will look.

    Starts from (predicted -> ``high_rung``, rest -> floor) and, if the
    budget is exceeded, degrades in stages: first the unpredicted tiles to
    the ladder floor, then the predicted tiles one rung at a time. If the
    budget allows, unpredicted tiles are *not* upgraded — spare budget is
    headroom against bandwidth variance, matching the demo's behaviour of
    shipping background tiles at low quality unconditionally.
    """

    high_rung: int = 0  # index into the manifest ladder for predicted tiles
    low_rung: int = -1  # index for unpredicted tiles (-1 = ladder floor)
    name: str = "predictive"

    def assign(
        self,
        manifest: Manifest,
        window: int,
        predicted_tiles: set[tuple[int, int]],
        budget_bytes: float,
    ) -> QualityMap:
        ladder = manifest.qualities
        high_index = self.high_rung % len(ladder)
        low_index = self.low_rung % len(ladder)
        if low_index < high_index:
            raise ValueError(
                f"low rung {low_index} is better than high rung {high_index}"
            )
        all_tiles = set(manifest.grid.tiles())
        predicted = predicted_tiles & all_tiles
        background = all_tiles - predicted

        # Degradation schedule: step the predicted rung toward the floor.
        for predicted_index in range(high_index, len(ladder)):
            quality_map = {tile: ladder[predicted_index] for tile in predicted}
            background_index = max(low_index, predicted_index)
            quality_map.update({tile: ladder[background_index] for tile in background})
            if manifest.window_size(window, quality_map) <= budget_bytes:
                return quality_map
        # Nothing fits: everything at the floor, accept the stall risk.
        return {tile: ladder[-1] for tile in all_tiles}


def estimate_budget(
    bandwidth_estimate: float, window_duration: float, safety: float = 0.9
) -> float:
    """Byte budget for one window from a link estimate.

    ``safety`` derates the estimate so transient dips do not immediately
    stall playback; 0.9 matches common DASH practice.
    """
    if bandwidth_estimate <= 0:
        raise ValueError(f"bandwidth estimate must be positive, got {bandwidth_estimate}")
    if not 0.0 < safety <= 1.0:
        raise ValueError(f"safety factor must be in (0, 1], got {safety}")
    if window_duration <= 0:
        raise ValueError(f"window duration must be positive, got {window_duration}")
    return bandwidth_estimate * window_duration * safety
