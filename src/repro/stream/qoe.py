"""Quality-of-experience accounting.

The demo's claim has two halves — fewer bytes, same experience — so the
report tracks both: delivered bytes against the naive baseline, and what
the viewer actually saw. "What the viewer saw" has a cheap structural
metric (the fraction of viewed tile-time that arrived at top quality) and
an expensive pixel metric (viewport PSNR, computed by the
:class:`repro.stream.client.ViewportQualityProbe` when requested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stream.dash import SegmentKey
from repro.video.quality import Quality


@dataclass(frozen=True)
class DegradationEvent:
    """One resilience action taken while assembling a delivery window.

    ``kind`` is one of:

    * ``"retry"`` — a transient read error was retried and eventually
      succeeded at the requested quality;
    * ``"degrade"`` — the requested rung could not be read and a lower
      stored rung shipped instead (``delivered < requested``, never
      above: degradation must not silently upgrade a budgeted request);
    * ``"skip"`` — no rung of the tile's ladder could be read; the window
      shipped without the tile (``delivered is None``).
    """

    window: int
    tile: tuple[int, int]
    requested: Quality
    delivered: Quality | None
    kind: str
    attempts: int  # total read attempts spent on this tile
    reason: str = ""

    @property
    def segment_key(self) -> SegmentKey:
        """Canonical identity of the segment the session asked for."""
        return SegmentKey(self.window, self.tile, self.requested)

    def to_json(self) -> dict:
        return {
            "window": self.window,
            "tile": list(self.tile),
            "segment": self.segment_key.to_path(),
            "requested": self.requested.label,
            "delivered": None if self.delivered is None else self.delivered.label,
            "kind": self.kind,
            "attempts": self.attempts,
            "reason": self.reason,
        }


@dataclass
class WindowRecord:
    """Everything that happened to one delivery window of one session."""

    window: int
    decision_time: float  # when the server chose qualities
    request_time: float  # when the transfer was enqueued
    delivered_time: float  # when the last byte arrived
    playback_start: float  # when the client began displaying it
    stall_seconds: float  # rebuffering charged to this window
    bytes_sent: int
    quality_map: dict[tuple[int, int], Quality]
    predicted_tiles: set[tuple[int, int]]
    ladder_best: Quality
    visible_tiles: set[tuple[int, int]] = field(default_factory=set)
    viewport_psnr: float | None = None  # filled by the quality probe
    #: What the policy asked for (post-resolve), before any resilience
    #: fallback. Equal to ``quality_map`` plus skipped tiles on a clean
    #: window; the delta is exactly what ``events`` records.
    requested_map: dict[tuple[int, int], Quality] | None = None
    #: Retries, degradations, and skips charged to this window.
    events: list[DegradationEvent] = field(default_factory=list)

    @property
    def visible_at_best(self) -> float:
        """Fraction of actually-visible tiles delivered at the ladder's
        best rung (1.0 when prediction was perfect or the whole sphere
        shipped at top quality)."""
        if not self.visible_tiles:
            return float("nan")
        hits = sum(
            1
            for tile in self.visible_tiles
            if self.quality_map.get(tile) == self.ladder_best
        )
        return hits / len(self.visible_tiles)


@dataclass
class QoEReport:
    """Session-level aggregation of :class:`WindowRecord`."""

    records: list[WindowRecord]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a QoE report needs at least one window record")

    @property
    def total_bytes(self) -> int:
        return sum(record.bytes_sent for record in self.records)

    @property
    def stall_time(self) -> float:
        return sum(record.stall_seconds for record in self.records)

    @property
    def stall_count(self) -> int:
        return sum(1 for record in self.records if record.stall_seconds > 1e-9)

    @property
    def mean_visible_at_best(self) -> float:
        values = [
            record.visible_at_best
            for record in self.records
            if record.visible_tiles
        ]
        if not values:
            return float("nan")
        return sum(values) / len(values)

    @property
    def mean_viewport_psnr(self) -> float:
        values = [
            record.viewport_psnr
            for record in self.records
            if record.viewport_psnr is not None
        ]
        if not values:
            return float("nan")
        return sum(values) / len(values)

    @property
    def quality_switches(self) -> int:
        """How often the quality of a *visible* tile changed between
        consecutive windows — rapid flapping is perceptually jarring."""
        switches = 0
        for previous, current in zip(self.records, self.records[1:]):
            for tile in current.visible_tiles:
                before = previous.quality_map.get(tile)
                now = current.quality_map.get(tile)
                if before is not None and now is not None and before != now:
                    switches += 1
        return switches

    @property
    def degradation_events(self) -> list[DegradationEvent]:
        """Every resilience event of the session, in delivery order."""
        return [event for record in self.records for event in record.events]

    @property
    def degradation_count(self) -> int:
        """Tiles that shipped below the requested rung or not at all."""
        return sum(
            1 for event in self.degradation_events if event.kind in ("degrade", "skip")
        )

    @property
    def retry_count(self) -> int:
        """Transient read errors healed by retry (requested rung shipped)."""
        return sum(1 for event in self.degradation_events if event.kind == "retry")

    def bytes_saved_vs(self, baseline: "QoEReport") -> float:
        """Fractional byte reduction relative to a baseline session."""
        if baseline.total_bytes == 0:
            raise ValueError("baseline delivered zero bytes")
        return 1.0 - self.total_bytes / baseline.total_bytes

    def summary(self) -> dict:
        """A flat dict for tabular experiment output."""
        return {
            "windows": len(self.records),
            "total_bytes": self.total_bytes,
            "stall_time_s": round(self.stall_time, 3),
            "stall_count": self.stall_count,
            "visible_at_best": round(self.mean_visible_at_best, 4),
            "viewport_psnr_db": round(self.mean_viewport_psnr, 2),
            "quality_switches": self.quality_switches,
            "degradations": self.degradation_count,
            "retries": self.retry_count,
        }
