"""The client side of a streaming session, simulated.

Two concerns live here:

* :class:`PlaybackSimulator` — the buffer/clock model. Given when each
  window's bytes arrived, it derives when each window actually played and
  how much rebuffering the viewer suffered.
* :class:`ViewportQualityProbe` — the pixel-level QoE instrument. It
  decodes delivered (mixed-quality) windows, renders the viewport the
  viewer was looking at, and scores it against the pristine source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.viewport import Viewport
from repro.predict.traces import Trace
from repro.video.frame import Frame, psnr
from repro.video.tiles import TiledGop


@dataclass
class PlaybackSimulator:
    """Derives the playback schedule implied by delivery times.

    Playback is continuous at the media rate once started; a window whose
    bytes are late pushes the whole schedule back (a stall). ``startup``
    is the client's initial buffering policy: playback begins when the
    first window has fully arrived.
    """

    window_duration: float

    def __post_init__(self) -> None:
        if self.window_duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.window_duration}")

    def schedule(self, delivered_times: list[float]) -> tuple[list[float], list[float]]:
        """Map delivery completion times to (playback_starts, stalls).

        ``stalls[i]`` is the rebuffering charged to window ``i``; the
        startup wait for window 0 is not a stall (viewers expect startup
        latency but notice mid-stream freezes).
        """
        if not delivered_times:
            raise ValueError("no windows delivered")
        starts: list[float] = []
        stalls: list[float] = []
        for index, delivered in enumerate(delivered_times):
            if index == 0:
                starts.append(delivered)
                stalls.append(0.0)
                continue
            nominal = starts[-1] + self.window_duration
            actual = max(nominal, delivered)
            starts.append(actual)
            stalls.append(actual - nominal)
        return starts, stalls


@dataclass
class ViewportQualityProbe:
    """Scores delivered windows by the fidelity of the rendered viewport.

    ``samples_per_window`` orientations are taken from the trace across the
    window's media interval; for each, the viewport is rendered from both
    the delivered composite frame and the original source frame, and the
    luma PSNR between the two is averaged. Degradation in tiles the viewer
    never looked at is invisible to this metric — by design, since it is
    invisible to the viewer too.
    """

    viewport: Viewport
    render_width: int = 64
    render_height: int = 64
    samples_per_window: int = 2

    def window_psnr(
        self,
        delivered: TiledGop,
        original_frames: list[Frame],
        trace: Trace,
        media_start: float,
        fps: float,
    ) -> float:
        """Mean viewport PSNR (dB) for one delivered window."""
        if len(original_frames) != delivered.frame_count:
            raise ValueError(
                f"original window has {len(original_frames)} frames, "
                f"delivered has {delivered.frame_count}"
            )
        decoded = delivered.decode()
        count = delivered.frame_count
        sample_indices = np.linspace(0, count - 1, self.samples_per_window)
        scores = []
        for fractional_index in sample_indices:
            frame_index = int(round(fractional_index))
            media_time = media_start + frame_index / fps
            orientation = trace.orientation_at(media_time)
            seen = self.viewport.render(
                decoded[frame_index].y.astype(np.float64),
                orientation,
                self.render_width,
                self.render_height,
            )
            reference = self.viewport.render(
                original_frames[frame_index].y.astype(np.float64),
                orientation,
                self.render_width,
                self.render_height,
            )
            scores.append(psnr(seen, reference))
        finite = [score for score in scores if np.isfinite(score)]
        if not finite:
            # All samples identical to the source (e.g. lossless synthetic
            # content): report a conventional ceiling rather than inf.
            return 99.0
        return float(np.mean(finite))
