"""DASH-style manifests for tiled adaptive streaming.

A manifest is what the server publishes to a session: the video's layout
(grid, window duration, quality ladder) plus the exact byte size of every
(window, tile, quality) segment. Sizes matter — the ABR policy budgets
real bytes against real link capacity, so the manifest is built from the
storage manager's index rather than a bitrate model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.grid import TileGrid
from repro.video.quality import Quality


@dataclass(frozen=True)
class SegmentKey:
    """Identity of one deliverable segment.

    This is the *canonical* segment identity: wire URLs
    (:meth:`to_path`/:meth:`from_path`), segment file names
    (:meth:`file_name`), and buffer-pool keys (:meth:`cache_key`) are all
    derived from one ``SegmentKey``, so the HTTP surface, the catalog
    layout, the cache, and chaos targeting cannot drift apart.
    """

    window: int  # delivery-window (GOP) index
    tile: tuple[int, int]  # (row, col) in the grid
    quality: Quality

    def to_path(self) -> str:
        """The wire path of this segment: ``window/row/col/quality``.

        This is the tail of the server's segment URL
        (``/segment/<video>/<window>/<row>/<col>/<quality>``); it contains
        no video name or version — names scope the URL, versions are a
        storage concern the wire never sees.
        """
        row, col = self.tile
        return f"{self.window}/{row}/{col}/{self.quality.label}"

    @classmethod
    def from_path(cls, path: str) -> "SegmentKey":
        """Parse :meth:`to_path` output (raises ``ValueError`` on junk)."""
        parts = path.strip("/").split("/")
        if len(parts) != 4:
            raise ValueError(
                f"segment path must be window/row/col/quality, got {path!r}"
            )
        try:
            window, row, col = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as error:
            raise ValueError(f"non-integer component in segment path {path!r}") from error
        if window < 0 or row < 0 or col < 0:
            raise ValueError(f"negative component in segment path {path!r}")
        return cls(window, (row, col), Quality.from_label(parts[3]))

    def cache_key(self, video: str, file_version: int) -> tuple:
        """The buffer-pool key for this segment's bytes.

        The tuple shape ``(video, window, tile, quality, version)`` is
        relied on by the chaos cache wrapper and the scenario runner's
        cache/disk consistency audit — construct it here, nowhere else.
        """
        return (video, self.window, self.tile, self.quality, file_version)

    def file_name(self, version: int) -> str:
        """Canonical on-disk file name of this segment at ``version``."""
        row, col = self.tile
        return f"g{self.window:05d}_r{row}_c{col}_{self.quality.label}_v{version}.seg"


@dataclass
class Manifest:
    """The session-facing description of one stored video."""

    video: str
    width: int
    height: int
    fps: float
    window_duration: float  # seconds per delivery window (= GOP duration)
    window_count: int
    grid: TileGrid
    qualities: tuple[Quality, ...]  # available ladder, best first
    segment_sizes: dict[SegmentKey, int] = field(default_factory=dict)
    #: Optional :class:`~repro.serve.placement.ShardMap` published by a
    #: sharded tier (typed loosely: stream must not import serve at module
    #: load). ``None`` on single-node manifests, and omitted from the wire
    #: form so pre-shard manifest JSON stays byte-identical.
    shard_map: object | None = None

    def __post_init__(self) -> None:
        if self.window_duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.window_duration}")
        if self.window_count <= 0:
            raise ValueError(f"window count must be positive, got {self.window_count}")
        if not self.qualities:
            raise ValueError("a manifest needs at least one quality")
        if list(self.qualities) != sorted(self.qualities, reverse=True):
            raise ValueError("qualities must be ordered best first")

    @property
    def duration(self) -> float:
        return self.window_count * self.window_duration

    @property
    def best_quality(self) -> Quality:
        return self.qualities[0]

    @property
    def worst_quality(self) -> Quality:
        return self.qualities[-1]

    def size_of(self, window: int, tile: tuple[int, int], quality: Quality) -> int:
        """Byte size of one segment; raises if it was never stored."""
        key = SegmentKey(window, tile, quality)
        if key not in self.segment_sizes:
            raise KeyError(
                f"no segment for window {window}, tile {tile}, quality {quality.label}"
            )
        return self.segment_sizes[key]

    def available(self, window: int, tile: tuple[int, int]) -> tuple[Quality, ...]:
        """Stored qualities for one (window, tile), best first.

        With full-matrix storage this is the whole ladder; popularity-
        planned stores (see :mod:`repro.core.popularity`) leave gaps.
        """
        if not hasattr(self, "_availability"):
            index: dict[tuple[int, tuple[int, int]], list[Quality]] = {}
            for key in self.segment_sizes:
                index.setdefault((key.window, key.tile), []).append(key.quality)
            self._availability = {
                position: tuple(sorted(qualities, reverse=True))
                for position, qualities in index.items()
            }
        stored = self._availability.get((window, tile), ())
        if not stored:
            raise KeyError(f"window {window}, tile {tile} has no stored segments")
        return stored

    def resolve(self, window: int, tile: tuple[int, int], quality: Quality) -> Quality:
        """The stored quality a request for ``quality`` is served at.

        Exact match when stored; otherwise the best stored rung *below*
        the request (never silently upgrade a budgeted request); if the
        request is below everything stored, the worst stored rung.
        """
        stored = self.available(window, tile)
        if quality in stored:
            return quality
        at_or_below = [candidate for candidate in stored if candidate < quality]
        if at_or_below:
            return at_or_below[0]  # best of the worse ones (list is best-first)
        return stored[-1]

    def window_size(self, window: int, quality_map: dict[tuple[int, int], Quality]) -> int:
        """Total bytes to deliver one window under a quality assignment.

        Requests resolve to stored rungs, so partial stores budget with
        the sizes they will actually ship.
        """
        return sum(
            self.size_of(window, tile, self.resolve(window, tile, quality))
            for tile, quality in quality_map.items()
        )

    def full_sphere_size(self, window: int, quality: Quality) -> int:
        """Bytes for every tile of a window at a single (resolved) quality."""
        return self.window_size(window, {tile: quality for tile in self.grid.tiles()})

    def window_of_time(self, time: float) -> int:
        """The delivery window containing playback time ``time``."""
        if time < 0:
            raise ValueError(f"negative playback time {time}")
        return min(int(time / self.window_duration), self.window_count - 1)

    def window_interval(self, window: int) -> tuple[float, float]:
        """Playback interval ``[start, end)`` of a window."""
        if not 0 <= window < self.window_count:
            raise IndexError(f"window {window} outside [0, {self.window_count})")
        start = window * self.window_duration
        return (start, start + self.window_duration)

    # -- wire (de)serialisation -----------------------------------------------

    def to_json(self) -> dict:
        """A JSON-able dict; the payload of the server's manifest endpoint.

        Segment sizes are keyed by :meth:`SegmentKey.to_path`, so the keys
        in the wire manifest are exactly the URL tails a client requests.
        """
        payload = {
            "video": self.video,
            "width": self.width,
            "height": self.height,
            "fps": self.fps,
            "window_duration": self.window_duration,
            "window_count": self.window_count,
            "grid": [self.grid.rows, self.grid.cols],
            "qualities": [quality.label for quality in self.qualities],
            "segments": {
                key.to_path(): size
                for key, size in sorted(
                    self.segment_sizes.items(),
                    key=lambda item: (item[0].window, item[0].tile, item[0].quality.rank),
                )
            },
        }
        if self.shard_map is not None:
            payload["shard_map"] = self.shard_map.to_json()
        return payload

    @classmethod
    def from_json(cls, data: dict) -> "Manifest":
        """Rebuild a manifest from :meth:`to_json` output (exact inverse)."""
        rows, cols = data["grid"]
        shard_map = None
        if data.get("shard_map") is not None:
            from repro.serve.placement import ShardMap

            shard_map = ShardMap.from_json(data["shard_map"])
        return cls(
            video=data["video"],
            width=int(data["width"]),
            height=int(data["height"]),
            fps=float(data["fps"]),
            window_duration=float(data["window_duration"]),
            window_count=int(data["window_count"]),
            grid=TileGrid(int(rows), int(cols)),
            qualities=tuple(
                Quality.from_label(label) for label in data["qualities"]
            ),
            segment_sizes={
                SegmentKey.from_path(path): int(size)
                for path, size in data["segments"].items()
            },
            shard_map=shard_map,
        )
