"""DASH-style manifests for tiled adaptive streaming.

A manifest is what the server publishes to a session: the video's layout
(grid, window duration, quality ladder) plus the exact byte size of every
(window, tile, quality) segment. Sizes matter — the ABR policy budgets
real bytes against real link capacity, so the manifest is built from the
storage manager's index rather than a bitrate model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.grid import TileGrid
from repro.video.quality import Quality


@dataclass(frozen=True)
class SegmentKey:
    """Identity of one deliverable segment."""

    window: int  # delivery-window (GOP) index
    tile: tuple[int, int]  # (row, col) in the grid
    quality: Quality


@dataclass
class Manifest:
    """The session-facing description of one stored video."""

    video: str
    width: int
    height: int
    fps: float
    window_duration: float  # seconds per delivery window (= GOP duration)
    window_count: int
    grid: TileGrid
    qualities: tuple[Quality, ...]  # available ladder, best first
    segment_sizes: dict[SegmentKey, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.window_duration}")
        if self.window_count <= 0:
            raise ValueError(f"window count must be positive, got {self.window_count}")
        if not self.qualities:
            raise ValueError("a manifest needs at least one quality")
        if list(self.qualities) != sorted(self.qualities, reverse=True):
            raise ValueError("qualities must be ordered best first")

    @property
    def duration(self) -> float:
        return self.window_count * self.window_duration

    @property
    def best_quality(self) -> Quality:
        return self.qualities[0]

    @property
    def worst_quality(self) -> Quality:
        return self.qualities[-1]

    def size_of(self, window: int, tile: tuple[int, int], quality: Quality) -> int:
        """Byte size of one segment; raises if it was never stored."""
        key = SegmentKey(window, tile, quality)
        if key not in self.segment_sizes:
            raise KeyError(
                f"no segment for window {window}, tile {tile}, quality {quality.label}"
            )
        return self.segment_sizes[key]

    def available(self, window: int, tile: tuple[int, int]) -> tuple[Quality, ...]:
        """Stored qualities for one (window, tile), best first.

        With full-matrix storage this is the whole ladder; popularity-
        planned stores (see :mod:`repro.core.popularity`) leave gaps.
        """
        if not hasattr(self, "_availability"):
            index: dict[tuple[int, tuple[int, int]], list[Quality]] = {}
            for key in self.segment_sizes:
                index.setdefault((key.window, key.tile), []).append(key.quality)
            self._availability = {
                position: tuple(sorted(qualities, reverse=True))
                for position, qualities in index.items()
            }
        stored = self._availability.get((window, tile), ())
        if not stored:
            raise KeyError(f"window {window}, tile {tile} has no stored segments")
        return stored

    def resolve(self, window: int, tile: tuple[int, int], quality: Quality) -> Quality:
        """The stored quality a request for ``quality`` is served at.

        Exact match when stored; otherwise the best stored rung *below*
        the request (never silently upgrade a budgeted request); if the
        request is below everything stored, the worst stored rung.
        """
        stored = self.available(window, tile)
        if quality in stored:
            return quality
        at_or_below = [candidate for candidate in stored if candidate < quality]
        if at_or_below:
            return at_or_below[0]  # best of the worse ones (list is best-first)
        return stored[-1]

    def window_size(self, window: int, quality_map: dict[tuple[int, int], Quality]) -> int:
        """Total bytes to deliver one window under a quality assignment.

        Requests resolve to stored rungs, so partial stores budget with
        the sizes they will actually ship.
        """
        return sum(
            self.size_of(window, tile, self.resolve(window, tile, quality))
            for tile, quality in quality_map.items()
        )

    def full_sphere_size(self, window: int, quality: Quality) -> int:
        """Bytes for every tile of a window at a single (resolved) quality."""
        return self.window_size(window, {tile: quality for tile in self.grid.tiles()})

    def window_of_time(self, time: float) -> int:
        """The delivery window containing playback time ``time``."""
        if time < 0:
            raise ValueError(f"negative playback time {time}")
        return min(int(time / self.window_duration), self.window_count - 1)

    def window_interval(self, window: int) -> tuple[float, float]:
        """Playback interval ``[start, end)`` of a window."""
        if not 0 <= window < self.window_count:
            raise IndexError(f"window {window} outside [0, {self.window_count})")
        start = window * self.window_duration
        return (start, start + self.window_duration)
