"""The wire client: the session loop over a real socket.

Rather than reimplementing ABR, prediction, and resilience for the
network, the client adapts the wire to the storage read contract:
:class:`RemoteStorage` exposes ``build_manifest``/``read_segment`` over
HTTP, so the unchanged :class:`~repro.core.streamer.Streamer` — and with
it :func:`~repro.core.resilience.read_window_resilient`'s retry →
degrade → skip ladder and the chaos invariants — runs end-to-end against
the server.

Error taxonomy (the raw-``OSError`` leak class this layer exists to
close): every transport failure surfaces as the PR 3 error contract.
Connection refused/reset and malformed responses map to
:class:`TransientSegmentError`; socket timeouts map to
:class:`SegmentReadTimeout`; server-side failures are rebuilt from the
HTTP status (404 → :class:`SegmentNotFoundError`, 409 →
:class:`SegmentCorruptError`, 503 → :class:`TransientSegmentError`,
504 → :class:`SegmentReadTimeout`). Callers written against
``StorageManager`` — above all the resilience layer — therefore need no
wire-specific handling.

Session timing stays on the session's *simulated* bandwidth model even
over the wire: localhost transfer time measures the test host, not the
300 Mb/s link the experiment models. The bytes are real (fetched,
hashed into payloads, cache-accounted on the server); the playback
clock is the model's — which is exactly what makes wire and simulated
QoE reports comparable on the same trace. Real transport latency lands
in the metrics registries on both ends instead.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from time import monotonic, perf_counter
from urllib.parse import urlsplit

from repro.core.errors import (
    SegmentCorruptError,
    SegmentNotFoundError,
    SegmentReadTimeout,
    TransientSegmentError,
)
from repro.core.predictor import PredictionService
from repro.core.storage import checksum_hex
from repro.core.streamer import SessionConfig, Streamer
from repro.obs import MetricsRegistry
from repro.predict.traces import Trace
from repro.stream.dash import Manifest, SegmentKey
from repro.stream.qoe import QoEReport

#: HTTP status → taxonomy error. 429 (shed by admission control) and any
#: unknown 5xx map to :class:`TransientSegmentError` so a shed request is
#: retryable by policy — failover clients back off and try again (or try
#: a sibling replica) instead of treating shedding as fatal.
_STATUS_ERRORS = {
    404: SegmentNotFoundError,
    409: SegmentCorruptError,
    429: TransientSegmentError,
    503: TransientSegmentError,
    504: SegmentReadTimeout,
}


class HttpSegmentClient:
    """A keep-alive HTTP/1.1 client for one segment server.

    One underlying connection, serialized by a lock — concurrent
    sessions each own a client (and therefore a socket) rather than
    multiplexing one. A request that fails on a connection that had
    already served traffic is retried once on a fresh socket before the
    failure is reported: a keep-alive connection the server closed
    between requests is indistinguishable from a real refusal, and
    retrying it is the standard cure.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// servers are supported, got {base_url!r}")
        if not parts.hostname:
            raise ValueError(f"no host in base URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self._lock = threading.Lock()
        self._connection: http.client.HTTPConnection | None = None
        self._served_requests = 0

    # -- transport ------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._served_requests = 0
        return self._connection

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:
                pass
            self._connection = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "HttpSegmentClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self, path: str, method: str = "GET", payload: bytes | None = None
    ) -> tuple[int, dict, bytes]:
        """One request; returns (status, headers, body). All transport
        failures leave as taxonomy errors, never raw OS exceptions."""
        headers = {"Content-Type": "application/json"} if payload is not None else {}
        with self._lock:
            # A connection that already served requests may have been
            # closed by the server's keep-alive policy; one fresh-socket
            # retry distinguishes that from a real fault.
            attempts = 2 if self._served_requests > 0 else 1
            for attempt in range(1, attempts + 1):
                connection = self._connect()
                deadline = monotonic() + self.timeout
                try:
                    connection.request(method, path, body=payload, headers=headers)
                    response = connection.getresponse()
                    body = self._read_body(connection, response, deadline)
                except socket.timeout as error:
                    self._drop_connection()
                    raise SegmentReadTimeout(
                        f"{method} {path} exceeded the {self.timeout:.3f}s budget"
                    ) from error
                except (ConnectionError, http.client.HTTPException, OSError) as error:
                    self._drop_connection()
                    if attempt < attempts:
                        continue
                    raise TransientSegmentError(
                        f"{method} {path} failed in transit: {error}"
                    ) from error
                self._served_requests += 1
                if response.will_close:
                    self._drop_connection()
                return response.status, dict(response.getheaders()), body
        raise AssertionError("unreachable: the retry loop always returns")

    def _read_body(self, connection, response, deadline: float) -> bytes:
        """Drain one response body under the request's *total* deadline.

        A per-recv socket timeout alone cannot catch a slow-loris peer
        that dribbles one byte per interval — every recv succeeds while
        the request as a whole never finishes. Reading incrementally and
        re-arming the socket with the remaining budget bounds the entire
        request by ``timeout`` seconds of wall clock.
        """
        chunks: list[bytes] = []
        while True:
            remaining = deadline - monotonic()
            if remaining <= 0:
                raise socket.timeout(
                    f"response body still arriving at the {self.timeout:.3f}s deadline"
                )
            if connection.sock is not None:
                connection.sock.settimeout(remaining)
            chunk = response.read1(65536)
            if not chunk:
                if response.length:
                    # EOF with Content-Length bytes still owed: a
                    # mid-body disconnect, not a complete response.
                    raise http.client.IncompleteRead(
                        b"".join(chunks), response.length
                    )
                # read1 drains Content-Length without ever marking the
                # response closed; close it explicitly or the next
                # getresponse() on this connection raises
                # ResponseNotReady.
                response.close()
                if connection.sock is not None:
                    connection.sock.settimeout(self.timeout)
                return b"".join(chunks)
            chunks.append(chunk)

    @staticmethod
    def _raise_for_status(status: int, headers: dict, body: bytes, path: str) -> None:
        if status == 200:
            return
        try:
            detail = json.loads(body).get("detail", "")
        except (ValueError, AttributeError):
            detail = body[:200].decode("utf-8", "replace")
        error_name = headers.get("X-Error", "")
        message = f"GET {path} -> {status} {error_name}: {detail}"
        error = _STATUS_ERRORS.get(status, TransientSegmentError)(message)
        # Carry the wire facts for retry policy: the status, and the
        # server's Retry-After hint (seconds) when it shed the request.
        error.status = status
        retry_after = headers.get("Retry-After")
        if retry_after is not None:
            try:
                error.retry_after = float(retry_after)
            except ValueError:
                pass
        raise error

    # -- endpoints ------------------------------------------------------------

    def fetch_manifest(self, name: str) -> Manifest:
        path = f"/manifest/{name}"
        status, headers, body = self._request(path)
        self._raise_for_status(status, headers, body, path)
        try:
            return Manifest.from_json(json.loads(body))
        except (ValueError, KeyError) as error:
            raise TransientSegmentError(
                f"malformed manifest from GET {path}: {error}"
            ) from error

    def fetch_segment(self, name: str, key: SegmentKey) -> bytes:
        path = f"/segment/{name}/{key.to_path()}"
        status, headers, body = self._request(path)
        self._raise_for_status(status, headers, body, path)
        expected = headers.get("X-Checksum")
        if expected is not None and checksum_hex(body) != expected.strip().lower():
            # The body the server hashed is not the body that arrived —
            # transport damage. Transient (not SegmentCorruptError: that
            # would read as an authoritative server-side verdict and stop
            # failover) so the caller retries or tries a sibling replica.
            raise TransientSegmentError(
                f"GET {path} -> 200 but the body fails its X-Checksum "
                f"({checksum_hex(body)} != {expected.strip().lower()})"
            )
        return body

    def fetch_metrics(self, local: bool = False) -> dict:
        """The server's metrics snapshot. In multi-process mode the
        default ``/metrics`` is the fleet-merged view; ``local=True``
        asks the answering worker for its own snapshot only."""
        path = "/metrics/local" if local else "/metrics"
        status, headers, body = self._request(path)
        self._raise_for_status(status, headers, body, path)
        return json.loads(body)

    def fetch_control(self) -> dict:
        """The server's live control-plane state (``GET /control``)."""
        status, headers, body = self._request("/control")
        self._raise_for_status(status, headers, body, "/control")
        return json.loads(body)

    def post_control(self, route: str, payload: dict) -> dict:
        """Apply a control payload (``POST /control/<route>``); a 409
        stale-version refusal surfaces as ``StalePlanError`` rather than
        the segment taxonomy's corrupt-read mapping."""
        path = f"/control/{route}"
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        status, headers, response = self._request(path, method="POST", payload=body)
        if status == 409:
            from repro.control.actuators import StalePlanError

            raise StalePlanError(response.decode("utf-8", "replace"))
        self._raise_for_status(status, headers, response, path)
        return json.loads(response)

    def healthy(self) -> bool:
        try:
            status, _, _ = self._request("/healthz")
        except TransientSegmentError:
            return False
        return status == 200


class RemoteStorage:
    """The storage read contract, backed by a segment server.

    Duck-types the two methods the session loop needs —
    ``build_manifest`` and ``read_segment`` — so :class:`Streamer` and
    :func:`read_window_resilient` run against the wire unchanged.
    Manifests are fetched once per name and cached (they are immutable
    per version, like the simulated path's single build per session).
    """

    def __init__(
        self, client: HttpSegmentClient, registry: MetricsRegistry | None = None
    ) -> None:
        self.client = client
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._manifests: dict[str, Manifest] = {}
        self._latency = self.metrics.histogram(
            "client.request_seconds", "wall time per wire segment fetch"
        )
        self._bytes = self.metrics.counter(
            "client.bytes_received", "segment bytes fetched over the wire"
        )

    def build_manifest(self, name: str) -> Manifest:
        manifest = self._manifests.get(name)
        if manifest is None:
            manifest = self.client.fetch_manifest(name)
            self._manifests[name] = manifest
        return manifest

    def read_segment(
        self,
        name: str,
        gop: int,
        tile: tuple[int, int],
        quality,
        version: int | None = None,
    ) -> bytes:
        if version is not None:
            raise ValueError("the wire serves only the latest committed version")
        started = perf_counter()
        data = self.client.fetch_segment(name, SegmentKey(gop, tile, quality))
        self._latency.observe(perf_counter() - started, video=name)
        self._bytes.inc(len(data), video=name)
        return data


def serve_session(
    base_url,
    name: str,
    trace: Trace,
    config: SessionConfig,
    registry: MetricsRegistry | None = None,
    prediction: PredictionService | None = None,
    failover=None,
    shard_map=None,
    node_urls: dict[str, str] | None = None,
) -> QoEReport:
    """Run one complete wire session against a segment server (or tier).

    The full simulated-path session loop (prediction, ABR, resilient
    window assembly, playback accounting) with every segment fetched
    over HTTP. ``prediction`` carries trained Markov priors when the
    caller has them; omitted, an untrained service is used (fine for
    every predictor except ``markov``).

    ``base_url`` is one server's URL, or a list of replica URLs — the
    latter streams through a
    :class:`~repro.serve.failover.FailoverSegmentClient` (circuit
    breakers, retry budget, ``Retry-After`` backoff), tuned by the
    optional ``failover`` :class:`~repro.serve.failover.FailoverConfig`.

    Against a *sharded* tier, pass the tier's ``shard_map``
    (:class:`~repro.serve.placement.ShardMap`) and ``node_urls`` (logical
    node id → base URL) so the failover client routes each segment to
    its owners first; without them the client still streams (servers
    peer-fetch non-owned segments) and adopts any map the manifest
    publishes.
    """
    if config.evaluate_quality:
        raise ValueError(
            "evaluate_quality needs decoded window access and is not "
            "available over the wire; run the PSNR probe on the server side"
        )
    metrics = registry if registry is not None else MetricsRegistry()
    if isinstance(base_url, str) and failover is None and shard_map is None:
        client = HttpSegmentClient(base_url)
    else:
        from repro.serve.failover import FailoverSegmentClient

        client = FailoverSegmentClient(
            base_url,
            config=failover,
            registry=metrics,
            shard_map=shard_map,
            node_urls=node_urls,
        )
    with client:
        storage = RemoteStorage(client, registry=metrics)
        service = prediction if prediction is not None else PredictionService(registry=metrics)
        streamer = Streamer(storage, service, registry=metrics)
        return streamer.serve(name, trace, config)
