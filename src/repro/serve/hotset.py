"""Hot-segment pinning: the serve tier's RAM fast path.

Viewing behaviour over tiled 360 content is Zipf-skewed — most requests
land on a small equatorial hot set — so a byte-budgeted pin layer in
front of the storage read path pays for itself quickly. A pinned segment
is frozen into its *wire form* at pin time: the full immutable header
block (one variant per ``Connection`` disposition) plus a ``memoryview``
of the payload, so serving a hit is two ``writer.write`` calls straight
off the event loop — no executor hop, no cache lock, no per-request
``bytes`` concatenation.

The header block built here must stay byte-identical to what
``_Response(200, body).encode(keep_alive)`` produces — the differential
tests in ``tests/test_serve_hotset.py`` pin that equivalence.

Admission:

* :meth:`HotSet.pin` pins explicitly (startup prewarm from the
  popularity model, see ``SegmentServer.prewarm_pins``).
* :meth:`HotSet.record` counts cold-path hits and promotes a path once
  it reaches ``threshold`` requests — the runtime feedback loop.

Eviction is colder-first and deterministic: a candidate may displace
pinned entries only when their heat is strictly lower than the
candidate's, so a prewarmed hot set is not churned by one-off requests.

Heat is one number with one definition — :meth:`HotSet.heat` — shared
by eviction, the control plane's pre-warm ranking, and anything else
that asks "how hot is this path": *base heat* (set by a control plan or
prewarm, the predicted component) plus *observed hits* (pinned-entry
lookups, or cold-path candidate counts). Before this accessor existed,
runtime promotion counted raw hits while prewarm ranked on popularity
weights, and the two orderings could disagree about which segment
deserved the RAM; now a planner decision and an eviction decision read
the same scale.

Coherence contract: pinning sits *above* the storage layer's version
fencing. Segment files are immutable per version, so pinned bytes can
never silently rot — but an operator who commits a new version (or
drops a video) while serving must call :meth:`unpin_prefix` for the
affected paths, exactly as the delivery URL space changes.
"""

from __future__ import annotations

from repro.core.storage import checksum_hex
from repro.obs import MetricsRegistry


def _header_block(body_length: int, keep_alive: bool, checksum: str = "") -> bytes:
    """The exact bytes ``_Response.encode`` emits for a 200 segment hit.

    ``checksum`` is the body's :func:`~repro.core.storage.checksum_hex`;
    segment responses always carry it (the client's end-to-end integrity
    check), other 200s leave it empty and emit no header.
    """
    checksum_line = f"X-Checksum: {checksum}\r\n" if checksum else ""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/octet-stream\r\n"
        f"Content-Length: {body_length}\r\n"
        f"{checksum_line}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("ascii")


class PinnedSegment:
    """One segment frozen into its wire buffers."""

    __slots__ = ("path", "body", "_view", "_keep", "_close", "hits")

    status = 200

    def __init__(self, path: str, body: bytes) -> None:
        self.path = path
        self.body = bytes(body)  # no-copy when already bytes
        self._view = memoryview(self.body)
        # The checksum is frozen with the header block: one hash at pin
        # time, zero per-hit cost, and the wire stays byte-identical to
        # the cold path (which hashes the same body per response).
        checksum = checksum_hex(self.body)
        self._keep = (_header_block(len(self.body), True, checksum), self._view)
        self._close = (_header_block(len(self.body), False, checksum), self._view)
        self.hits = 0

    @property
    def body_length(self) -> int:
        return len(self.body)

    def parts(self, keep_alive: bool) -> tuple:
        return self._keep if keep_alive else self._close


class HotSet:
    """A byte-budgeted map of request path → :class:`PinnedSegment`.

    Single-threaded by design: every call happens on the server's event
    loop (lookup/record per request, pin at startup prewarm), so there
    are no locks on the hit path — that absence is the point.
    """

    def __init__(
        self,
        budget_bytes: int,
        threshold: int,
        registry: MetricsRegistry,
        max_tracked: int = 4096,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError(f"pin budget must be >= 0, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self.threshold = max(1, int(threshold))
        self.max_tracked = max_tracked
        self.bytes_pinned = 0
        self._entries: dict[str, PinnedSegment] = {}
        self._counts: dict[str, int] = {}
        self._base_heat: dict[str, int] = {}
        self._hits = registry.counter(
            "serve.pin_hits", "requests served from the pinned hot set"
        ).labels()
        self._promotions = registry.counter(
            "serve.pin_promotions", "segments promoted into the hot set"
        ).labels()
        self._evictions = registry.counter(
            "serve.pin_evictions", "pinned segments evicted for hotter ones"
        ).labels()
        self._rejects = registry.counter(
            "serve.pin_rejects", "pin attempts refused (budget or colder)"
        ).labels()
        self._gauge_entries = registry.gauge("serve.pin_entries", "pinned segments")
        self._gauge_bytes = registry.gauge("serve.pin_bytes", "pinned payload bytes")

    @property
    def enabled(self) -> bool:
        return self.budget_bytes > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def paths(self) -> list[str]:
        """Every currently pinned path — the shard-map coherence pass
        walks this to decide which pins a topology change invalidates."""
        return list(self._entries)

    # -- heat: the one ordering everyone shares --------------------------------

    def heat(self, path: str) -> int:
        """This path's heat: base heat (predicted, set by a control plan
        or prewarm) plus observed activity (pinned hits, or cold-path
        candidate count). Eviction, the controller's pre-warm ranking,
        and operator introspection all read this one number."""
        base = self._base_heat.get(path, 0)
        entry = self._entries.get(path)
        if entry is not None:
            return base + entry.hits
        return base + self._counts.get(path, 0)

    def set_base_heat(self, heats: dict[str, int]) -> None:
        """Replace the predicted-heat layer (a control plan's pre-warm
        ranking). Replacement, not merge: a plan that stops predicting a
        path withdraws its protection, so stale predictions age out on
        the next plan instead of accreting forever."""
        self._base_heat = {path: int(heat) for path, heat in heats.items()}

    def set_budget(self, budget_bytes: int) -> None:
        """Resize the pin budget at runtime; shrinking evicts coldest
        first until the pinned bytes fit again."""
        if budget_bytes < 0:
            raise ValueError(f"pin budget must be >= 0, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        while self.bytes_pinned > self.budget_bytes:
            victim = min(
                self._entries.values(), key=lambda e: (self.heat(e.path), e.path)
            )
            self._remove(victim.path)
            self._evictions.inc()
        self._update_gauges()

    # -- hit path -------------------------------------------------------------

    def lookup(self, path: str) -> PinnedSegment | None:
        entry = self._entries.get(path)
        if entry is not None:
            entry.hits += 1
            self._hits.inc()
        return entry

    # -- admission ------------------------------------------------------------

    def record(self, path: str, body: bytes) -> bool:
        """Count one cold-path serve; promote once :meth:`heat` (base
        heat + observed count) reaches ``threshold`` — a path the
        planner already predicts hot earns its pin in fewer hits."""
        if not self.enabled or path in self._entries:
            return False
        count = self._counts.pop(path, 0) + 1
        if count + self._base_heat.get(path, 0) >= self.threshold:
            return self.pin(path, body, heat=count)
        if len(self._counts) >= self.max_tracked:
            # Cheap aging: drop all candidate counts instead of keeping
            # an unbounded (or LRU-ordered) tracking structure. Genuinely
            # hot paths re-accumulate within a few requests.
            self._counts.clear()
        self._counts[path] = count
        return False

    def pin(self, path: str, body: bytes, heat: int = 0) -> bool:
        """Pin ``path`` if it fits the budget, evicting strictly-colder
        entries; returns whether the path is pinned afterwards.

        ``heat`` is the candidate's claimed heat (promotion count, or a
        control plan's predicted heat); its effective heat is at least
        :meth:`heat` of the path itself, so a prediction and an observed
        streak compound rather than compete.
        """
        if not self.enabled:
            return False
        if path in self._entries:
            return True
        need = len(body)
        if need > self.budget_bytes:
            self._rejects.inc()
            return False
        candidate = max(int(heat), self.heat(path))
        while self.bytes_pinned + need > self.budget_bytes:
            victim = min(
                self._entries.values(), key=lambda e: (self.heat(e.path), e.path)
            )
            if self.heat(victim.path) >= candidate:
                self._rejects.inc()
                return False
            self._remove(victim.path)
            self._evictions.inc()
        entry = PinnedSegment(path, body)
        self._entries[path] = entry
        self.bytes_pinned += entry.body_length
        self._promotions.inc()
        self._update_gauges()
        return True

    # -- invalidation ---------------------------------------------------------

    def unpin_prefix(self, prefix: str) -> int:
        """Drop every pinned entry (and candidate count) under ``prefix``
        — the coherence hook for reingest/drop while serving."""
        doomed = [path for path in self._entries if path.startswith(prefix)]
        for path in doomed:
            self._remove(path)
        for path in [p for p in self._counts if p.startswith(prefix)]:
            del self._counts[path]
        for path in [p for p in self._base_heat if p.startswith(prefix)]:
            del self._base_heat[path]
        self._update_gauges()
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._counts.clear()
        self.bytes_pinned = 0
        self._update_gauges()

    def _remove(self, path: str) -> None:
        entry = self._entries.pop(path)
        self.bytes_pinned -= entry.body_length

    def _update_gauges(self) -> None:
        self._gauge_entries.set(len(self._entries))
        self._gauge_bytes.set(self.bytes_pinned)
