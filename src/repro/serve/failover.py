"""Replicated delivery: client-side failover over N segment servers.

One :class:`HttpSegmentClient` talks to one server; a production headset
talks to a *tier* — several replicas serving the same catalog — and must
keep streaming when one crashes, sheds, or melts down. This module is
that client-side policy layer, built from three small, separately
testable pieces:

* :class:`CircuitBreaker` — per-replica health state. Closed (traffic
  flows) → open after ``failure_threshold`` *consecutive* taxonomy
  errors (traffic stops) → half-open after ``reset_timeout`` (exactly
  one probe request is admitted) → closed on probe success, open again
  on probe failure. Transitions are recorded, and per incident they are
  monotone: closed→open→half_open→{closed | open} — the chaos scenario
  runner asserts this invariant.
* :class:`RetryBudget` — a global token bucket bounding how many *extra*
  attempts (failovers, retries) the whole client may spend. Every
  success earns ``retry_refill`` tokens (capped), every failover spends
  one; when the bucket is dry the client fails fast with the last error
  instead of amplifying a storm — N clients retrying 3× against a
  struggling tier is how overloads become outages.
* :class:`ReplicaSet` — deterministic, health-driven selection. Closed
  replicas first (rotated round-robin so load spreads), then half-open
  probes, then — only when nothing healthier exists — open replicas, so
  a fully-dark tier still probes its way back to life. A replica that
  answered ``429``/``503`` with ``Retry-After`` is deprioritised until
  the hint expires.

:class:`FailoverSegmentClient` assembles them behind the *same* duck
type as :class:`HttpSegmentClient` (``fetch_manifest`` /
``fetch_segment`` / ``fetch_metrics`` / ``healthy`` / ``close``), so
:class:`~repro.serve.client.RemoteStorage`, the streamers, and
:func:`~repro.core.resilience.read_window_resilient` run over a replica
set unchanged. Every failure leaves as the PR 3 error taxonomy — never a
raw ``OSError``.

Optionally, ``hedge_delay`` arms *hedged requests* for tail latency: if
the primary replica hasn't answered a segment fetch within the delay, a
second request races on the next-best replica and the first result wins
(segment bytes are immutable, so duplicated reads are safe).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.errors import (
    SegmentNotFoundError,
    TransientSegmentError,
)
from repro.obs import MetricsRegistry
from repro.serve.client import HttpSegmentClient
from repro.stream.dash import Manifest, SegmentKey

#: Circuit states, in incident order.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

#: The legal circuit transitions; anything else is a bug the chaos
#: runner's ``circuit_monotone`` invariant exists to catch.
LEGAL_TRANSITIONS = frozenset(
    {
        (CLOSED, OPEN),
        (OPEN, HALF_OPEN),
        (HALF_OPEN, CLOSED),
        (HALF_OPEN, OPEN),
    }
)


@dataclass(frozen=True)
class FailoverConfig:
    """Tunables for one :class:`FailoverSegmentClient`."""

    failure_threshold: int = 3  # consecutive errors before a breaker opens
    reset_timeout: float = 1.0  # seconds open before a half-open probe
    retry_budget: float = 16.0  # token bucket capacity for extra attempts
    retry_refill: float = 0.1  # tokens earned per successful request
    hedge_delay: float | None = None  # arm hedged segment fetches
    request_timeout: float = 10.0  # per-replica HTTP client timeout
    honor_retry_after: bool = True
    max_retry_after: float = 30.0  # cap on honored Retry-After hints
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {self.reset_timeout}")
        if self.retry_budget < 1:
            raise ValueError(f"retry_budget must be >= 1, got {self.retry_budget}")
        if self.retry_refill < 0:
            raise ValueError(f"retry_refill must be >= 0, got {self.retry_refill}")
        if self.hedge_delay is not None and self.hedge_delay < 0:
            raise ValueError(f"hedge_delay must be >= 0, got {self.hedge_delay}")
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.max_retry_after < 0:
            raise ValueError(f"max_retry_after must be >= 0, got {self.max_retry_after}")


class CircuitBreaker:
    """Per-replica circuit state with a recorded transition trail."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.transitions: list[tuple[str, str]] = []

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, to: str) -> None:
        # Callers hold the lock. Every edge lands in the trail so the
        # monotone-per-incident invariant is checkable after the fact.
        if self._state != to:
            self.transitions.append((self._state, to))
            self._state = to

    def allow(self) -> bool:
        """May a request go to this replica right now?

        Open breakers become half-open once ``reset_timeout`` has
        elapsed, and half-open admits exactly one in-flight probe.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._transition(HALF_OPEN)
                self._probe_inflight = True
                return True
            # Half-open: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_inflight = False
            if self._state == HALF_OPEN:
                # The probe failed: the incident continues.
                self._opened_at = self._clock()
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)


class RetryBudget:
    """A token bucket bounding a client's *extra* attempts globally.

    The first attempt of every request is free; each failover or retry
    spends one token. Successes earn ``refill`` tokens back (capped at
    ``capacity``), so a mostly-healthy tier never exhausts the budget,
    while a storm drains it and forces fail-fast — retries must not
    amplify an outage.
    """

    def __init__(self, capacity: float = 16.0, refill: float = 0.1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if refill < 0:
            raise ValueError(f"refill must be >= 0, got {refill}")
        self.capacity = float(capacity)
        self.refill = float(refill)
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self.spent = 0
        self.denied = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self) -> bool:
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    def earn(self) -> None:
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.refill)


@dataclass
class Replica:
    """One base URL plus its client, breaker, and backoff state."""

    url: str
    client: HttpSegmentClient
    breaker: CircuitBreaker
    backoff_until: float = 0.0  # honored Retry-After deadline (clock domain)
    requests: int = 0
    failures: int = 0

    def to_json(self) -> dict:
        return {
            "url": self.url,
            "state": self.breaker.state,
            "requests": self.requests,
            "failures": self.failures,
            "transitions": [list(edge) for edge in self.breaker.transitions],
        }


class ReplicaSet:
    """Deterministic health-driven ordering over a set of replicas."""

    def __init__(
        self, replicas: Sequence[Replica], clock: Callable[[], float] = time.monotonic
    ) -> None:
        if not replicas:
            raise ValueError("a replica set needs at least one base URL")
        self.replicas = list(replicas)
        self._clock = clock
        self._lock = threading.Lock()
        self._rotation = 0

    def __len__(self) -> int:
        return len(self.replicas)

    def candidates(self) -> list[Replica]:
        """Every replica, best first.

        Three tiers: closed breakers not under a ``Retry-After`` backoff
        (rotated round-robin across calls so load spreads), then closed
        ones still backing off, then open/half-open ones — kept last but
        *kept*, so a fully-dark tier still gets probed back to health.
        """
        with self._lock:
            offset = self._rotation
            self._rotation += 1
        now = self._clock()
        ready: list[Replica] = []
        backing_off: list[Replica] = []
        unhealthy: list[Replica] = []
        for replica in self.replicas:
            if replica.breaker.state != CLOSED:
                unhealthy.append(replica)
            elif replica.backoff_until > now:
                backing_off.append(replica)
            else:
                ready.append(replica)
        if ready:
            pivot = offset % len(ready)
            ready = ready[pivot:] + ready[:pivot]
        return ready + backing_off + unhealthy

    def to_json(self) -> dict:
        return {"replicas": [replica.to_json() for replica in self.replicas]}


class FailoverSegmentClient:
    """The :class:`HttpSegmentClient` duck type over N replicas.

    Spreads reads across every healthy replica, fails over on taxonomy
    errors (bounded by the shared :class:`RetryBudget`), honors
    ``Retry-After`` backoff hints, opens a circuit per replica after
    consecutive failures, and optionally hedges slow segment fetches.
    ``SegmentNotFoundError``/``SegmentCorruptError`` do **not** fail
    over: the replica answered, and the catalog is replicated — a rung
    that is gone on one replica is gone on all of them; the resilience
    ladder above decides what to do.
    """

    def __init__(
        self,
        base_urls: Sequence[str] | str,
        config: FailoverConfig | None = None,
        registry: MetricsRegistry | None = None,
        client_factory: Callable[..., HttpSegmentClient] = HttpSegmentClient,
        shard_map=None,
        node_urls: dict[str, str] | None = None,
    ) -> None:
        if isinstance(base_urls, str):
            base_urls = [base_urls]
        self.config = config or FailoverConfig()
        self.metrics = registry if registry is not None else MetricsRegistry()
        clock = self.config.clock
        self.replicas = ReplicaSet(
            [
                Replica(
                    url=url,
                    client=client_factory(url, timeout=self.config.request_timeout),
                    breaker=CircuitBreaker(
                        self.config.failure_threshold,
                        self.config.reset_timeout,
                        clock=clock,
                    ),
                )
                for url in base_urls
            ],
            clock=clock,
        )
        self.budget = RetryBudget(self.config.retry_budget, self.config.retry_refill)
        self._hedge_pool: ThreadPoolExecutor | None = None
        self._hedge_lock = threading.Lock()
        self._requests = self.metrics.counter(
            "failover.requests", "requests issued through the failover client"
        )
        self._failovers = self.metrics.counter(
            "failover.failovers", "requests retried on a sibling replica"
        )
        self._hedges = self.metrics.counter(
            "failover.hedges", "hedged segment fetches launched"
        )
        self._exhausted = self.metrics.counter(
            "failover.budget_exhausted", "requests failed fast on a dry retry budget"
        )
        # Shard-aware routing (see repro.serve.placement): the map orders
        # candidates owners-first; everything below it — breakers, budget,
        # backoff — is unchanged, so losing the map only costs locality.
        self.shard_map = shard_map
        self._node_urls = dict(node_urls) if node_urls else {}
        self._replica_urls = frozenset(replica.url for replica in self.replicas.replicas)
        self._shard_routed = self.metrics.counter(
            "failover.shard_routed", "segment requests ordered owners-first"
        ).labels()
        self._shard_unroutable = self.metrics.counter(
            "failover.shard_unroutable",
            "segment requests whose owners map to no configured replica",
        ).labels()
        self._shard_adopted = self.metrics.counter(
            "failover.shard_map_adopted", "shard maps adopted from manifests"
        ).labels()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        for replica in self.replicas.replicas:
            replica.client.close()
        with self._hedge_lock:
            if self._hedge_pool is not None:
                self._hedge_pool.shutdown(wait=False, cancel_futures=True)
                self._hedge_pool = None

    def __enter__(self) -> "FailoverSegmentClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the failover loop ----------------------------------------------------

    def _apply_backoff(self, replica: Replica, error: BaseException) -> None:
        if not self.config.honor_retry_after:
            return
        hint = getattr(error, "retry_after", None)
        if hint is None:
            return
        hint = min(float(hint), self.config.max_retry_after)
        replica.backoff_until = max(
            replica.backoff_until, self.config.clock() + hint
        )

    def _call(self, replica: Replica, op: Callable[[HttpSegmentClient], object]):
        replica.requests += 1
        try:
            result = op(replica.client)
        except TransientSegmentError as error:
            replica.failures += 1
            replica.breaker.record_failure()
            self._apply_backoff(replica, error)
            raise
        except SegmentNotFoundError:
            # The replica is up and answered authoritatively; failing
            # over cannot produce the bytes. Healthy for the breaker.
            replica.breaker.record_success()
            raise
        replica.breaker.record_success()
        self.budget.earn()
        return result

    def _owner_urls(self, name: str, key: SegmentKey) -> frozenset:
        """The replica URLs owning one segment under the shard map.

        Owner node ids resolve through ``node_urls`` (falling back to the
        id itself, for tiers whose node ids *are* URLs) and are kept only
        when they name a configured replica — a map mentioning nodes this
        client cannot reach must not stop it from streaming.
        """
        if self.shard_map is None:
            return frozenset()
        owners = self.shard_map.owners(name, key)
        urls = frozenset(
            self._node_urls.get(node, node) for node in owners
        ) & self._replica_urls
        if urls:
            self._shard_routed.inc()
        else:
            self._shard_unroutable.inc()
        return urls

    def _ordered_candidates(self, prefer: frozenset) -> list[Replica]:
        """Health-tiered candidates, owners first *within* each tier.

        A ready non-owner outranks a broken owner: placement is a
        locality hint layered on the health ordering, never an override
        of it — otherwise a dead owner would eat budget tokens that a
        healthy sibling (which can peer-fetch the bytes) would serve.
        """
        candidates = self.replicas.candidates()
        if not prefer:
            return candidates
        now = self.config.clock()

        def tier(replica: Replica) -> tuple[int, int]:
            ready = (
                replica.breaker.state == CLOSED and replica.backoff_until <= now
            )
            return (0 if ready else 1, 0 if replica.url in prefer else 1)

        return sorted(candidates, key=tier)  # stable: keeps rotation order

    def _maybe_adopt(self, manifest: Manifest) -> None:
        """Adopt a shard map published in a manifest.

        Only strictly newer versions replace a held map (stale manifests
        must never roll routing backwards); a client with no map adopts
        whatever the tier publishes.
        """
        published = getattr(manifest, "shard_map", None)
        if published is None:
            return
        if self.shard_map is not None and published.version <= self.shard_map.version:
            return
        self.shard_map = published
        self._shard_adopted.inc()

    def _fetch(
        self,
        what: str,
        op: Callable[[HttpSegmentClient], object],
        prefer: frozenset = frozenset(),
    ):
        """Run ``op`` against the best replica, failing over on
        transient errors until the candidates or the budget run out."""
        self._requests.inc(endpoint=what)
        last_error: TransientSegmentError | None = None
        attempted = 0
        for replica in self._ordered_candidates(prefer):
            if attempted > 0 and not self.budget.try_spend():
                self._exhausted.inc()
                break
            # Non-closed circuits admit at most one probe at a time; a
            # refused probe slot still cost its token — conservatively
            # charging skips keeps a dark tier from free-spinning.
            if replica.breaker.state != CLOSED and not replica.breaker.allow():
                continue
            if attempted > 0:
                self._failovers.inc()
            attempted += 1
            try:
                return self._call(replica, op)
            except TransientSegmentError as error:
                last_error = error
                continue
        if last_error is not None:
            raise last_error
        raise TransientSegmentError(
            f"no replica admitted the {what} request "
            f"({len(self.replicas)} configured, all circuits open)"
        )

    # -- HttpSegmentClient duck type ------------------------------------------

    def fetch_manifest(self, name: str) -> Manifest:
        manifest = self._fetch("manifest", lambda client: client.fetch_manifest(name))
        self._maybe_adopt(manifest)
        return manifest

    def fetch_segment(self, name: str, key: SegmentKey) -> bytes:
        prefer = self._owner_urls(name, key)
        if self.config.hedge_delay is None:
            return self._fetch("segment", lambda c: c.fetch_segment(name, key), prefer)
        return self._fetch_hedged(name, key, prefer)

    def fetch_metrics(self) -> dict:
        return self._fetch("metrics", lambda client: client.fetch_metrics())

    def healthy(self) -> bool:
        """True when at least one replica answers its health probe.

        Also the *active* health check: every probe outcome feeds the
        breakers, so calling this re-discovers replicas that recovered
        while unloaded.
        """
        alive = False
        for replica in self.replicas.replicas:
            if not replica.breaker.allow():
                continue
            if replica.client.healthy():
                replica.breaker.record_success()
                alive = True
            else:
                replica.breaker.record_failure()
        return alive

    # -- hedging --------------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        with self._hedge_lock:
            if self._hedge_pool is None:
                self._hedge_pool = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="hedge"
                )
            return self._hedge_pool

    def _fetch_hedged(
        self, name: str, key: SegmentKey, prefer: frozenset = frozenset()
    ) -> bytes:
        """Primary fetch, raced against one hedge if it dawdles.

        Hedges use a *separate* client per replica already (each replica
        owns its connection), so the race never shares a socket. The
        loser's bytes are discarded — segment payloads are immutable.
        """
        candidates = [
            replica
            for replica in self._ordered_candidates(prefer)
            if replica.breaker.state == CLOSED
        ]
        if len(candidates) < 2:
            return self._fetch("segment", lambda c: c.fetch_segment(name, key), prefer)
        self._requests.inc(endpoint="segment")
        primary, backup = candidates[0], candidates[1]
        pool = self._pool()
        first = pool.submit(self._call, primary, lambda c: c.fetch_segment(name, key))
        done, _ = wait({first}, timeout=self.config.hedge_delay)
        if first in done:
            try:
                return first.result()
            except SegmentNotFoundError:
                raise  # authoritative; hedging cannot produce the bytes
            except TransientSegmentError:
                # Failed fast, before the hedge would arm: plain
                # failover semantics on what remains of the tier.
                if not self.budget.try_spend():
                    self._exhausted.inc()
                    raise
                self._failovers.inc()
                return self._call(backup, lambda c: c.fetch_segment(name, key))
        if not self.budget.try_spend():
            self._exhausted.inc()
            return first.result()
        self._hedges.inc()
        second = pool.submit(self._call, backup, lambda c: c.fetch_segment(name, key))
        pending = {first, second}
        last_error: BaseException | None = None
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    return future.result()
                except (TransientSegmentError, SegmentNotFoundError) as error:
                    last_error = error
        assert last_error is not None
        raise last_error

    # -- control plane --------------------------------------------------------

    def broadcast_control(self, plan) -> dict:
        """Push one versioned control plan to every configured replica —
        the controller's fan-out when it holds replica URLs instead of
        in-process handles.

        Best-effort per replica: an unreachable node is reported, not
        fatal (it will refuse or accept the next plan when it returns,
        and version monotonicity makes late application safe). Only a
        *unanimous* stale-version refusal re-raises — that means another
        controller is ahead of this one.
        """
        from repro.control.actuators import HttpActuator, StalePlanError

        applied: dict[str, dict] = {}
        refused: dict[str, str] = {}
        errors: dict[str, str] = {}
        for replica in self.replicas.replicas:
            actuator = HttpActuator(
                replica.url, timeout=self.config.request_timeout
            )
            try:
                applied[replica.url] = actuator.apply(plan)
            except StalePlanError as error:
                refused[replica.url] = str(error)
            except Exception as error:  # noqa: BLE001 - per-replica report
                errors[replica.url] = f"{type(error).__name__}: {error}"
        if refused and not applied:
            raise StalePlanError(next(iter(refused.values())))
        return {"applied": applied, "refused": refused, "errors": errors}

    # -- introspection --------------------------------------------------------

    def breaker_transitions(self) -> dict[str, list[tuple[str, str]]]:
        return {
            replica.url: list(replica.breaker.transitions)
            for replica in self.replicas.replicas
        }

    def stats(self) -> dict:
        return {
            "replicas": [replica.to_json() for replica in self.replicas.replicas],
            "budget": {
                "tokens": self.budget.tokens,
                "spent": self.budget.spent,
                "denied": self.budget.denied,
            },
        }
