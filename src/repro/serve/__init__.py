"""Network delivery: the asyncio segment server and its wire client.

This package is the repo's network-facing surface — the piece of the
VisualCloud demo that actually ships per-tile, per-quality segments to
many concurrent headsets. The server (:mod:`repro.serve.server`) exposes
a stored catalog over HTTP; the client (:mod:`repro.serve.client`) runs
the unchanged ABR + predictor session loop against the real socket by
adapting the wire to the storage read contract.
"""

from repro.serve.client import HttpSegmentClient, RemoteStorage, serve_session
from repro.serve.server import SegmentServer, ServerConfig, ServerHandle, start_server

__all__ = [
    "HttpSegmentClient",
    "RemoteStorage",
    "SegmentServer",
    "ServerConfig",
    "ServerHandle",
    "serve_session",
    "start_server",
]
