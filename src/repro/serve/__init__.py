"""Network delivery: the asyncio segment server and its wire client.

This package is the repo's network-facing surface — the piece of the
VisualCloud demo that actually ships per-tile, per-quality segments to
many concurrent headsets. The server (:mod:`repro.serve.server`) exposes
a stored catalog over HTTP with overload shedding; the client
(:mod:`repro.serve.client`) runs the unchanged ABR + predictor session
loop against the real socket by adapting the wire to the storage read
contract; and :mod:`repro.serve.failover` spreads that client over a
replicated tier with circuit breakers, a retry budget, ``Retry-After``
backoff, and optional hedged requests.

Sharded delivery (:mod:`repro.serve.placement`): a consistent-hash
:class:`ShardMap` assigns every segment to ``replication_factor`` owner
nodes, servers peer-fetch non-owned segments from siblings, and the
failover client routes owners-first — see DESIGN.md "Sharded delivery".
"""

from repro.serve.client import HttpSegmentClient, RemoteStorage, serve_session
from repro.serve.failover import (
    CircuitBreaker,
    FailoverConfig,
    FailoverSegmentClient,
    ReplicaSet,
    RetryBudget,
)
from repro.serve.hotset import HotSet, PinnedSegment
from repro.serve.multiproc import MultiProcessServerHandle
from repro.serve.placement import HashRing, ShardMap, materialize_shards, stable_hash
from repro.serve.server import (
    SegmentServer,
    ServerConfig,
    ServerHandle,
    ServerStartupError,
    start_server,
)

__all__ = [
    "CircuitBreaker",
    "FailoverConfig",
    "FailoverSegmentClient",
    "HashRing",
    "HotSet",
    "HttpSegmentClient",
    "MultiProcessServerHandle",
    "PinnedSegment",
    "RemoteStorage",
    "ReplicaSet",
    "RetryBudget",
    "SegmentServer",
    "ServerConfig",
    "ServerHandle",
    "ServerStartupError",
    "ShardMap",
    "materialize_shards",
    "serve_session",
    "stable_hash",
    "start_server",
]
