"""The multi-process serve tier: N workers, one listening port.

A single asyncio process is ultimately GIL-bound; past its ceiling the
only way up on one box is more processes. ``ServerConfig(processes=N)``
forks N workers that *share one listening port*:

* **SO_REUSEPORT** (Linux, the normal case): every worker binds its own
  listening socket to the same (host, port); the kernel load-balances
  incoming connections across them. The parent holds a bound placeholder
  socket only long enough to claim an ephemeral port atomically.
* **Fallback** (no SO_REUSEPORT, fork start method available): the
  parent binds and listens once, and every forked worker accepts on the
  inherited socket — coarser balancing, same contract.

Each worker is a full :class:`~repro.serve.server.SegmentServer` over a
*fresh* :class:`~repro.core.storage.StorageManager` opened from the
catalog root after the fork — no locks, caches, or thread pools cross
the fork boundary. Segment files are immutable per version, so workers
need no cross-process coherence.

Observability stays single-pane: each worker runs a second listener on
an ephemeral "admin" port, and ``/metrics`` on any worker fetches every
sibling's ``/metrics/local`` (snapshot with histogram sample windows)
and merges them via :func:`repro.obs.merge_snapshots` — counters sum,
quantiles pool.

Control runs over one duplex pipe per worker: the worker reports
``("ready", admin_port)`` or ``("error", detail)`` at startup, the
parent distributes the peer list, and ``stop()`` fans out ``("stop",)``
so every worker drains gracefully (same drain-then-close semantics as a
single process) before the parent joins — with terminate/kill
escalation bounded by the drain budget. A worker that sees its pipe
close (parent died) shuts itself down rather than lingering orphaned.

The handle exposes the exact :class:`ServerHandle` surface —
``address``, ``base_url``, ``stop()``, context manager — so the bench
driver, the failover client, and the chaos proxy stack on top of a
worker fleet unchanged.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
from dataclasses import replace

from repro.serve.server import SegmentServer, ServerConfig, ServerStartupError


def _tcp_socket() -> socket.socket:
    # IPPROTO_TCP explicitly: sockets accepted from a listener inherit
    # its (family, type, proto), and asyncio only applies TCP_NODELAY to
    # transports whose socket reports proto == IPPROTO_TCP. A proto-0
    # listener therefore silently re-enables Nagle on every accepted
    # connection — which, against the server's header+payload write
    # pair, costs a 40ms delayed-ACK stall per response.
    return socket.socket(socket.AF_INET, socket.SOCK_STREAM, socket.IPPROTO_TCP)


def _so_reuseport_available() -> bool:
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = _tcp_socket()
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def _bind_reuseport(host: str, port: int) -> socket.socket:
    sock = _tcp_socket()
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def _run_worker(
    worker_id: int,
    root,
    cache_bytes: int,
    config: ServerConfig,
    port: int,
    conn,
    listen_sock: socket.socket | None,
) -> None:
    """One worker process: bind (or inherit), serve, obey the pipe."""
    from repro.core.storage import StorageManager

    loop = None
    try:
        storage = StorageManager(root, cache_bytes=cache_bytes)
        server = SegmentServer(storage, replace(config, processes=1, port=port))
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        if listen_sock is None:
            sock = _bind_reuseport(config.host, port)
        else:
            sock = listen_sock
        sock.setblocking(False)
        loop.run_until_complete(server.start(sock=sock))
        admin_port = loop.run_until_complete(server.start_admin())
        conn.send(("ready", admin_port))
        command = conn.recv()  # startup barrier: the peer list
        if command[0] == "peers":
            server.set_peers(worker_id, [p for p in command[1] if p != admin_port])
        elif command[0] == "stop":
            loop.run_until_complete(server.stop())
            loop.close()
            return
    except BaseException as error:  # noqa: BLE001 - reported over the pipe
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
        if loop is not None:
            loop.close()
        raise SystemExit(1)

    stopping = asyncio.Event()

    async def _shutdown() -> None:
        if stopping.is_set():
            return
        stopping.set()
        loop.remove_reader(conn.fileno())
        await server.stop()
        loop.stop()

    async def _apply_control(payload: dict) -> None:
        # Runs on the loop thread, so the apply is serialized with the
        # hit path exactly as in a single-process server. Refusals
        # (stale version) are a distinct reply: the parent treats them
        # as the rollback-refusal contract, not a worker failure.
        try:
            summary = server.apply_control_plan(payload)
            conn.send(("control_ok", summary))
        except ValueError as error:
            conn.send(("control_refused", str(error)))
        except Exception as error:  # noqa: BLE001 - reported over the pipe
            conn.send(("control_error", f"{type(error).__name__}: {error}"))

    def _on_control() -> None:
        try:
            command = conn.recv()
        except (EOFError, OSError):
            # The pipe closed under us: the parent is gone. Drain and
            # exit instead of serving as an orphan forever.
            command = ("stop",)
        if command[0] == "stop":
            loop.create_task(_shutdown())
        elif command[0] == "control":
            loop.create_task(_apply_control(command[1]))

    loop.add_reader(conn.fileno(), _on_control)
    try:
        loop.run_forever()
    finally:
        loop.close()
        try:
            conn.close()
        except OSError:
            pass


class MultiProcessServerHandle:
    """A fleet of :class:`SegmentServer` workers behind one port.

    Same synchronous surface as :class:`~repro.serve.server.ServerHandle`.
    Construct via :func:`~repro.serve.server.start_server` with
    ``ServerConfig(processes=N)``.
    """

    def __init__(
        self,
        root,
        cache_bytes: int,
        config: ServerConfig,
        startup_timeout: float = 30.0,
    ) -> None:
        if config.processes < 2:
            raise ValueError(
                f"MultiProcessServerHandle needs processes >= 2, got {config.processes}"
            )
        self.config = config
        self._stopped = False
        self._workers: list = []
        self._pipes: list = []
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        reuseport = _so_reuseport_available()
        if not reuseport and context.get_start_method() != "fork":
            raise ServerStartupError(
                "multi-process serving needs SO_REUSEPORT or the fork start "
                "method (to inherit one listening socket); this platform has "
                "neither"
            )
        placeholder: socket.socket | None = None
        shared_listener: socket.socket | None = None
        try:
            if reuseport:
                # Claim the port atomically (matters for port=0): workers
                # bind the resolved port with their own REUSEPORT sockets
                # while this placeholder — never listening, so invisible
                # to connect() — holds the claim.
                placeholder = _bind_reuseport(config.host, config.port)
                host, port = placeholder.getsockname()[:2]
            else:
                shared_listener = _tcp_socket()
                shared_listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                shared_listener.bind((config.host, config.port))
                shared_listener.listen(config.backlog)
                host, port = shared_listener.getsockname()[:2]
            self._address = (host, port)
            for worker_id in range(config.processes):
                parent_conn, child_conn = context.Pipe(duplex=True)
                worker = context.Process(
                    target=_run_worker,
                    args=(
                        worker_id,
                        root,
                        cache_bytes,
                        config,
                        port,
                        child_conn,
                        None if reuseport else shared_listener,
                    ),
                    name=f"segment-server-{worker_id}",
                    daemon=True,
                )
                worker.start()
                child_conn.close()
                self._workers.append(worker)
                self._pipes.append(parent_conn)
            admin_ports = self._await_ready(startup_timeout)
            for pipe in self._pipes:
                pipe.send(("peers", admin_ports))
        except BaseException:
            self._teardown(force=True)
            raise
        finally:
            if placeholder is not None:
                placeholder.close()
            if shared_listener is not None:
                shared_listener.close()

    def _await_ready(self, timeout: float) -> list[int]:
        admin_ports: list[int] = []
        for index, pipe in enumerate(self._pipes):
            if not pipe.poll(timeout):
                raise ServerStartupError(
                    f"serve worker {index} did not report ready within {timeout:g}s"
                )
            try:
                message = pipe.recv()
            except (EOFError, OSError) as error:
                raise ServerStartupError(
                    f"serve worker {index} died during startup"
                ) from error
            if message[0] == "error":
                raise ServerStartupError(f"serve worker {index} failed: {message[1]}")
            admin_ports.append(message[1])
        return admin_ports

    # -- ServerHandle surface -------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    @property
    def base_url(self) -> str:
        host, port = self._address
        return f"http://{host}:{port}"

    def apply_control_plan(self, plan, timeout: float = 30.0) -> dict:
        """Fan one control plan out to every worker over the pipes and
        collect their summaries.

        Every worker applies the same plan (they share the catalog and
        the node identity), so the fleet-level summary sums pin counts
        and reports the common version. A unanimous refusal re-raises as
        ``ValueError`` — the same stale-plan contract as a single
        server; partial refusals (a worker restarted mid-rollout and is
        behind) surface in the summary instead of failing the apply.
        """
        if self._stopped:
            raise RuntimeError("server fleet is stopped")
        payload = plan.to_json() if hasattr(plan, "to_json") else dict(plan)
        for pipe in self._pipes:
            pipe.send(("control", payload))
        summaries: list[dict] = []
        refusals: list[str] = []
        errors: list[str] = []
        for index, pipe in enumerate(self._pipes):
            if not pipe.poll(timeout):
                errors.append(f"worker {index}: no control reply in {timeout:g}s")
                continue
            try:
                message = pipe.recv()
            except (EOFError, OSError):
                errors.append(f"worker {index}: pipe closed during control apply")
                continue
            if message[0] == "control_ok":
                summaries.append(message[1])
            elif message[0] == "control_refused":
                refusals.append(f"worker {index}: {message[1]}")
            else:
                errors.append(f"worker {index}: {message[1]}")
        if refusals and not summaries:
            raise ValueError(refusals[0])
        return {
            "version": int(payload["version"]),
            "node_id": self.config.node_id,
            "workers": len(summaries),
            "pinned": sum(s.get("pinned", 0) for s in summaries),
            "dropped": sum(s.get("dropped", 0) for s in summaries),
            "max_inflight": (
                summaries[0].get("max_inflight") if summaries else None
            ),
            "refused": refusals,
            "errors": errors,
        }

    def stop(self) -> None:
        """Fan out graceful drain to every worker, then join — with
        terminate/kill escalation if a worker blows the drain budget."""
        if self._stopped:
            return
        self._stopped = True
        self._teardown(force=False)

    def _teardown(self, force: bool) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        budget = 0.5 if force else self.config.drain_timeout + 10.0
        for worker in self._workers:
            worker.join(timeout=budget)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=2.0)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=2.0)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass

    def __enter__(self) -> "MultiProcessServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
