"""Consistent-hash segment placement: the shard map behind the delivery tier.

PR 5 treated every replica as a full copy of storage; this module is the
routing/blueprint split that lets the tier scale past one machine's disk.
A :class:`ShardMap` is the *blueprint*: a versioned, immutable assignment
of every ``(video, SegmentKey)`` to ``replication_factor`` owner nodes,
computed from a consistent-hash ring over logical node ids. Routing — in
the server's peer-fetch path and the failover client's owner-first
candidate ordering — consults the map but never mutates it; topology
changes produce a *new* map with a higher version, and key movement is
bounded (only keys adjacent to the joined/left node's virtual points move,
≈ ``keys / nodes`` per single-node change).

Three design rules, each load-bearing:

* **Stable hashing.** Placement uses SHA-1 over UTF-8 tokens, never
  Python's ``hash()`` — the latter is salted per process, which would give
  every worker its own idea of ownership. The property suite
  (``tests/test_placement.py``) pins determinism across processes/seeds.
* **Logical node ids.** The ring hashes node *ids* ("node-0", ...), not
  URLs. Servers bind ephemeral ports in tests/bench/chaos; hashing URLs
  would reshuffle ownership on every run and break deterministic wire
  scenarios. A side table (``node_urls``) maps ids to addresses at the
  edge.
* **Versioned maps.** Every derived map (:meth:`ShardMap.with_nodes`)
  bumps ``version``; the server publishes the map in the manifest and
  clients adopt strictly newer versions only, so a stale manifest can
  never roll routing backwards.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.stream.dash import SegmentKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.storage import StorageManager

__all__ = ["HashRing", "ShardMap", "materialize_shards", "stable_hash"]


def stable_hash(token: str) -> int:
    """A 64-bit position on the ring for ``token``.

    SHA-1 of the UTF-8 bytes, truncated to 8 bytes. Deterministic across
    processes, platforms, and ``PYTHONHASHSEED`` — the one property the
    whole fabric rests on.
    """
    return int.from_bytes(hashlib.sha1(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over logical node ids with virtual nodes.

    Each node contributes ``vnodes`` points at ``stable_hash(f"{id}#{i}")``;
    a key's owners are the first ``count`` *distinct* nodes clockwise from
    the key's own hash. Virtual nodes smooth the load split (the property
    suite bounds per-node share) and bound key movement when the node set
    changes.
    """

    def __init__(self, nodes: Iterable[str], vnodes: int = 64) -> None:
        node_list = list(nodes)
        if not node_list:
            raise ValueError("a hash ring needs at least one node")
        if len(set(node_list)) != len(node_list):
            raise ValueError(f"duplicate node ids in {node_list!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes = tuple(node_list)
        self.vnodes = vnodes
        points = []
        for node in node_list:
            for replica in range(vnodes):
                points.append((stable_hash(f"{node}#{replica}"), node))
        # Sorting (hash, node) pairs breaks the (astronomically unlikely)
        # hash tie deterministically by node id.
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def owners(self, token: str, count: int) -> tuple[str, ...]:
        """The first ``min(count, len(nodes))`` distinct nodes clockwise
        from ``stable_hash(token)``. Always non-empty, always distinct."""
        if count < 1:
            raise ValueError(f"owner count must be >= 1, got {count}")
        want = min(count, len(self.nodes))
        start = bisect.bisect_right(self._hashes, stable_hash(token)) % len(self._points)
        found: list[str] = []
        seen: set[str] = set()
        index = start
        while len(found) < want:
            node = self._points[index][1]
            if node not in seen:
                seen.add(node)
                found.append(node)
            index = (index + 1) % len(self._points)
        return tuple(found)


@dataclass(frozen=True)
class ShardMap:
    """A versioned assignment of segments to owner nodes.

    Immutable and picklable (it rides inside ``ServerConfig`` to spawned
    worker processes). The ring itself is derived lazily and cached.
    """

    nodes: tuple[str, ...]
    replication_factor: int = 2
    version: int = 1
    vnodes: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValueError("a shard map needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"duplicate node ids in {self.nodes!r}")
        if self.replication_factor < 1:
            raise ValueError(
                f"replication factor must be >= 1, got {self.replication_factor}"
            )
        if self.version < 1:
            raise ValueError(f"shard map version must be >= 1, got {self.version}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")

    @property
    def ring(self) -> HashRing:
        ring = self.__dict__.get("_ring")
        if ring is None:
            ring = HashRing(self.nodes, vnodes=self.vnodes)
            object.__setattr__(self, "_ring", ring)
        return ring

    @staticmethod
    def segment_token(video: str, key: SegmentKey) -> str:
        """The ring token of one segment: ``video/window/row/col/quality``.

        Versions are deliberately absent — a reingest must not migrate a
        segment to different owners, or every pinned/cached copy would go
        cold on each new version.
        """
        return f"{video}/{key.to_path()}"

    def owners(self, video: str, key: SegmentKey) -> tuple[str, ...]:
        """The ``min(replication_factor, len(nodes))`` owner node ids of a
        segment, primary first."""
        return self.ring.owners(self.segment_token(video, key), self.replication_factor)

    def owns(self, node: str, video: str, key: SegmentKey) -> bool:
        return node in self.owners(video, key)

    def with_nodes(self, nodes: Iterable[str]) -> "ShardMap":
        """A successor map over a new node set, with ``version + 1``."""
        return ShardMap(
            nodes=tuple(nodes),
            replication_factor=self.replication_factor,
            version=self.version + 1,
            vnodes=self.vnodes,
        )

    # -- wire (de)serialisation -------------------------------------------

    def to_json(self) -> dict:
        """JSON-able form, embedded under ``"shard_map"`` in wire manifests."""
        return {
            "nodes": list(self.nodes),
            "replication_factor": self.replication_factor,
            "version": self.version,
            "vnodes": self.vnodes,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ShardMap":
        return cls(
            nodes=tuple(str(node) for node in data["nodes"]),
            replication_factor=int(data["replication_factor"]),
            version=int(data["version"]),
            vnodes=int(data.get("vnodes", 64)),
        )


def materialize_shards(
    storage: "StorageManager",
    node_roots: Mapping[str, Path | str],
    shard_map: ShardMap,
) -> dict[str, int]:
    """Partition a full store into per-node shard roots.

    Every node receives *all* metadata files (so ``build_manifest`` and the
    ``/manifest`` endpoint work on any node) but only the segment files it
    owns under ``shard_map`` — a missing file on a non-owner is exactly
    what routes a read onto the peer-fetch path. Files are hard-linked
    when the filesystem allows (segment files are immutable per version,
    so sharing inodes is safe) and copied otherwise.

    Returns the number of segment files placed per node. Raises
    ``ValueError`` if ``node_roots`` does not cover the map's node set.
    """
    missing = [node for node in shard_map.nodes if node not in node_roots]
    if missing:
        raise ValueError(f"node_roots missing entries for {missing!r}")

    def place(source: Path, destination: Path) -> None:
        destination.parent.mkdir(parents=True, exist_ok=True)
        if destination.exists():
            return
        try:
            os.link(source, destination)
        except OSError:
            shutil.copy2(source, destination)

    placed = {node: 0 for node in shard_map.nodes}
    root = Path(storage.catalog.root)
    for name in storage.list_videos():
        video_dir = root / name
        if not video_dir.is_dir():
            continue
        for entry in sorted(video_dir.rglob("*")):
            if not entry.is_file():
                continue
            relative = entry.relative_to(root)
            if entry.parent.name == "segments":
                try:
                    key, _version = _parse_segment_file(entry.name)
                except ValueError:
                    continue  # not a segment payload; leave it behind
                for node in shard_map.owners(name, key):
                    place(entry, Path(node_roots[node]) / relative)
                    placed[node] += 1
            else:
                for node in shard_map.nodes:
                    place(entry, Path(node_roots[node]) / relative)
    return placed


def _parse_segment_file(file_name: str) -> tuple[SegmentKey, int]:
    """Invert :meth:`SegmentKey.file_name`: ``g00001_r0_c1_high_v2.seg``."""
    stem, _, suffix = file_name.rpartition(".")
    if suffix != "seg":
        raise ValueError(f"not a segment file: {file_name!r}")
    parts = stem.split("_")
    if len(parts) != 5:
        raise ValueError(f"unrecognised segment file name: {file_name!r}")
    gop, row, col, label, version = parts
    if not (gop.startswith("g") and row.startswith("r") and col.startswith("c")):
        raise ValueError(f"unrecognised segment file name: {file_name!r}")
    if not version.startswith("v"):
        raise ValueError(f"unrecognised segment file name: {file_name!r}")
    from repro.video.quality import Quality

    key = SegmentKey(int(gop[1:]), (int(row[1:]), int(col[1:])), Quality.from_label(label))
    return key, int(version[1:])
