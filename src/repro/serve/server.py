"""The asyncio segment-delivery server.

One event loop per process, one :class:`~repro.core.storage.StorageManager`.
The loop never touches the disk: every cold segment read is pushed onto a
thread pool (``loop.run_in_executor``), and concurrent misses on the same
segment collapse inside the pool through the storage manager's
single-flight :class:`~repro.core.cache.LruSegmentCache` — N headsets
requesting the same equatorial tile cost one file read.

The hot path is faster still: with ``pin_budget_bytes > 0`` popular
segments are pinned in RAM as prebuilt wire buffers (header block +
``memoryview`` of the payload, see :mod:`repro.serve.hotset`) and served
straight off the event loop — no executor hop, no cache lock, no
per-request ``bytes`` concatenation. ``/healthz`` is precomputed once and
``/metrics`` rendering is cached for ``metrics_ttl`` seconds, so the
observability endpoints stop doing full-registry JSON dumps per request.

Endpoints (HTTP/1.1, keep-alive by default; ``GET`` everywhere except
the control plane's ``POST`` routes):

* ``/manifest/<video>`` — :meth:`Manifest.to_json` as JSON;
* ``/segment/<video>/<window>/<row>/<col>/<quality>`` — raw segment
  bytes; the URL tail is exactly :meth:`SegmentKey.to_path`;
* ``/metrics`` — the registry snapshot as JSON (merged across workers
  in multi-process mode);
* ``/metrics/local`` — this process's snapshot only, histogram sample
  windows included (what sibling workers fetch to merge);
* ``/healthz`` — liveness;
* ``GET /control`` — the active control-plane state (plan version,
  admission ceiling, pin budget and occupancy);
* ``POST /control/plan`` — apply a full versioned
  :class:`~repro.control.planner.ControlPlan`; ``POST /control/limits``
  and ``POST /control/prewarm`` apply just the admission or just the
  pre-warm slice. All three refuse versions older than the active plan
  with ``409`` — the shard-map rollback-refusal pattern, so a delayed
  or replayed plan can never roll the node backwards.

Failures map onto the storage error contract, never raw ``OSError``:
404 :class:`SegmentNotFoundError` / :class:`CatalogError`,
409 :class:`SegmentCorruptError`, 503 :class:`TransientSegmentError`,
504 :class:`SegmentReadTimeout`, 400 malformed path. The ``X-Error``
header carries the class name so the wire client can rebuild the exact
type.

Backpressure is per connection: responses are enqueued on a bounded
``asyncio.Queue`` drained by a writer task that awaits ``drain()`` after
every response. A client that stops reading fills its own queue and
stalls only its own pipeline — the reader blocks on ``put`` instead of
buffering unboundedly.

Admission control is load *shedding*, not queueing: past
``max_inflight`` concurrently-dispatching requests the server answers
``503`` immediately (with a ``Retry-After`` hint) instead of letting
latency grow unboundedly, and a connection that exceeds its
``max_connection_requests`` budget gets ``429`` + ``Retry-After`` and is
closed — both counted in the ``serve.shed`` counter with the live
``serve.inflight`` gauge alongside. Pinned hits bypass the in-flight
ceiling (they consume no executor slot, which is what the ceiling
protects) but still spend the per-connection budget.

With ``processes=N > 1``, :func:`start_server` forks N workers sharing
one listening port (SO_REUSEPORT where available, single inherited
listening socket otherwise) — see :mod:`repro.serve.multiproc`. Each
worker is exactly this server; ``/metrics`` on any worker merges every
sibling's snapshot.

Shutdown is drain-then-close: stop accepting, let every queued response
flush (bounded by ``drain_timeout``), then cancel stragglers and release
the thread pool.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter

from repro.core.errors import (
    CatalogError,
    SegmentCorruptError,
    SegmentNotFoundError,
    SegmentReadTimeout,
    TransientSegmentError,
    VisualCloudError,
)
from repro.core.storage import checksum_hex
from repro.obs import MetricsRegistry, merge_snapshots
from repro.serve.hotset import HotSet
from repro.serve.placement import ShardMap
from repro.stream.dash import SegmentKey

_MAX_REQUEST_BYTES = 16 * 1024  # request line + headers
_MAX_CONTROL_BODY = 4 * 1024 * 1024  # POST /control/* bodies (plans are small)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`SegmentServer` (or a worker fleet)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the kernel pick (the handle reports it)
    read_workers: int = 8  # thread pool for blocking storage reads
    queue_depth: int = 32  # bounded per-connection response queue
    read_timeout: float | None = 5.0  # seconds per storage read; None = unbounded
    drain_timeout: float = 5.0  # graceful-shutdown flush budget
    max_inflight: int | None = None  # concurrent dispatches before 503 shed
    max_connection_requests: int | None = None  # per-connection budget before 429
    retry_after: float = 0.5  # Retry-After hint (seconds) on shed responses
    processes: int = 1  # worker processes sharing the listening port
    backlog: int = 256  # listen(2) backlog per listening socket
    pin_budget_bytes: int = 0  # RAM hot-set budget; 0 disables pinning
    pin_threshold: int = 3  # cold-path hits before a segment is pinned
    prewarm: tuple[str, ...] = ()  # videos pinned hottest-first at startup
    metrics_ttl: float = 0.25  # /metrics render cache (seconds); 0 disables
    # -- sharded delivery (see repro.serve.placement) ----------------------
    node_id: str = ""  # this node's logical id in the shard map; "" = unsharded
    shard_map: ShardMap | None = None  # segment → owners blueprint
    peers: tuple[tuple[str, str], ...] = ()  # (node_id, base_url) sibling addresses
    peer_timeout: float = 5.0  # seconds per peer segment fetch
    peer_cache_bytes: int = 8 * 1024 * 1024  # peer-fetched payload cache; 0 disables
    # When a local owned read fails *repairably* (index entry present,
    # bytes missing/torn/corrupt) and the shard map holds rf >= 2, fetch
    # the segment from a peer owner, verify it against the index
    # checksum, atomically rewrite the local file, and serve the request
    # — checksum-triggered peer read-repair. Off = report 409 instead.
    read_repair: bool = True

    def __post_init__(self) -> None:
        if self.read_workers < 1:
            raise ValueError(f"read_workers must be >= 1, got {self.read_workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.read_timeout is not None and self.read_timeout <= 0:
            raise ValueError(f"read_timeout must be positive, got {self.read_timeout}")
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {self.drain_timeout}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_connection_requests is not None and self.max_connection_requests < 1:
            raise ValueError(
                f"max_connection_requests must be >= 1, got {self.max_connection_requests}"
            )
        if self.retry_after <= 0:
            raise ValueError(f"retry_after must be positive, got {self.retry_after}")
        if self.processes < 1:
            raise ValueError(f"processes must be >= 1, got {self.processes}")
        if self.backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {self.backlog}")
        if self.pin_budget_bytes < 0:
            raise ValueError(
                f"pin_budget_bytes must be >= 0, got {self.pin_budget_bytes}"
            )
        if self.pin_threshold < 1:
            raise ValueError(f"pin_threshold must be >= 1, got {self.pin_threshold}")
        if self.metrics_ttl < 0:
            raise ValueError(f"metrics_ttl must be >= 0, got {self.metrics_ttl}")
        if self.shard_map is not None and not self.node_id:
            raise ValueError("a shard map needs a node_id for this server")
        if self.shard_map is not None and self.node_id not in self.shard_map.nodes:
            raise ValueError(
                f"node_id {self.node_id!r} is not in the shard map "
                f"({self.shard_map.nodes!r})"
            )
        if self.peer_timeout <= 0:
            raise ValueError(f"peer_timeout must be positive, got {self.peer_timeout}")
        if self.peer_cache_bytes < 0:
            raise ValueError(
                f"peer_cache_bytes must be >= 0, got {self.peer_cache_bytes}"
            )


def _status_for(error: BaseException) -> int:
    """The wire status of one storage-contract error (order matters:
    subclasses before their bases)."""
    if isinstance(error, SegmentCorruptError):
        return 409
    if isinstance(error, (SegmentNotFoundError, CatalogError)):
        return 404
    if isinstance(error, SegmentReadTimeout):
        return 504
    if isinstance(error, TransientSegmentError):
        return 503
    return 500


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class _Response:
    status: int
    body: bytes
    content_type: str = "application/octet-stream"
    error: str = ""  # exception class name, sent as X-Error
    retry_after: float | None = None  # seconds, sent as Retry-After
    checksum: str = ""  # body content checksum (hex), sent as X-Checksum

    @property
    def body_length(self) -> int:
        return len(self.body)

    def _head(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
        ]
        if self.checksum:
            # Before Connection, matching hotset._header_block exactly:
            # a pin hit and a cold read must be wire-identical.
            head.append(f"X-Checksum: {self.checksum}")
        head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        if self.error:
            head.append(f"X-Error: {self.error}")
        if self.retry_after is not None:
            head.append(f"Retry-After: {self.retry_after:g}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii")

    def parts(self, keep_alive: bool) -> tuple[bytes, ...]:
        """The wire buffers, unconcatenated: header block, then body.

        ``b"".join(parts(k))`` must equal ``encode(k)`` for every
        response — the Hypothesis differential test pins this.
        """
        head = self._head(keep_alive)
        return (head, self.body) if self.body else (head,)

    def encode(self, keep_alive: bool) -> bytes:
        """The single-buffer wire form: the reference implementation the
        zero-copy ``parts`` path is tested against."""
        return self._head(keep_alive) + self.body


class _Precomputed:
    """A response frozen into its wire buffers at build time.

    Serving one costs a tuple fetch: both ``Connection`` variants of the
    header block are built once, and the body is shared, not copied.
    """

    __slots__ = ("status", "body_length", "_keep", "_close")

    def __init__(self, response: _Response) -> None:
        self.status = response.status
        self.body_length = len(response.body)
        self._keep = response.parts(True)
        self._close = response.parts(False)

    def parts(self, keep_alive: bool) -> tuple[bytes, ...]:
        return self._keep if keep_alive else self._close


def _json_response(status: int, payload: dict) -> _Response:
    return _Response(
        status,
        json.dumps(payload, sort_keys=True).encode("utf-8"),
        content_type="application/json",
    )


def _error_response(status: int, error: BaseException) -> _Response:
    body = json.dumps({"error": type(error).__name__, "detail": str(error)})
    return _Response(
        status,
        body.encode("utf-8"),
        content_type="application/json",
        error=type(error).__name__,
    )


class SegmentServer:
    """Serves a storage manager's catalog over HTTP to many sessions.

    Owns nothing but sockets: the storage manager (and therefore the
    cache and the metrics registry) is shared with whatever else the
    process runs. Start with :meth:`start`, stop with :meth:`stop`; or
    use :class:`ServerHandle` / :func:`start_server` to run the loop in
    a daemon thread from synchronous code.
    """

    def __init__(
        self,
        storage,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.storage = storage
        self.config = config or ServerConfig()
        self.metrics = (
            registry
            if registry is not None
            else getattr(storage, "metrics", None) or MetricsRegistry()
        )
        self._server: asyncio.base_events.Server | None = None
        self._admin: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._connections: set[asyncio.Task] = set()
        self._drain: asyncio.Event | None = None
        self._requests = self.metrics.counter("serve.requests", "HTTP requests served")
        self._latency = self.metrics.histogram(
            "serve.request_seconds", "wall time from request parse to enqueue"
        )
        # Hot-path series are bound once and cached per (endpoint,
        # status): label canonicalisation per request is measurable at
        # saturation. These dicts are touched only on the loop thread.
        self._requests_bound: dict = {}
        self._latency_bound: dict = {}
        self._bytes_sent = self.metrics.counter(
            "serve.bytes_sent", "HTTP body bytes sent"
        ).labels()
        self._gauge_connections = self.metrics.gauge(
            "serve.connections", "open client connections"
        )
        # Admission control state: the loop is single-threaded, so the
        # in-flight count needs no lock — only the gauge mirror is shared.
        # The ceiling starts at the configured value but is runtime
        # state, not config: control plans retune it live.
        self._inflight = 0
        self._max_inflight = self.config.max_inflight
        self._shed = self.metrics.counter(
            "serve.shed", "requests refused by admission control"
        )
        self._gauge_inflight = self.metrics.gauge(
            "serve.inflight", "requests currently dispatching"
        )
        self.hot = HotSet(
            self.config.pin_budget_bytes, self.config.pin_threshold, self.metrics
        )
        self._healthz = _Precomputed(_Response(200, b"ok", content_type="text/plain"))
        self._metrics_cache: tuple[float, _Precomputed] | None = None
        # Multi-process wiring (set by the worker shim, see multiproc.py).
        self._worker_id: int | None = None
        self._peer_ports: tuple[int, ...] = ()
        # Sharded-delivery wiring. The shard map and peer table are read
        # on executor threads but only *replaced* (never mutated) on the
        # loop thread — atomic attribute swaps need no lock.
        self.shard_map: ShardMap | None = self.config.shard_map
        self.node_id: str = self.config.node_id
        self._peer_backends: dict[str, object] = {}
        self._peer_lock = threading.Lock()
        if self.config.peers:
            self._set_peer_urls(dict(self.config.peers))
        # The peer cache owns a private registry: LruSegmentCache reports
        # under ``cache.*``, and sharing the server registry would fold
        # peer-tier hits into the storage buffer pool's accounting.
        from repro.core.cache import LruSegmentCache

        self._peer_cache = (
            LruSegmentCache(self.config.peer_cache_bytes, registry=MetricsRegistry())
            if self.config.peer_cache_bytes > 0
            else None
        )
        self._peer_fetches = self.metrics.counter(
            "serve.peer_fetches", "segments fetched from sibling nodes"
        ).labels()
        self._peer_bytes = self.metrics.counter(
            "serve.peer_bytes", "segment bytes fetched from sibling nodes"
        ).labels()
        self._peer_cache_hits = self.metrics.counter(
            "serve.peer_cache_hits", "non-owned reads served from the peer cache"
        ).labels()
        self._peer_errors = self.metrics.counter(
            "serve.peer_errors", "failed peer fetch attempts"
        ).labels()
        self._peer_fallback_local = self.metrics.counter(
            "serve.peer_fallback_local",
            "non-owned reads served from local storage after peers failed",
        ).labels()
        self._gauge_shard_version = self.metrics.gauge(
            "serve.shard_map_version", "version of the active shard map"
        )
        self._shard_updates = self.metrics.counter(
            "serve.shard_map_updates", "shard map replacements applied"
        ).labels()
        if self.shard_map is not None:
            self._gauge_shard_version.set(self.shard_map.version)
        # Control-plane state: the active plan version (monotonic, same
        # refusal contract as the shard map) and the per-video demand
        # counters the controller's forecaster diffs. Cardinality is
        # bounded by catalog size, and counting in the connection loop
        # (not _dispatch) means shed and pinned requests register too —
        # demand is what was *asked for*, not what was admitted.
        self._control_version = 0
        self._video_requests = self.metrics.counter(
            "serve.video_requests", "segment requests per video (demand signal)"
        )
        self._video_bound: dict = {}
        self._gauge_control_version = self.metrics.gauge(
            "serve.control_plan_version", "version of the active control plan"
        )
        self._control_applies = self.metrics.counter(
            "serve.control_applies", "control plans (or slices) applied"
        ).labels()
        # Read-repair accounting (storage.repair_success is incremented
        # by StorageManager.repair_segment itself, so scrubs count too).
        self._repair_attempts = self.metrics.counter(
            "storage.repair_attempts", "peer read-repairs attempted"
        ).labels()
        self._repair_failed = self.metrics.counter(
            "storage.repair_failed", "peer read-repairs that found no intact copy"
        ).labels()
        # Drop coherence: registered against the storage manager while
        # the server runs, so dropping a video also drops its pinned wire
        # buffers and peer-cache entries (see _on_storage_drop).
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self, sock=None) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port).

        ``sock`` lets a multi-process worker serve on a pre-bound
        SO_REUSEPORT (or fork-inherited) listening socket instead of
        binding its own.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._drain = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        add_listener = getattr(self.storage, "add_drop_listener", None)
        if add_listener is not None:
            add_listener(self._on_storage_drop)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.read_workers, thread_name_prefix="serve-read"
        )
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock, backlog=self.config.backlog
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.config.host,
                self.config.port,
                backlog=self.config.backlog,
            )
        for name in self.config.prewarm:
            self.prewarm_pins(name)
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start_admin(self) -> int:
        """A second listener on an ephemeral port, same handler — the
        worker-to-worker channel for ``/metrics/local`` merging."""
        self._admin = await asyncio.start_server(
            self._handle_connection, self.config.host, 0
        )
        return self._admin.sockets[0].getsockname()[1]

    def set_peers(self, worker_id: int, peer_ports) -> None:
        """Tell this worker who its siblings are (admin ports)."""
        self._worker_id = worker_id
        self._peer_ports = tuple(peer_ports)

    # -- sharded delivery ------------------------------------------------------

    def _set_peer_urls(self, urls: dict[str, str]) -> None:
        """(Re)build the sibling backend table from node id → base URL."""
        from repro.core.backends import RemotePeerBackend

        with self._peer_lock:
            for node, backend in list(self._peer_backends.items()):
                if urls.get(node) != backend.base_url:
                    backend.close()
                    del self._peer_backends[node]
            for node, url in urls.items():
                if node == self.node_id or node in self._peer_backends:
                    continue
                self._peer_backends[node] = RemotePeerBackend(
                    url, timeout=self.config.peer_timeout
                )

    def _peer_backend(self, node: str):
        with self._peer_lock:
            return self._peer_backends.get(node)

    def update_shard_map(self, shard_map: ShardMap, peers=None) -> int:
        """Swap in a new placement blueprint (loop thread only).

        Coherence on topology change: the peer cache is cleared (its
        entries were placed under the old map's ownership) and every
        pinned segment this node no longer owns is dropped via
        ``unpin_prefix`` — RAM freed for the hot set the new map actually
        routes here. Returns the number of pins dropped. Version
        monotonicity is enforced: a stale map is rejected, so a replayed
        manifest can never roll routing backwards.
        """
        previous = self.shard_map
        if previous is not None and shard_map.version < previous.version:
            raise ValueError(
                f"shard map v{shard_map.version} is older than active "
                f"v{previous.version}; refusing to roll back"
            )
        self.shard_map = shard_map
        if peers is not None:
            self._set_peer_urls(dict(peers))
        self._shard_updates.inc()
        self._gauge_shard_version.set(shard_map.version)
        if self._peer_cache is not None:
            self._peer_cache.clear()
        dropped = 0
        if self.hot.enabled and self.node_id:
            for path in self.hot.paths():
                parts = [part for part in path.split("/") if part]
                if len(parts) != 6 or parts[0] != "segment":
                    continue
                try:
                    key = SegmentKey.from_path("/".join(parts[2:]))
                except ValueError:
                    continue
                if not shard_map.owns(self.node_id, parts[1], key):
                    dropped += self.hot.unpin_prefix(path)
        return dropped

    def _peer_read(self, name: str, key: SegmentKey, owners) -> bytes:
        """A non-owned read: peer cache first, then the owners (blocking;
        runs on the read executor).

        Single-flight through the cache's ``get_or_load``: N sessions
        missing on the same non-owned segment cost one peer fetch.
        """
        loaded = False

        def fetch() -> bytes:
            nonlocal loaded
            loaded = True
            return self._fetch_from_owners(name, key, owners)

        if self._peer_cache is None:
            return fetch()
        data = self._peer_cache.get_or_load((name, key), fetch)
        if not loaded:
            self._peer_cache_hits.inc()
        return data

    def _fetch_from_owners(self, name: str, key: SegmentKey, owners) -> bytes:
        """One segment's bytes from its owner nodes, first reachable wins.

        Error contract: an owner answering 404 is *authoritative* — the
        segment does not exist anywhere, and the not-found propagates.
        Owners that are merely unreachable are skipped; when all of them
        are, local storage is tried (full-copy deployments and freshly
        re-mapped nodes often still hold the bytes) and only then does
        the read surface as transient, so clients fail over instead of
        treating an outage as data loss.
        """
        last_error: Exception | None = None
        for node in owners:
            if node == self.node_id:
                continue
            backend = self._peer_backend(node)
            if backend is None:
                continue
            try:
                data = backend.fetch_segment_key(name, key)
            except SegmentNotFoundError:
                raise
            except TransientSegmentError as error:  # includes read timeouts
                self._peer_errors.inc()
                last_error = error
                continue
            self._peer_fetches.inc()
            self._peer_bytes.inc(len(data))
            return data
        try:
            data = self.storage.read_segment(name, key.window, key.tile, key.quality)
        except SegmentNotFoundError:
            raise TransientSegmentError(
                f"no owner of {name}/{key.to_path()} is reachable "
                f"(owners={list(owners)!r}, last error: {last_error})"
            ) from last_error
        self._peer_fallback_local.inc()
        return data

    def _read_repair(
        self, name: str, key: SegmentKey, owners, cause: SegmentNotFoundError
    ) -> bytes:
        """Heal a locally-failed owned read from a peer owner (blocking;
        runs on the read executor).

        Unlike :meth:`_fetch_from_owners`, a peer 404 is *not*
        authoritative here — our own index proves the segment exists, a
        peer without it has its own damage — and local storage is never a
        fallback (the local copy is the broken one). Every candidate copy
        must pass the index checksum before it touches disk, so a peer
        serving corrupt bytes can neither be served nor written.
        """
        self._repair_attempts.inc()
        for node in owners:
            if node == self.node_id:
                continue
            backend = self._peer_backend(node)
            if backend is None:
                continue
            try:
                data = backend.fetch_segment_key(name, key)
            except (SegmentNotFoundError, TransientSegmentError):
                self._peer_errors.inc()
                continue
            self._peer_fetches.inc()
            self._peer_bytes.inc(len(data))
            try:
                # Verifies against the index entry, atomically rewrites
                # the local file, and invalidates the buffer pool entry.
                self.storage.repair_segment(
                    name, key.window, key.tile, key.quality, data
                )
            except SegmentNotFoundError:
                continue  # peer copy corrupt too (or raced a drop)
            return data
        self._repair_failed.inc()
        raise cause

    def _on_storage_drop(self, name: str) -> None:
        """Storage drop listener: invalidate every derived copy of the
        dropped video's bytes. Runs on the dropping thread, so the hot
        set (loop-only by contract) is touched via the loop."""
        loop = self._loop

        def invalidate() -> None:
            self.hot.unpin_prefix(f"/segment/{name}/")
            if self._peer_cache is not None:
                self._peer_cache.invalidate_prefix(name)

        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(invalidate)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    async def stop(self) -> None:
        """Drain and shut down: no new connections, queued responses
        flush within ``drain_timeout``, stragglers are cancelled."""
        remove_listener = getattr(self.storage, "remove_drop_listener", None)
        if remove_listener is not None:
            remove_listener(self._on_storage_drop)
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._admin is not None:
            self._admin.close()
            await self._admin.wait_closed()
            self._admin = None
        if self._drain is not None:
            self._drain.set()  # idle keep-alive loops exit immediately
        pending = [task for task in self._connections if not task.done()]
        if pending:
            _, unfinished = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
            for task in unfinished:
                task.cancel()
            if unfinished:
                await asyncio.gather(*unfinished, return_exceptions=True)
        self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- pin prewarm ----------------------------------------------------------

    def prewarm_pins(self, name: str, weights: dict | None = None) -> int:
        """Pin ``name``'s segments hottest-first until the budget is full.

        ``weights`` maps :class:`SegmentKey` to a pin priority — feed it
        :func:`repro.core.popularity.segment_weights` built from viewer
        traces; without it, segments pin in deterministic path order.
        Blocking storage reads run inline: this is a startup (or
        operator-initiated) action, not a request-path one. Returns how
        many segments were pinned.
        """
        if not self.hot.enabled:
            return 0
        manifest = self.storage.build_manifest(name)
        if weights:
            def rank(key):
                return (-weights.get(key, 0.0), key.to_path())
        else:
            def rank(key):
                return key.to_path()
        pinned = 0
        for key in sorted(manifest.segment_sizes, key=rank):
            size = manifest.segment_sizes[key]
            if self.hot.bytes_pinned + size > self.hot.budget_bytes:
                continue  # full for this size; a smaller segment may still fit
            try:
                data = self.storage.read_segment(
                    name, key.window, key.tile, key.quality
                )
            except SegmentNotFoundError:
                # Missing or checksum-failed on disk: never pin bytes that
                # did not verify — the request path will repair (or 409)
                # this segment; prewarm just moves on.
                self.metrics.counter(
                    "serve.prewarm_skipped",
                    "prewarm reads skipped (missing or corrupt on disk)",
                ).inc(video=name)
                continue
            if self.hot.pin(f"/segment/{name}/{key.to_path()}", data):
                pinned += 1
        return pinned

    # -- control plane ---------------------------------------------------------

    def _check_plan_version(self, version: int) -> None:
        """The shard map's rollback refusal, applied to control plans:
        equal re-applies are idempotent, older versions are errors."""
        if version < self._control_version:
            raise ValueError(
                f"control plan v{version} is older than active "
                f"v{self._control_version}; refusing to roll back"
            )

    def apply_control_plan(self, plan) -> dict:
        """Apply one versioned plan slice to this node (loop thread
        only): admission ceiling, pin budget, and predicted-heat
        pre-warm. ``plan`` is a ``ControlPlan`` or its JSON dict.

        A plan without a slice for this node updates only the version
        fence (the node saw the directive and had nothing to do).
        Pre-warm reads run inline like :meth:`prewarm_pins` — control
        cadence, not request cadence — and a segment that fails to read
        (raced a drop, peer-owned) is skipped, not fatal: the plan is a
        target, not a transaction.
        """
        from repro.control.planner import ControlPlan

        if isinstance(plan, dict):
            plan = ControlPlan.from_json(plan)
        self._check_plan_version(plan.version)
        node_plan = plan.node(self.node_id)
        pinned = dropped = 0
        if node_plan is not None:
            self._max_inflight = node_plan.max_inflight
            # The plan is authoritative over the pin budget: a node that
            # started cold (budget 0) can be resized into pinning — the
            # tier-resizing half of the control plane.
            if node_plan.pin_budget_bytes != self.hot.budget_bytes:
                before = len(self.hot)
                self.hot.set_budget(node_plan.pin_budget_bytes)
                dropped = before - len(self.hot)
            self.hot.set_base_heat(dict(node_plan.prewarm))
            for path, heat in node_plan.prewarm:
                if path in self.hot:
                    continue
                segments = [part for part in path.split("/") if part]
                if len(segments) != 6 or segments[0] != "segment":
                    continue
                try:
                    key = SegmentKey.from_path("/".join(segments[2:]))
                    data = self.storage.read_segment(
                        segments[1], key.window, key.tile, key.quality
                    )
                except Exception:
                    continue
                if self.hot.pin(path, data, heat=heat):
                    pinned += 1
        self._control_version = plan.version
        self._gauge_control_version.set(plan.version)
        self._control_applies.inc()
        return {
            "version": plan.version,
            "node_id": self.node_id,
            "max_inflight": self._max_inflight,
            "pin_budget_bytes": self.hot.budget_bytes,
            "pinned": pinned,
            "dropped": dropped,
        }

    def control_state(self) -> dict:
        """The live control-plane view ``GET /control`` serves."""
        return {
            "version": self._control_version,
            "node_id": self.node_id,
            "max_inflight": self._max_inflight,
            "pin_budget_bytes": self.hot.budget_bytes,
            "pinned_entries": len(self.hot),
            "pinned_bytes": self.hot.bytes_pinned,
            "inflight": self._inflight,
        }

    def _control(self, parts: list[str], method: str, body: bytes) -> _Response:
        """Route one ``/control`` request (runs on the loop thread, so
        every mutation here is serialized with the hit path)."""
        if not parts:
            if method != "GET":
                return _error_response(405, LookupError("use GET /control"))
            return _json_response(200, self.control_state())
        if method != "POST" or len(parts) != 1:
            return _error_response(404, LookupError(f"no control route {parts!r}"))
        payload = json.loads(body.decode("utf-8"))  # ValueError → 400 upstream
        try:
            return self._control_post(parts[0], payload)
        except (KeyError, TypeError) as error:
            return _error_response(400, ValueError(f"malformed control payload: {error!r}"))

    def _control_post(self, route: str, payload: dict) -> _Response:
        if route == "plan":
            try:
                return _json_response(200, self.apply_control_plan(payload))
            except ValueError as error:
                return _error_response(409, error)
        if route in ("limits", "prewarm"):
            try:
                self._check_plan_version(int(payload["version"]))
            except ValueError as error:
                return _error_response(409, error)
            if route == "limits":
                ceiling = payload["max_inflight"]
                self._max_inflight = int(ceiling) if ceiling is not None else None
            else:
                prewarm = [
                    (str(path), int(heat)) for path, heat in payload.get("prewarm", [])
                ]
                if "pin_budget_bytes" in payload:
                    self.hot.set_budget(int(payload["pin_budget_bytes"]))
                from repro.control.planner import ControlPlan, NodePlan

                partial = ControlPlan(
                    version=int(payload["version"]),
                    nodes=(
                        NodePlan(
                            node_id=self.node_id,
                            max_inflight=self._max_inflight,
                            pin_budget_bytes=self.hot.budget_bytes,
                            processes=self.config.processes,
                            prewarm=tuple(prewarm),
                        ),
                    ),
                )
                return _json_response(200, self.apply_control_plan(partial))
            self._control_version = int(payload["version"])
            self._gauge_control_version.set(self._control_version)
            self._control_applies.inc()
            return _json_response(200, self.control_state())
        return _error_response(404, LookupError(f"no control route {route!r}"))

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self._gauge_connections.inc()
        # Bounded send queue: the reader enqueues buffer tuples, the
        # writer drains. A slow consumer fills the queue and stalls its
        # own reader — that is the backpressure.
        queue: asyncio.Queue[tuple | None] = asyncio.Queue(self.config.queue_depth)
        writer_task = asyncio.create_task(self._write_loop(queue, writer))
        assert self._drain is not None
        # One drain-wait task per connection, reused across requests —
        # not one per request, which doubled task churn at saturation.
        drain_wait = asyncio.create_task(self._drain.wait())
        served_on_connection = 0
        hot = self.hot
        try:
            while not self._drain.is_set():
                request = await self._next_request(reader, drain_wait)
                if request is None:
                    break
                method, path, keep_alive, body = request
                started = perf_counter()
                served_on_connection += 1
                target = path.partition("?")[0]
                if method == "GET" and target.startswith("/segment/"):
                    # The forecaster's demand signal: every segment
                    # request, counted before admission so shed and
                    # pinned traffic register as demand too.
                    video = target.split("/", 3)[2]
                    demand = self._video_bound.get(video)
                    if demand is None:
                        demand = self._video_bound[video] = (
                            self._video_requests.labels(video=video)
                        )
                    demand.inc()
                if method == "POST" and target.startswith("/control"):
                    response = await self._dispatch(target, method, body)
                elif method != "GET":
                    response = _Response(
                        405, b"", content_type="text/plain", error="MethodNotAllowed"
                    )
                    keep_alive = False
                else:
                    budget = self.config.max_connection_requests
                    if budget is not None and served_on_connection > budget:
                        # The connection spent its request budget: shed
                        # with 429 and close so the client reconnects
                        # (or fails over) after the hint.
                        response = self._shed_response(429, "connection_budget")
                        keep_alive = False
                    else:
                        # enabled is read per request, not per connection:
                        # a control plan can resize a zero-budget hot set
                        # mid-connection, and long-lived connections must
                        # see the new tier immediately.
                        pinned = hot.lookup(target) if hot.enabled else None
                        if pinned is not None:
                            # RAM hit: prebuilt buffers, no executor, no
                            # in-flight accounting (nothing to protect).
                            response = pinned
                        elif (
                            self._max_inflight is not None
                            and self._inflight >= self._max_inflight
                        ):
                            # Overloaded: answer immediately instead of
                            # queueing — bounded latency for admitted work.
                            response = self._shed_response(503, "overload")
                        else:
                            self._inflight += 1
                            self._gauge_inflight.set(self._inflight)
                            try:
                                response = await self._dispatch(target)
                            finally:
                                self._inflight -= 1
                                self._gauge_inflight.set(self._inflight)
                endpoint = target.split("/", 2)[1] if target.count("/") else target
                series = (endpoint, response.status)
                counter = self._requests_bound.get(series)
                if counter is None:
                    counter = self._requests_bound[series] = self._requests.labels(
                        endpoint=endpoint, status=str(response.status)
                    )
                counter.inc()
                self._bytes_sent.inc(response.body_length)
                histogram = self._latency_bound.get(endpoint)
                if histogram is None:
                    histogram = self._latency_bound[endpoint] = self._latency.labels(
                        endpoint=endpoint
                    )
                histogram.observe(perf_counter() - started)
                await queue.put(response.parts(keep_alive))
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.LimitOverrunError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            drain_wait.cancel()
            await asyncio.gather(drain_wait, return_exceptions=True)
            await queue.put(None)  # sentinel: flush then close
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            self._connections.discard(task)
            self._gauge_connections.dec()

    async def _next_request(
        self, reader: asyncio.StreamReader, drain_wait: asyncio.Task
    ) -> tuple[str, str, bool] | None:
        """The next parsed request, or None on client EOF *or* drain.

        Racing the read against the drain event is what makes shutdown
        prompt: an idle keep-alive connection is parked in ``readuntil``
        and would otherwise only notice draining when force-cancelled
        after the full timeout.
        """
        read = asyncio.create_task(self._read_request(reader))
        done, _ = await asyncio.wait(
            {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
        )
        if read not in done:
            read.cancel()
            await asyncio.gather(read, return_exceptions=True)
            return None
        return read.result()

    @staticmethod
    async def _write_loop(queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                payload = await queue.get()
                if payload is None:
                    break
                # Two writes (header block, payload view) instead of one
                # concatenated bytes: the transport chains the buffers,
                # the payload is never copied on the hit path.
                for part in payload:
                    writer.write(part)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bool, bytes] | None:
        """Parse one request head (and a Content-Length body, for the
        control plane's POSTs); None on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean close between requests
            raise
        if len(head) > _MAX_REQUEST_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, version = parts
        keep_alive = version == "HTTP/1.1"
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            name = name.strip().lower()
            if name == "connection":
                keep_alive = value.strip().lower() != "close"
            elif name == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length < 0 or length > _MAX_CONTROL_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, keep_alive, body

    # -- request dispatch -----------------------------------------------------

    def _shed_response(self, status: int, reason: str) -> _Response:
        self._shed.inc(reason=reason)
        body = json.dumps(
            {"error": "TransientSegmentError", "detail": f"request shed: {reason}"}
        )
        return _Response(
            status,
            body.encode("utf-8"),
            content_type="application/json",
            error="TransientSegmentError",
            retry_after=self.config.retry_after,
        )

    async def _dispatch(self, target: str, method: str = "GET", body: bytes = b""):
        parts = [part for part in target.split("/") if part]
        try:
            if parts == ["healthz"]:
                return self._healthz
            if parts and parts[0] == "control":
                return self._control(parts[1:], method, body)
            if parts == ["metrics"]:
                return await self._metrics_response()
            if parts == ["metrics", "local"]:
                snapshot = self.metrics.snapshot(include_samples=True)
                snapshot["worker"] = self._worker_id
                return _json_response(200, snapshot)
            if len(parts) == 2 and parts[0] == "manifest":
                return await self._manifest(parts[1])
            if len(parts) == 6 and parts[0] == "segment":
                return await self._segment(parts[1], "/".join(parts[2:]), target)
            return _error_response(404, LookupError(f"no route for {target!r}"))
        except VisualCloudError as error:
            return _error_response(_status_for(error), error)
        except ValueError as error:
            return _error_response(400, error)

    async def _metrics_response(self) -> _Precomputed:
        """The registry snapshot, rendered at most once per ``metrics_ttl``.

        Snapshotting and JSON-encoding the full registry per request is
        event-loop work that scales with series count, not traffic — a
        short render cache bounds it without making the data stale in
        any way a scraper would notice.
        """
        now = asyncio.get_running_loop().time()
        cached = self._metrics_cache
        if cached is not None and now - cached[0] < self.config.metrics_ttl:
            return cached[1]
        if self._peer_ports:
            snapshot = await self._merged_snapshot()
        else:
            snapshot = self.metrics.snapshot()
        rendered = _Precomputed(_json_response(200, snapshot))
        self._metrics_cache = (now, rendered)
        return rendered

    async def _manifest(self, name: str) -> _Response:
        manifest = await self._offload(lambda: self.storage.build_manifest(name))
        payload = manifest.to_json()
        shard_map = self.shard_map
        if shard_map is not None:
            # Published here, not baked into the stored manifest: the map
            # is delivery-tier state with its own version stream.
            payload["shard_map"] = shard_map.to_json()
        return _json_response(200, payload)

    async def _segment(self, name: str, tail: str, target: str) -> _Response:
        key = SegmentKey.from_path(tail)  # ValueError → 400
        shard_map = self.shard_map
        owners = (
            shard_map.owners(name, key)
            if shard_map is not None and self.node_id
            else None
        )
        if owners is not None and self.node_id not in owners:
            # Not ours: the peer tier answers before storage is consulted
            # (placement decides the path — a local 404 on a non-owner is
            # an artefact of partitioning, never an authoritative answer).
            data = await self._offload(lambda: self._peer_read(name, key, owners))
        else:
            try:
                data = await self._offload(
                    lambda: self.storage.read_segment(
                        name, key.window, key.tile, key.quality
                    )
                )
            except SegmentNotFoundError as error:
                # Repairable = the index has the entry, only the local
                # bytes failed. With rf >= 2 a peer owner holds an intact
                # copy: heal the local file and serve the request.
                if not (
                    self.config.read_repair
                    and getattr(error, "repairable", False)
                    and owners is not None
                    and len(owners) > 1
                ):
                    raise
                data = await self._offload(
                    lambda: self._read_repair(name, key, owners, error)
                )
        if self.hot.enabled:
            self.hot.record(target, data)
        return _Response(200, data, checksum=checksum_hex(data))

    async def _offload(self, call):
        """Run a blocking storage call on the thread pool, bounded by the
        read budget; a blown budget surfaces as the taxonomy's timeout."""
        if self._executor is None:
            raise RuntimeError("server is not running")
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, call)
        if self.config.read_timeout is None:
            return await future
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self.config.read_timeout
            )
        except asyncio.TimeoutError:
            raise SegmentReadTimeout(
                f"storage read exceeded the {self.config.read_timeout:.3f}s budget"
            ) from None

    # -- worker metrics merging -----------------------------------------------

    async def _merged_snapshot(self) -> dict:
        """This worker's snapshot pooled with every reachable sibling's.

        Dead or unresponsive peers are skipped, not fatal — ``workers``
        reports how many snapshots the merge actually covers and
        ``peer_errors`` how many it could not reach.
        """
        snapshots = [self.metrics.snapshot(include_samples=True)]
        results = await asyncio.gather(
            *(
                asyncio.wait_for(self._fetch_peer_snapshot(port), timeout=2.0)
                for port in self._peer_ports
            ),
            return_exceptions=True,
        )
        errors = 0
        for result in results:
            if isinstance(result, dict):
                snapshots.append(result)
            else:
                errors += 1
        merged = merge_snapshots(snapshots)
        if errors:
            merged["peer_errors"] = errors
        return merged

    async def _fetch_peer_snapshot(self, port: int) -> dict:
        """One raw ``GET /metrics/local`` to a sibling's admin listener."""
        reader, writer = await asyncio.open_connection(self.config.host, port)
        try:
            writer.write(
                b"GET /metrics/local HTTP/1.1\r\n"
                b"Host: peer\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            length = 0
            for line in head.decode("latin-1").split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body = await reader.readexactly(length)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        return json.loads(body)


class ServerStartupError(RuntimeError):
    """The server's loop thread did not come up with a bound port."""


class ServerHandle:
    """A :class:`SegmentServer` running its event loop in a daemon thread.

    The synchronous face of the server for tests, the CLI, and the bench
    driver: construct, read ``base_url``, call :meth:`stop` (or use as a
    context manager). Thread-safe to stop more than once.

    Startup is verified, not assumed: the constructor waits on the loop
    thread's started event *and checks the wait result* — a thread that
    dies during startup (bind failure, loop setup failure) propagates its
    exception to the caller instead of handing back a handle with no
    port; a thread that silently never signals raises
    :class:`ServerStartupError` rather than letting callers proceed.
    """

    def __init__(self, server: SegmentServer, startup_timeout: float = 10.0) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._address: tuple[str, int] | None = None
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="segment-server", daemon=True
        )
        self._thread.start()
        signalled = self._started.wait(timeout=startup_timeout)
        if not signalled and not self._thread.is_alive():
            # The thread died without even reaching its exception guard —
            # give it a beat to flush, then report whatever it recorded.
            self._thread.join(timeout=1.0)
        if self._failure is not None:
            raise self._failure
        if self._address is None:
            if not self._thread.is_alive():
                raise ServerStartupError(
                    "segment server thread died during startup without "
                    "reporting an address or an error"
                )
            raise ServerStartupError(
                f"segment server failed to start within {startup_timeout:g}s"
            )

    def _run(self) -> None:
        try:
            asyncio.set_event_loop(self._loop)
            self._address = self._loop.run_until_complete(self.server.start())
        except BaseException as error:  # surface bind/setup failures to the caller
            self._failure = error
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        assert self._address is not None
        return self._address

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def update_shard_map(self, shard_map: ShardMap, peers=None) -> int:
        """Apply a new shard map (and optionally a peer table) on the
        server's loop thread; returns the number of pins dropped.

        This is the two-phase wiring a sharded tier needs: servers bind
        ephemeral ports first, then every node learns the full node →
        URL table once all siblings are up.
        """

        async def apply() -> int:
            return self.server.update_shard_map(shard_map, peers)

        future = asyncio.run_coroutine_threadsafe(apply(), self._loop)
        return future.result(timeout=10.0)

    def apply_control_plan(self, plan) -> dict:
        """Apply a control plan on the server's loop thread — the local
        actuator's entry point. Raises ``ValueError`` on a stale
        version, exactly as the wire endpoint answers 409."""

        async def apply() -> dict:
            return self.server.apply_control_plan(plan)

        future = asyncio.run_coroutine_threadsafe(apply(), self._loop)
        return future.result(timeout=30.0)

    def control_state(self) -> dict:
        """The server's live control-plane view, read on its loop."""

        async def read() -> dict:
            return self.server.control_state()

        future = asyncio.run_coroutine_threadsafe(read(), self._loop)
        return future.result(timeout=10.0)

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        future.result(timeout=self.server.config.drain_timeout + 10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server(
    storage,
    config: ServerConfig | None = None,
    registry: MetricsRegistry | None = None,
):
    """Start a segment server and hand back a handle.

    ``processes=1`` (the default): the server runs its event loop in a
    daemon thread of this process and returns a :class:`ServerHandle`.
    ``processes=N``: N worker processes share one listening port and a
    :class:`~repro.serve.multiproc.MultiProcessServerHandle` is returned
    — same ``address``/``base_url``/``stop()``/context-manager contract.
    Multi-process mode needs a disk-backed storage manager (each worker
    reopens the catalog from its root after the fork) and ignores
    ``registry`` (each worker owns one; ``/metrics`` merges them).
    """
    config = config or ServerConfig()
    if config.processes > 1:
        from repro.serve.multiproc import MultiProcessServerHandle

        catalog = getattr(storage, "catalog", None)
        if catalog is None:
            raise ValueError(
                "multi-process serving needs a disk-backed StorageManager "
                "(each worker reopens the catalog from its root); got "
                f"{type(storage).__name__}"
            )
        cache = getattr(storage, "segment_cache", None)
        cache_bytes = getattr(cache, "capacity_bytes", 0) if cache is not None else 0
        return MultiProcessServerHandle(catalog.root, cache_bytes, config)
    return ServerHandle(SegmentServer(storage, config, registry))
