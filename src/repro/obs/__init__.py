"""Observability: metrics registry and span tracing.

One :class:`MetricsRegistry` per :class:`~repro.core.server.VisualCloud`
instance collects everything the delivery path reports — cache traffic,
storage timings, per-window streaming behaviour, prediction activity —
and exports it as a JSON snapshot or Prometheus text (``repro metrics``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    QUANTILES,
    merge_snapshots,
)
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "QUANTILES",
    "SpanRecord",
    "Tracer",
    "merge_snapshots",
]
