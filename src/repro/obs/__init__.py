"""Observability: metrics registry and span tracing.

One :class:`MetricsRegistry` per :class:`~repro.core.server.VisualCloud`
instance collects everything the delivery path reports — cache traffic,
storage timings, per-window streaming behaviour, prediction activity —
and exports it as a JSON snapshot or Prometheus text (``repro metrics``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    QUANTILES,
    counter_deltas,
    merge_snapshots,
    series_label,
    snapshot_quantile,
)
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "QUANTILES",
    "SpanRecord",
    "Tracer",
    "counter_deltas",
    "merge_snapshots",
    "series_label",
    "snapshot_quantile",
]
