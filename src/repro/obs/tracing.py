"""Span-based tracing: wall-time per named stage of the hot path.

A span is a context manager around one unit of work::

    with tracer.span("storage.read_segment", video=name, tile=tile):
        ...

Closing the span records its wall-clock duration into the registry's
``<name>.seconds`` histogram (so quantiles are always live) and appends a
structured record — name, attributes, duration — to a bounded ring of
recent spans that operational tooling can inspect without grepping logs.
Attributes annotate the ring only; they never become metric labels, so
high-cardinality values (video names, tile coordinates) are safe.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class SpanRecord:
    """One finished (or in-progress) span."""

    name: str
    attrs: dict = field(default_factory=dict)
    started_at: float = 0.0  # wall clock (time.time), for ordering only
    seconds: float = 0.0

    def note(self, **attrs) -> None:
        """Attach extra attributes mid-span (e.g. bytes actually read)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": {key: _render(value) for key, value in self.attrs.items()},
            "started_at": self.started_at,
            "seconds": self.seconds,
        }


def _render(value) -> object:
    """Attribute values must survive JSON export; stringify the exotic."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Records spans into a registry and a bounded recent-span ring."""

    def __init__(self, registry=None, keep: int = 256) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._registry = registry
        self._recent: deque[SpanRecord] = deque(maxlen=keep)
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[SpanRecord]:
        """Time a block of work under ``name``; yields the span record."""
        record = SpanRecord(name=name, attrs=dict(attrs), started_at=time.time())
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - start
            if self._registry is not None:
                self._registry.histogram(f"{name}.seconds").observe(record.seconds)
            with self._lock:
                self._recent.append(record)

    def recent(self, name: str | None = None, limit: int | None = None) -> list[SpanRecord]:
        """Most recent spans, newest last, optionally filtered by name."""
        with self._lock:
            records = list(self._recent)
        if name is not None:
            records = [record for record in records if record.name == name]
        if limit is not None:
            records = records[-limit:]
        return records

    def snapshot(self) -> list[dict]:
        """JSON-able dump of the recent-span ring."""
        return [record.to_dict() for record in self.recent()]
