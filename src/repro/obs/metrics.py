"""The metrics registry: live counters, gauges, and histograms.

Every component of the system (storage manager, segment cache, streamers,
prediction service) reports into one :class:`MetricsRegistry`, so the
counters the delivery experiments are evaluated on — cache hit rates,
per-window stall and transfer timings, link utilisation — are built into
the hot path rather than re-derived per experiment.

Design constraints, in order:

* **Thread-safe and exact.** Sessions run concurrently; increments from a
  thread pool must land exactly. Every metric guards its series map with
  its own lock, and holding a registry lock never requires a metric lock
  (no ordering cycles).
* **Cheap.** A counter increment is a dict lookup and a float add under
  an uncontended lock; histograms keep bounded state (exact count/sum/
  min/max plus a sliding sample window for quantiles).
* **Exportable.** ``snapshot()`` is plain JSON; ``to_prometheus()`` is
  the Prometheus text exposition format (histograms rendered as
  summaries with live quantiles).

Labels are free-form keyword arguments at the call site::

    registry.counter("prediction.sessions").inc(kind="markov")

Keep label cardinality bounded (kinds, modes, small session counts) —
each distinct label set is a separate series held in memory.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque

from repro.obs.tracing import Tracer

#: Labels are stored as a canonical sorted tuple of (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL = re.compile(r"[^a-zA-Z0-9_]")

#: Quantiles reported by every histogram snapshot / export.
QUANTILES = (0.5, 0.9, 0.99)


def _label_key(labels: dict) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _series_name(name: str, key: LabelKey) -> str:
    """Human/JSON rendering: ``name`` or ``name{k=v,k2=v2}``."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


def _prom_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    inner = ",".join(
        f'{_PROM_LABEL.sub("_", k)}="{v}"' for k, v in pairs
    )
    return "{" + inner + "}"


class Metric:
    """Common series bookkeeping for every metric kind."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict[LabelKey, object] = {}

    def series(self) -> dict[LabelKey, object]:
        with self._lock:
            return dict(self._series)


class BoundCounter:
    """A counter pre-bound to one label set.

    The serve hot path increments the same few series millions of times;
    binding once hoists the label canonicalisation (sort + stringify)
    out of the per-request cost, leaving a dict add under the lock.
    """

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "Counter", key: LabelKey) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        with metric._lock:
            metric._series[self._key] = metric._series.get(self._key, 0.0) + amount


class BoundHistogram:
    """A histogram series pre-bound to one label set (see BoundCounter)."""

    __slots__ = ("_metric", "_series")

    def __init__(self, metric: "Histogram", key: LabelKey) -> None:
        self._metric = metric
        with metric._lock:
            series = metric._series.get(key)
            if series is None:
                series = metric._series[key] = _HistogramSeries(metric._keep)
        self._series = series

    def observe(self, value: float) -> None:
        with self._metric._lock:
            self._series.observe(float(value))


class Counter(Metric):
    """A monotonically increasing count (events, bytes, waits)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def labels(self, **labels) -> BoundCounter:
        """Bind one label set for repeated hot-path increments."""
        return BoundCounter(self, _label_key(labels))

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return float(sum(self._series.values()))


class Gauge(Metric):
    """A point-in-time value (cache bytes, utilisation, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


class _HistogramSeries:
    """Exact count/sum/min/max plus a sliding window for quantiles."""

    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    def __init__(self, keep: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.samples: deque[float] = deque(maxlen=keep)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.samples.append(value)

    def quantile(self, q: float) -> float:
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(self, include_samples: bool = False) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        ordered = sorted(self.samples)

        def at(q: float) -> float:
            return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]

        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
            **{f"p{int(q * 100)}": at(q) for q in QUANTILES},
        }
        if include_samples:
            out["samples"] = list(self.samples)
        return out


class Histogram(Metric):
    """A distribution with live quantiles (timings, sizes).

    Count/sum/min/max are exact over the metric's lifetime; quantiles are
    computed over a sliding window of the most recent ``keep`` samples,
    which is the operationally interesting view (recent behaviour) and
    bounds memory regardless of run length.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", keep: int = 2048) -> None:
        super().__init__(name, help)
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._keep = keep

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(self._keep)
            series.observe(float(value))

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0 if series is None else series.count

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0.0 if series is None else series.total

    def quantile(self, q: float, **labels) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            return float("nan") if series is None else series.quantile(q)

    def summary(self, **labels) -> dict:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return {"count": 0, "sum": 0.0} if series is None else series.summary()

    def labels(self, **labels) -> BoundHistogram:
        """Bind one label set for repeated hot-path observations."""
        return BoundHistogram(self, _label_key(labels))


class MetricsRegistry:
    """A named collection of metrics plus a span tracer.

    Components get-or-create metrics by name; asking for an existing name
    with a different kind is an error (it would silently fork the series).
    """

    def __init__(self, trace_keep: int = 256) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        self.tracer = Tracer(self, keep=trace_keep)

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", keep: int = 2048) -> Histogram:
        return self._get_or_create(Histogram, name, help, keep=keep)

    def span(self, name: str, **attrs):
        """Time a block; records ``<name>.seconds`` here (see Tracer)."""
        return self.tracer.span(name, **attrs)

    def metrics(self) -> list[Metric]:
        with self._lock:
            return list(self._metrics.values())

    # -- export ---------------------------------------------------------------

    def snapshot(self, include_samples: bool = False) -> dict:
        """A JSON-able dump of every series, plus recent spans.

        Shape::

            {"counters":   {"cache.hits": 12.0, "x{kind=a}": 3.0, ...},
             "gauges":     {...},
             "histograms": {"storage.read_segment.seconds":
                                {"count": .., "sum": .., "p50": .., ...}},
             "spans":      [{"name": .., "attrs": .., "seconds": ..}, ...]}

        With ``include_samples`` each histogram summary also carries its
        sliding sample window, so a sibling process can pool the samples
        into cross-worker quantiles (see :func:`merge_snapshots`).
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for metric in self.metrics():
            for key, series in metric.series().items():
                rendered = _series_name(metric.name, key)
                if isinstance(metric, Counter):
                    counters[rendered] = float(series)
                elif isinstance(metric, Gauge):
                    gauges[rendered] = float(series)
                elif isinstance(metric, Histogram):
                    histograms[rendered] = series.summary(include_samples)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": self.tracer.snapshot(),
        }

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4).

        Histograms are rendered as summaries: ``<name>{quantile="0.5"}``
        lines plus ``_sum``/``_count``, which needs no bucket
        configuration and matches what the quantile snapshot reports.
        """
        lines: list[str] = []
        for metric in sorted(self.metrics(), key=lambda m: m.name):
            prom_name = _PROM_NAME.sub("_", metric.name)
            series = metric.series()
            if not series:
                continue
            if metric.help:
                lines.append(f"# HELP {prom_name} {metric.help}")
            if isinstance(metric, Histogram):
                lines.append(f"# TYPE {prom_name} summary")
                for key, hist in sorted(series.items()):
                    for q in QUANTILES:
                        labels = _prom_labels(key, (("quantile", str(q)),))
                        lines.append(f"{prom_name}{labels} {hist.quantile(q):.9g}")
                    lines.append(f"{prom_name}_sum{_prom_labels(key)} {hist.total:.9g}")
                    lines.append(f"{prom_name}_count{_prom_labels(key)} {hist.count}")
            else:
                lines.append(f"# TYPE {prom_name} {metric.kind}")
                for key, value in sorted(series.items()):
                    lines.append(f"{prom_name}{_prom_labels(key)} {float(value):.9g}")
        return "\n".join(lines) + ("\n" if lines else "")


def counter_deltas(previous: dict, current: dict, prefix: str = "") -> dict[str, float]:
    """Per-series increments between two ``snapshot()`` dicts.

    The control plane's forecaster consumes *rates*, not totals: it
    polls the registry (or a server's ``/metrics``) every interval and
    needs how much each counter moved. Series absent from ``previous``
    count from zero (a new video just started taking traffic); a series
    that went *down* — a restarted worker, a replaced registry — clamps
    to its current value rather than reporting a negative rate.

    ``prefix`` restricts the diff to series whose rendered name starts
    with it (e.g. ``"serve.video_requests"``).
    """
    before = previous.get("counters", {}) if previous else {}
    deltas: dict[str, float] = {}
    for name, value in current.get("counters", {}).items():
        if prefix and not name.startswith(prefix):
            continue
        earlier = float(before.get(name, 0.0))
        value = float(value)
        deltas[name] = value - earlier if value >= earlier else value
    return deltas


def series_label(name: str, label: str) -> str | None:
    """Extract one label's value from a rendered series name.

    Snapshot keys render labels as ``name{k=v,k2=v2}``; the controller
    needs the ``video=`` value back out of ``serve.video_requests{...}``
    without re-parsing the whole registry. Returns None when the label
    is absent.
    """
    start = name.find("{")
    if start < 0 or not name.endswith("}"):
        return None
    for pair in name[start + 1 : -1].split(","):
        key, _, value = pair.partition("=")
        if key == label:
            return value
    return None


def snapshot_quantile(snapshot: dict, histogram: str, quantile: str) -> float:
    """One quantile out of a snapshot's histogram summary (NaN when the
    series or the tag is missing — callers treat NaN as "no signal")."""
    summary = snapshot.get("histograms", {}).get(histogram)
    if not summary:
        return math.nan
    value = summary.get(quantile)
    return float(value) if isinstance(value, (int, float)) else math.nan


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold per-worker ``snapshot()`` dicts into one fleet-wide view.

    Counters and gauges sum per series (gauges here are sizes — pinned
    bytes, in-flight requests — where the fleet total is the meaningful
    number). Histograms keep exact count/sum/min/max arithmetic; the
    quantiles come from pooling the workers' sample windows when *every*
    live worker carried one (``snapshot(include_samples=True)``), else
    from a count-weighted average of the per-worker quantiles — mixing
    the two would weight the merged quantiles entirely toward whichever
    workers happened to include samples. Spans are per-process debugging
    detail and are dropped from the merged view.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    series: dict[str, list[dict]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, summary in snap.get("histograms", {}).items():
            series.setdefault(name, []).append(summary)

    histograms: dict[str, dict] = {}
    for name, parts in series.items():
        live = [part for part in parts if part.get("count", 0) > 0]
        if not live:
            histograms[name] = {"count": 0, "sum": 0.0}
            continue
        count = sum(part["count"] for part in live)
        total = sum(part["sum"] for part in live)
        merged = {
            "count": count,
            "sum": total,
            "min": min(part["min"] for part in live),
            "max": max(part["max"] for part in live),
            "mean": total / count,
        }
        # Pool sample windows only when *every* live part carries one:
        # with a mixed fleet (one worker snapshotted with samples, a
        # sibling without), pooling would compute merged quantiles from
        # the sampled worker alone and silently drop the other worker's
        # distribution — the count-weighted average is honest about what
        # each part contributed.
        sampled = [part for part in live if part.get("samples")]
        if sampled and len(sampled) == len(live):
            pooled: list[float] = []
            for part in live:
                pooled.extend(part["samples"])
            pooled.sort()
            last = len(pooled) - 1
            for q in QUANTILES:
                merged[f"p{int(q * 100)}"] = pooled[min(last, max(0, round(q * last)))]
        else:
            for q in QUANTILES:
                tag = f"p{int(q * 100)}"
                with_tag = [part for part in live if tag in part]
                if not with_tag:
                    continue  # no part reported this quantile: omit, not 0.0
                tag_count = sum(part["count"] for part in with_tag)
                merged[tag] = (
                    sum(part[tag] * part["count"] for part in with_tag) / tag_count
                )
        histograms[name] = merged
    return {
        "workers": len(snapshots),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "spans": [],
    }
