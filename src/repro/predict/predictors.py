"""Head-orientation predictors.

All predictors share one online protocol: the streamer feeds them
orientation observations as they arrive (``observe``) and asks for the
expected orientation at a future time (``predict``). Tile-set prediction
— the thing the streamer actually consumes — is derived by intersecting
the predicted viewport with the tile grid, except for the Markov
predictor, which predicts tile probabilities directly and can hedge across
multiple likely tiles.
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

from repro.geometry.angles import clamp_phi, unwrap_theta, wrap_theta
from repro.geometry.grid import TileGrid
from repro.geometry.viewport import Orientation, Viewport
from repro.predict.traces import Trace


class Predictor(abc.ABC):
    """Online head-orientation predictor.

    ``history_window`` bounds how far back observations are retained;
    predictors that extrapolate use only this recent window, matching the
    latency budget of a live server.
    """

    def __init__(self, history_window: float = 2.0) -> None:
        if history_window <= 0:
            raise ValueError(f"history window must be positive, got {history_window}")
        self.history_window = history_window
        self._history: deque[tuple[float, float, float]] = deque()

    def reset(self) -> None:
        """Forget all observations (start of a new session)."""
        self._history.clear()

    def observe(self, time: float, orientation: Orientation) -> None:
        """Record an orientation report from the client."""
        if self._history and time <= self._history[-1][0]:
            raise ValueError(
                f"observations must be time-ordered; got {time} after {self._history[-1][0]}"
            )
        self._history.append((time, orientation.theta, orientation.phi))
        while self._history and self._history[0][0] < time - self.history_window:
            self._history.popleft()

    @property
    def last_observation(self) -> tuple[float, Orientation]:
        if not self._history:
            raise RuntimeError("predictor has no observations yet")
        time, theta, phi = self._history[-1]
        return time, Orientation(theta, phi)

    @abc.abstractmethod
    def predict(self, time: float) -> Orientation:
        """Expected orientation at the (future) absolute ``time``."""

    def predict_tiles(
        self,
        time: float,
        grid: TileGrid,
        viewport: Viewport,
        margin: int = 1,
    ) -> set[tuple[int, int]]:
        """Tiles expected to be visible at ``time``: the viewport around
        the predicted orientation, grown by ``margin`` rings of neighbours
        to hedge against prediction error."""
        predicted = self.predict(time)
        visible = viewport.visible_tiles(predicted, grid)
        return grid.expand(visible, margin=margin) if margin else visible

    def _history_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        times = np.array([entry[0] for entry in self._history])
        thetas = np.array([entry[1] for entry in self._history])
        phis = np.array([entry[2] for entry in self._history])
        return times, thetas, phis


class StaticPredictor(Predictor):
    """Assumes the viewer holds their current pose — the baseline every
    real predictor must beat, and surprisingly strong at short horizons."""

    def predict(self, time: float) -> Orientation:
        _, orientation = self.last_observation
        return orientation


class DeadReckoningPredictor(Predictor):
    """Constant-angular-velocity extrapolation from the recent window.

    Velocity is estimated by a least-squares slope over the history window
    (wrap-aware in azimuth), which filters sensor jitter better than a
    two-point difference.
    """

    def predict(self, time: float) -> Orientation:
        times, thetas, phis = self._history_arrays()
        last_time, last = self.last_observation
        if times.size < 2:
            return last
        horizon = time - last_time
        rel = times - times[-1]
        centered = rel - rel.mean()
        denom = float(np.sum(centered * centered))
        if denom == 0.0:
            return last
        theta_line = unwrap_theta(thetas)
        theta_rate = float(np.sum(centered * (theta_line - theta_line.mean()))) / denom
        phi_rate = float(np.sum(centered * (phis - phis.mean()))) / denom
        return Orientation(
            wrap_theta(last.theta + theta_rate * horizon),
            clamp_phi(last.phi + phi_rate * horizon),
        )


class LinearRegressionPredictor(Predictor):
    """Ridge-regularised linear fit of orientation against time.

    Fits a line *anchored at the latest observation* —
    ``angle(t) = angle_last + b * (t - t_last)`` — with an L2 penalty on
    the slope ``b``. As the penalty grows the slope shrinks to zero and
    the predictor degenerates to :class:`StaticPredictor`, so ``ridge``
    smoothly blends the two baselines.
    """

    def __init__(self, history_window: float = 2.0, ridge: float = 0.05) -> None:
        super().__init__(history_window)
        if ridge < 0:
            raise ValueError(f"ridge penalty must be non-negative, got {ridge}")
        self.ridge = ridge

    def _fit_slope(self, rel_times: np.ndarray, values: np.ndarray) -> float:
        """Ridge slope of a line through (0, values[-1])."""
        denom = float(np.sum(rel_times * rel_times)) + self.ridge
        return float(np.sum(rel_times * (values - values[-1]))) / denom

    def predict(self, time: float) -> Orientation:
        times, thetas, phis = self._history_arrays()
        last_time, last = self.last_observation
        if times.size < 3:
            return last
        rel = times - times[-1]
        horizon = time - last_time
        theta_line = unwrap_theta(thetas)
        theta_slope = self._fit_slope(rel, theta_line)
        phi_slope = self._fit_slope(rel, phis)
        return Orientation(
            wrap_theta(theta_line[-1] + theta_slope * horizon),
            clamp_phi(phis[-1] + phi_slope * horizon),
        )


class HybridPredictor(Predictor):
    """Motion-gated extrapolation: move only when the head is moving.

    Head traces alternate long fixations (where velocity estimates are
    pure jitter and extrapolation hurts) with pursuit/saccade episodes
    (where it helps). This predictor estimates angular speed over a short
    window and extrapolates — with damping — only above ``speed_gate``,
    holding the pose otherwise. Empirically it beats the static baseline
    at sub-second horizons and converges to it beyond, which is the best
    any memoryless kinematic model achieves on fixation-dominated traces.
    """

    def __init__(
        self,
        history_window: float = 0.4,
        speed_gate: float = 0.5,
        damping: float = 0.5,
    ) -> None:
        super().__init__(history_window)
        if speed_gate < 0:
            raise ValueError(f"speed gate must be non-negative, got {speed_gate}")
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self.speed_gate = speed_gate
        self.damping = damping

    def predict(self, time: float) -> Orientation:
        import math

        times, thetas, phis = self._history_arrays()
        last_time, last = self.last_observation
        if times.size < 3:
            return last
        rel = times - times[-1]
        centered = rel - rel.mean()
        denom = float(np.sum(centered * centered))
        if denom == 0.0:
            return last
        theta_line = unwrap_theta(thetas)
        theta_rate = float(np.sum(centered * (theta_line - theta_line.mean()))) / denom
        phi_rate = float(np.sum(centered * (phis - phis.mean()))) / denom
        # Angular speed on the sphere: azimuth motion shrinks with sin(phi).
        speed = math.hypot(theta_rate * math.sin(last.phi), phi_rate)
        if speed < self.speed_gate:
            return last
        horizon = time - last_time
        return Orientation(
            wrap_theta(last.theta + self.damping * theta_rate * horizon),
            clamp_phi(last.phi + self.damping * phi_rate * horizon),
        )


class MarkovPredictor(Predictor):
    """A trained tile-transition model over a discretised orientation grid.

    Offline, the storage manager trains one transition matrix per video
    from historical traces: ``P[i, j]`` is the probability that a viewer in
    tile ``i`` is in tile ``j`` one step (``step_duration``) later. Online,
    the predictor rolls the current tile's distribution forward
    ``ceil(horizon / step)`` steps and reports either the modal tile
    (:meth:`predict`) or the smallest tile set covering ``coverage``
    probability mass (:meth:`predict_tiles`).
    """

    def __init__(
        self,
        grid: TileGrid,
        step_duration: float = 0.5,
        coverage: float = 0.9,
        smoothing: float = 0.05,
        min_probability: float = 0.05,
        history_window: float = 2.0,
    ) -> None:
        super().__init__(history_window)
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        if step_duration <= 0:
            raise ValueError(f"step duration must be positive, got {step_duration}")
        if not 0.0 <= min_probability < 1.0:
            raise ValueError(f"min_probability must be in [0, 1), got {min_probability}")
        self.grid = grid
        self.step_duration = step_duration
        self.coverage = coverage
        self.smoothing = smoothing
        self.min_probability = min_probability
        self._transitions: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self._transitions is not None

    @property
    def transitions(self) -> np.ndarray:
        """The trained one-step transition matrix (rows sum to 1)."""
        if self._transitions is None:
            raise RuntimeError("predictor is not trained")
        return self._transitions

    @classmethod
    def from_transitions(
        cls,
        grid: TileGrid,
        transitions: np.ndarray,
        step_duration: float = 0.5,
        coverage: float = 0.9,
    ) -> "MarkovPredictor":
        """A session predictor sharing an offline-trained matrix."""
        predictor = cls(grid, step_duration=step_duration, coverage=coverage)
        if transitions.shape != (grid.tile_count, grid.tile_count):
            raise ValueError(
                f"transition matrix {transitions.shape} does not match "
                f"{grid.tile_count}-tile grid"
            )
        predictor._transitions = transitions
        return predictor

    def train(self, traces: list[Trace]) -> None:
        """Estimate the one-step transition matrix from a trace corpus.

        Counts tile-to-tile transitions at ``step_duration`` spacing with
        additive smoothing, so unseen transitions keep small nonzero
        probability (viewers do occasionally do new things).
        """
        if not traces:
            raise ValueError("training requires at least one trace")
        size = self.grid.tile_count
        counts = np.full((size, size), self.smoothing, dtype=np.float64)
        for trace in traces:
            resampled = trace.resample(1.0 / self.step_duration)
            tiles = self.grid.tiles_of(resampled.thetas, resampled.phis)
            np.add.at(counts, (tiles[:-1], tiles[1:]), 1.0)
        self._transitions = counts / counts.sum(axis=1, keepdims=True)

    def _distribution(self, horizon: float) -> np.ndarray:
        if self._transitions is None:
            raise RuntimeError("MarkovPredictor.predict requires train() first")
        _, last = self.last_observation
        row, col = self.grid.tile_of(last.theta, last.phi)
        state = np.zeros(self.grid.tile_count)
        state[self.grid.index_of(row, col)] = 1.0
        steps = max(0, int(np.ceil(horizon / self.step_duration - 1e-9)))
        for _ in range(steps):
            state = state @ self._transitions
        return state

    def predict(self, time: float) -> Orientation:
        last_time, last = self.last_observation
        distribution = self._distribution(time - last_time)
        row, col = self.grid.tile_at(int(np.argmax(distribution)))
        theta, phi = self.grid.rect(row, col).center()
        return Orientation(theta, phi)

    def predict_tiles(
        self,
        time: float,
        grid: TileGrid,
        viewport: Viewport,
        margin: int = 1,
    ) -> set[tuple[int, int]]:
        """The smallest tile set covering ``coverage`` of the predicted
        distribution, each expanded to its viewport footprint.

        Candidates below ``min_probability`` are never added (beyond the
        modal tile): a 2 %-likely gaze tile would drag its whole viewport
        footprint into the high-quality set, costing far more than the
        residual risk it hedges.
        """
        if grid != self.grid:
            raise ValueError("MarkovPredictor was trained on a different grid")
        last_time, _ = self.last_observation
        distribution = self._distribution(time - last_time)
        order = np.argsort(distribution)[::-1]
        mass = 0.0
        tiles: set[tuple[int, int]] = set()
        for index in order:
            if tiles and (
                mass >= self.coverage or distribution[index] < self.min_probability
            ):
                break
            row, col = grid.tile_at(int(index))
            theta, phi = grid.rect(row, col).center()
            tiles |= viewport.visible_tiles(Orientation(theta, phi), grid)
            mass += float(distribution[index])
        return grid.expand(tiles, margin=margin) if margin else tiles


class OraclePredictor(Predictor):
    """Perfect foresight from the ground-truth trace: the upper bound on
    what any predictor could save."""

    def __init__(self, trace: Trace) -> None:
        super().__init__(history_window=1e9)
        self.trace = trace

    def predict(self, time: float) -> Orientation:
        return self.trace.orientation_at(time)
