"""Prediction-quality metrics.

Two views of predictor quality matter to the system:

* *orientation error* — great-circle distance between predicted and true
  gaze at each horizon; the raw signal researchers report, and
* *tile scores* — whether the tiles the predictor chose to deliver in high
  quality actually covered what the viewer saw (recall), and how many
  extra tiles it paid for (overhead). Recall determines QoE; overhead
  determines bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import TileGrid
from repro.geometry.sphere import great_circle_distance
from repro.geometry.viewport import Orientation, Viewport
from repro.predict.predictors import Predictor
from repro.predict.traces import Trace


def orientation_error_by_horizon(
    predictor: Predictor,
    trace: Trace,
    horizons: list[float],
    warmup: float = 1.0,
    stride: float = 0.25,
) -> dict[float, float]:
    """Mean great-circle prediction error (radians) per horizon.

    Replays the trace through the predictor: at each evaluation instant the
    predictor has seen every sample up to that instant and predicts each
    horizon ahead; errors are averaged over instants whose target time
    still lies inside the trace.
    """
    if not horizons:
        raise ValueError("at least one horizon is required")
    predictor.reset()
    errors: dict[float, list[float]] = {h: [] for h in horizons}
    max_horizon = max(horizons)
    next_eval = trace.times[0] + warmup
    for time, theta, phi in zip(trace.times, trace.thetas, trace.phis):
        predictor.observe(float(time), Orientation(float(theta), float(phi)))
        if time < next_eval or time + max_horizon > trace.times[-1]:
            continue
        next_eval = time + stride
        for horizon in horizons:
            predicted = predictor.predict(float(time) + horizon)
            truth = trace.orientation_at(float(time) + horizon)
            errors[horizon].append(
                great_circle_distance(predicted.theta, predicted.phi, truth.theta, truth.phi)
            )
    return {
        horizon: float(np.mean(values)) if values else float("nan")
        for horizon, values in errors.items()
    }


@dataclass(frozen=True)
class TileScores:
    """Aggregate tile-prediction quality over a trace replay."""

    recall: float  # fraction of truly-visible tiles that were predicted
    precision: float  # fraction of predicted tiles that became visible
    mean_predicted: float  # average predicted-set size, in tiles
    evaluations: int

    @property
    def overhead(self) -> float:
        """Predicted tiles per truly-useful tile (1.0 = no waste)."""
        if self.precision == 0.0:
            return float("inf")
        return 1.0 / self.precision


def tile_prediction_scores(
    predictor: Predictor,
    trace: Trace,
    grid: TileGrid,
    viewport: Viewport,
    horizon: float,
    margin: int = 1,
    warmup: float = 1.0,
    stride: float = 0.5,
) -> TileScores:
    """Replay a trace and score the predicted-visible tile sets.

    At each evaluation instant the predictor proposes the tiles to deliver
    in high quality for playback at ``time + horizon``; the truth is the
    viewer's actual visible-tile set at that playback time.
    """
    predictor.reset()
    hits = 0
    visible_total = 0
    predicted_total = 0
    correct_predicted = 0
    evaluations = 0
    next_eval = trace.times[0] + warmup
    for time, theta, phi in zip(trace.times, trace.thetas, trace.phis):
        predictor.observe(float(time), Orientation(float(theta), float(phi)))
        if time < next_eval or time + horizon > trace.times[-1]:
            continue
        next_eval = time + stride
        predicted = predictor.predict_tiles(float(time) + horizon, grid, viewport, margin)
        truth_orientation = trace.orientation_at(float(time) + horizon)
        truth = viewport.visible_tiles(truth_orientation, grid)
        hits += len(predicted & truth)
        visible_total += len(truth)
        predicted_total += len(predicted)
        correct_predicted += len(predicted & truth)
        evaluations += 1
    if evaluations == 0:
        raise ValueError("trace too short for the requested horizon/warmup")
    return TileScores(
        recall=hits / visible_total if visible_total else float("nan"),
        precision=correct_predicted / predicted_total if predicted_total else 0.0,
        mean_predicted=predicted_total / evaluations,
        evaluations=evaluations,
    )
