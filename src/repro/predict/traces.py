"""Orientation traces and the synthetic head-movement model.

The original demonstration used recorded head-movement traces (Corbillon
et al.'s 360-degree head movement dataset). Those recordings are not
available offline, so this module substitutes a stochastic model of how
people watch 360 video, built from the regimes that the eye-tracking
literature describes:

* **fixation** — the head dwells near a point of interest with small
  corrective jitter (an Ornstein-Uhlenbeck pull toward the target);
* **smooth pursuit** — the head tracks a moving object at roughly constant
  angular velocity;
* **saccade** — a fast reorientation toward a new point of interest.

Points of interest are drawn from a hotspot mixture concentrated near the
equator, matching the strong equatorial bias of real traces. The model's
autocorrelation structure — long predictable stretches punctuated by
abrupt jumps — is the property that determines how well each predictor
class performs, which is what the substitution must preserve.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.angles import angular_difference, clamp_phi, wrap_theta
from repro.geometry.viewport import Orientation


@dataclass
class Trace:
    """A time series of head orientations, strictly increasing in time."""

    times: np.ndarray
    thetas: np.ndarray
    phis: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.thetas = np.asarray(self.thetas, dtype=np.float64)
        self.phis = np.asarray(self.phis, dtype=np.float64)
        if not (self.times.shape == self.thetas.shape == self.phis.shape):
            raise ValueError("times, thetas, phis must have identical shapes")
        if self.times.ndim != 1 or self.times.size == 0:
            raise ValueError("a trace must be a non-empty 1-D series")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("trace times must be strictly increasing")

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    def orientation_at(self, time: float) -> Orientation:
        """Orientation at an arbitrary time, interpolated wrap-aware.

        Times outside the trace clamp to the endpoints (a viewer holds
        their final pose).
        """
        if time <= self.times[0]:
            return Orientation(float(self.thetas[0]), float(self.phis[0]))
        if time >= self.times[-1]:
            return Orientation(float(self.thetas[-1]), float(self.phis[-1]))
        right = bisect.bisect_right(self.times, time)
        left = right - 1
        span = self.times[right] - self.times[left]
        fraction = (time - self.times[left]) / span
        delta_theta = angular_difference(self.thetas[right], self.thetas[left])
        theta = self.thetas[left] + fraction * delta_theta
        phi = self.phis[left] + fraction * (self.phis[right] - self.phis[left])
        return Orientation(float(wrap_theta(theta)), float(clamp_phi(phi)))

    def window(self, t0: float, t1: float) -> "Trace":
        """The sub-trace with times in ``[t0, t1]`` (must be non-empty)."""
        mask = (self.times >= t0) & (self.times <= t1)
        if not np.any(mask):
            raise ValueError(f"no samples in window [{t0}, {t1}]")
        return Trace(self.times[mask], self.thetas[mask], self.phis[mask])

    def save_csv(self, path) -> None:
        """Write the trace as ``time,theta,phi`` CSV (radians).

        The interchange format for recorded headset traces: when real
        recordings are available they drop in through :meth:`load_csv`
        with no other code change.
        """
        from pathlib import Path

        lines = ["time,theta,phi"]
        for time, theta, phi in zip(self.times, self.thetas, self.phis):
            lines.append(f"{float(time)!r},{float(theta)!r},{float(phi)!r}")
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load_csv(cls, path) -> "Trace":
        """Read a trace written by :meth:`save_csv` (or any compatible
        ``time,theta,phi`` file; angles in radians, header required)."""
        from pathlib import Path

        lines = Path(path).read_text().strip().splitlines()
        if not lines or lines[0].strip().lower() != "time,theta,phi":
            raise ValueError(f"{path}: expected a 'time,theta,phi' header")
        times, thetas, phis = [], [], []
        for number, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise ValueError(f"{path}:{number}: expected 3 fields, got {len(parts)}")
            try:
                times.append(float(parts[0]))
                thetas.append(float(parts[1]))
                phis.append(float(parts[2]))
            except ValueError as error:
                raise ValueError(f"{path}:{number}: {error}") from error
        return cls(np.array(times), np.array(thetas), np.array(phis))

    def resample(self, rate: float) -> "Trace":
        """A copy sampled at a uniform ``rate`` Hz via interpolation."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        count = max(2, int(round(self.duration * rate)) + 1)
        times = np.linspace(self.times[0], self.times[-1], count)
        orientations = [self.orientation_at(float(t)) for t in times]
        return Trace(
            times,
            np.array([o.theta for o in orientations]),
            np.array([o.phi for o in orientations]),
        )


@dataclass(frozen=True)
class Hotspot:
    """A point of interest: viewers' gaze targets cluster around these."""

    theta: float
    phi: float
    spread: float = 0.3  # radian std-dev of targets drawn from this hotspot
    weight: float = 1.0


#: Default hotspot layout: three equatorial points of interest, one raised —
#: a generic stand-in for "the stage", "the street", "the sky ride".
DEFAULT_HOTSPOTS = (
    Hotspot(theta=0.0, phi=math.pi / 2, spread=0.25, weight=3.0),
    Hotspot(theta=math.pi * 2 / 3, phi=math.pi / 2, spread=0.35, weight=2.0),
    Hotspot(theta=math.pi * 4 / 3, phi=math.pi / 2.6, spread=0.3, weight=1.0),
)


@dataclass
class HeadMovementModel:
    """Regime-switching generator of synthetic head-movement traces.

    Parameters are the knobs that control predictability: longer fixations
    and fewer saccades make every predictor look good; the defaults are
    tuned so a ~1-second horizon is mostly predictable while ~4 seconds is
    not — the qualitative regime reported for real traces.
    """

    hotspots: tuple[Hotspot, ...] = DEFAULT_HOTSPOTS
    fixation_duration_mean: float = 2.5  # seconds dwelling per target
    pursuit_probability: float = 0.3  # chance a dwell is a moving pursuit
    pursuit_speed: float = 0.35  # rad/s drift during pursuit
    saccade_speed: float = 4.0  # rad/s during reorientation
    jitter: float = 0.02  # rad/sqrt(s) fixation noise
    pull: float = 4.0  # 1/s OU pull toward the target

    def _draw_target(self, rng: np.random.Generator) -> tuple[float, float]:
        weights = np.array([spot.weight for spot in self.hotspots])
        spot = self.hotspots[rng.choice(len(self.hotspots), p=weights / weights.sum())]
        theta = wrap_theta(spot.theta + rng.normal(0.0, spot.spread))
        phi = clamp_phi(spot.phi + rng.normal(0.0, spot.spread * 0.6))
        return float(theta), float(phi)

    def generate(self, duration: float, rate: float = 30.0, seed: int = 0) -> Trace:
        """Generate a ``duration``-second trace sampled at ``rate`` Hz."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        rng = np.random.default_rng(seed)
        dt = 1.0 / rate
        count = int(round(duration * rate)) + 1
        times = np.arange(count) * dt
        thetas = np.empty(count)
        phis = np.empty(count)

        theta, phi = self._draw_target(rng)
        target_theta, target_phi = theta, phi
        pursuit_velocity = 0.0
        regime_end = rng.exponential(self.fixation_duration_mean)
        pursuing = False
        sqrt_dt = math.sqrt(dt)

        for i, t in enumerate(times):
            if t >= regime_end:
                target_theta, target_phi = self._draw_target(rng)
                pursuing = rng.random() < self.pursuit_probability
                pursuit_velocity = (
                    rng.choice([-1.0, 1.0]) * self.pursuit_speed if pursuing else 0.0
                )
                regime_end = t + rng.exponential(self.fixation_duration_mean)
            if pursuing:
                target_theta = wrap_theta(target_theta + pursuit_velocity * dt)
            # Move toward the target: saccade-speed-limited pull plus jitter.
            d_theta = angular_difference(target_theta, theta)
            d_phi = target_phi - phi
            step_theta = np.clip(self.pull * d_theta * dt, -self.saccade_speed * dt, self.saccade_speed * dt)
            step_phi = np.clip(self.pull * d_phi * dt, -self.saccade_speed * dt, self.saccade_speed * dt)
            theta = wrap_theta(theta + step_theta + rng.normal(0.0, self.jitter) * sqrt_dt)
            phi = clamp_phi(phi + step_phi + rng.normal(0.0, self.jitter * 0.6) * sqrt_dt)
            thetas[i] = theta
            phis[i] = phi
        return Trace(times, thetas, phis)

    def generate_corpus(
        self, users: int, duration: float, rate: float = 30.0, seed: int = 0
    ) -> list[Trace]:
        """Independent traces for ``users`` viewers of the same content."""
        return [
            self.generate(duration, rate=rate, seed=seed * 10_000 + user)
            for user in range(users)
        ]


def raster_scan_trace(
    duration: float,
    rate: float = 30.0,
    dwell: float = 1.0,
    grid_rows: int = 4,
    grid_cols: int = 4,
) -> Trace:
    """The deterministic trace the demo used to emulate looking around:
    gaze advances through tile centers in raster order, one per ``dwell``."""
    count = int(round(duration * rate)) + 1
    times = np.arange(count) / rate
    cells = grid_rows * grid_cols
    indices = (times // dwell).astype(np.int64) % cells
    rows, cols = np.divmod(indices, grid_cols)
    thetas = (cols + 0.5) * (2.0 * math.pi / grid_cols)
    phis = (rows + 0.5) * (math.pi / grid_rows)
    return Trace(times, thetas, phis)


def circular_pan_trace(duration: float, rate: float = 30.0, period: float = 10.0) -> Trace:
    """A smooth equatorial pan completing a revolution every ``period`` s —
    the most predictable possible motion, an upper-bound workload."""
    count = int(round(duration * rate)) + 1
    times = np.arange(count) / rate
    thetas = (2.0 * math.pi * times / period) % (2.0 * math.pi)
    phis = np.full(count, math.pi / 2)
    return Trace(times, thetas, phis)
