"""Shared fixtures: a tiny ingested database, traces, and frames.

Everything here is deliberately small (tiny rasters, short clips) so the
full suite stays fast; realism lives in the benchmarks.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro import IngestConfig, Quality, TileGrid, VisualCloud
from repro.video.frame import Frame
from repro.workloads.videos import synthetic_video

# CI runs the property suites under a pinned profile so a red build is
# reproducible locally: HYPOTHESIS_PROFILE=shard-ci derandomizes example
# generation and drops the per-example deadline (shared CI runners stall).
settings.register_profile("shard-ci", max_examples=50, deadline=None, derandomize=True)
settings.register_profile("dev", max_examples=50, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def tiny_frames() -> list[Frame]:
    """Six 64x32 frames of moderately compressible synthetic content."""
    return list(
        synthetic_video("venice", width=64, height=32, fps=4.0, duration=1.5, seed=11)
    )


@pytest.fixture(scope="session")
def gradient_frame() -> Frame:
    """A single smooth frame with full-range luma."""
    x = np.linspace(0, 255, 64)
    y = np.linspace(0, 255, 32)
    luma = ((x[None, :] + y[:, None]) / 2).astype(np.uint8)
    return Frame.from_luma(luma)


@pytest.fixture(scope="session")
def session_db(tmp_path_factory) -> VisualCloud:
    """A database with one small stored video ('clip'), shared read-only.

    Tests that mutate the catalog must use the ``db`` fixture instead.
    """
    root = tmp_path_factory.mktemp("visualcloud")
    db = VisualCloud(root)
    config = IngestConfig(
        grid=TileGrid(2, 2),
        qualities=(Quality.HIGH, Quality.LOW),
        gop_frames=4,
        fps=4.0,
    )
    frames = synthetic_video("venice", width=64, height=32, fps=4.0, duration=3.0, seed=5)
    db.ingest("clip", frames, config)
    return db


@pytest.fixture()
def db(tmp_path) -> VisualCloud:
    """A fresh, empty database per test."""
    return VisualCloud(tmp_path)
