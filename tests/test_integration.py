"""End-to-end integration tests: the demo's full flow on one database.

These are slower than the unit suite and cross every component boundary:
procedural content -> ingest -> predictor training -> adaptive sessions
-> query pipelines -> export — asserting cross-component invariants that
unit tests cannot see.
"""

import math

import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    NaiveFullQuality,
    PredictiveTilingPolicy,
    Quality,
    Scan,
    SessionConfig,
    TileGrid,
    UniformAdaptive,
    VisualCloud,
)
from repro.core import udfs
from repro.core.export import decode_export, export_video
from repro.stream.estimator import HarmonicMeanEstimator
from repro.video.frame import psnr
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

WIDTH, HEIGHT = 128, 64
FPS = 8.0
DURATION = 4.0


@pytest.fixture(scope="module")
def demo_db(tmp_path_factory) -> VisualCloud:
    db = VisualCloud(tmp_path_factory.mktemp("demo"))
    config = IngestConfig(
        grid=TileGrid(2, 4),
        qualities=(Quality.HIGH, Quality.LOW, Quality.THUMBNAIL),
        gop_frames=8,
        fps=FPS,
    )
    frames = synthetic_video(
        "venice", width=WIDTH, height=HEIGHT, fps=FPS, duration=DURATION, seed=77
    )
    db.ingest("demo", frames, config)
    population = ViewerPopulation(seed=13)
    db.train_predictor(
        "demo", [population.trace(user, DURATION, rate=10.0) for user in range(4)]
    )
    return db


@pytest.fixture(scope="module")
def viewer():
    return ViewerPopulation(seed=13).trace(9, DURATION, rate=10.0)


class TestFullDeliveryFlow:
    def test_predictive_beats_naive_on_bytes_and_ties_on_viewport(self, demo_db, viewer):
        """The demo's two-sided claim, end to end on one database."""
        manifest = demo_db.storage.build_manifest("demo")
        rate = sum(
            manifest.full_sphere_size(w, Quality.HIGH)
            for w in range(manifest.window_count)
        ) / manifest.duration
        naive = demo_db.serve(
            "demo",
            (
                viewer,
                SessionConfig(
                    policy=NaiveFullQuality(),
                    bandwidth=ConstantBandwidth(rate),
                    evaluate_quality=True,
                ),
            ),
        )
        predictive = demo_db.serve(
            "demo",
            (
                viewer,
                SessionConfig(
                    policy=PredictiveTilingPolicy(),
                    bandwidth=ConstantBandwidth(rate),
                    predictor="static",
                    # On this coarse 2x4 grid a margin ring covers the whole
                    # sphere; the viewport footprint alone is the hedge.
                    margin=0,
                    evaluate_quality=True,
                ),
            ),
        )
        assert predictive.bytes_saved_vs(naive) > 0.15
        assert predictive.mean_viewport_psnr > 40
        assert predictive.stall_time == 0.0

    def test_all_policies_and_predictors_compose(self, demo_db, viewer):
        policies = [NaiveFullQuality(), UniformAdaptive(), PredictiveTilingPolicy()]
        predictors = ["static", "deadreckoning", "linear", "markov", "oracle"]
        for policy in policies:
            for predictor in predictors:
                report = demo_db.serve(
                    "demo",
                    (
                        viewer,
                        SessionConfig(
                            policy=policy,
                            bandwidth=ConstantBandwidth(30_000),
                            predictor=predictor,
                            estimator=HarmonicMeanEstimator(),
                        ),
                    ),
                )
                assert len(report.records) == 4

    def test_delivered_bytes_decode_to_valid_frames(self, demo_db, viewer):
        """The bytes the streamer accounts for must decode to the frames
        the client renders — delivery is not a size model."""
        manifest = demo_db.storage.build_manifest("demo")
        report = demo_db.serve(
            "demo",
            (
                viewer,
                SessionConfig(
                    policy=PredictiveTilingPolicy(),
                    bandwidth=ConstantBandwidth(30_000),
                    predictor="static",
                ),
            ),
        )
        for record in report.records[:2]:
            window = demo_db.storage.read_window("demo", record.window, record.quality_map)
            assert window.byte_size == record.bytes_sent
            frames = window.decode()
            assert len(frames) == 8
            assert frames[0].width == WIDTH


class TestQueryOverServedVideo:
    def test_query_result_is_itself_servable(self, demo_db):
        """A stored full-ladder re-encode round-trips into a servable video."""
        for quality in (Quality.HIGH, Quality.LOW):
            demo_db.execute(
                Scan("demo", quality=quality).store("requant")
            )
        meta = demo_db.meta("requant")
        assert meta.version == 2  # two stores, two versions
        # The second version holds the LOW windows; serve it raw.
        trace = ViewerPopulation(seed=1).trace(0, DURATION, rate=10.0)
        manifest = demo_db.storage.build_manifest("requant")
        report = demo_db.serve(
            "requant",
            (
                trace,
                SessionConfig(
                    policy=NaiveFullQuality(), bandwidth=ConstantBandwidth(1e6)
                ),
            ),
        )
        assert len(report.records) == manifest.window_count

    def test_map_store_export_decode_chain(self, demo_db, tmp_path):
        demo_db.execute(Scan("demo").map(udfs.invert).store("negative"))
        target = tmp_path / "negative.mp4"
        export_video(demo_db.storage, "negative", target)
        frames = decode_export(target)
        original = demo_db.storage.decode_window("demo", 0, Quality.HIGH)
        # Inverted content decoded from the export matches the inverted
        # original up to one re-encode generation.
        inverted = udfs.invert(original[0])
        assert psnr(inverted, frames[0]) > 28


class TestConcurrentViewStability:
    def test_sessions_do_not_interfere(self, demo_db):
        """Serving other viewers must not change what one viewer gets."""
        population = ViewerPopulation(seed=99)
        target_trace = population.trace(0, DURATION, rate=10.0)

        def run_target():
            return demo_db.serve(
                "demo",
                (
                    target_trace,
                    SessionConfig(
                        policy=PredictiveTilingPolicy(),
                        bandwidth=ConstantBandwidth(25_000),
                        predictor="static",
                    ),
                ),
            )

        before = run_target()
        for user in range(1, 4):
            demo_db.serve(
                "demo",
                (
                    population.trace(user, DURATION, rate=10.0),
                    SessionConfig(
                        policy=UniformAdaptive(), bandwidth=ConstantBandwidth(9_000)
                    ),
                ),
            )
        after = run_target()
        assert before.total_bytes == after.total_bytes
        assert [r.quality_map for r in before.records] == [
            r.quality_map for r in after.records
        ]
