"""Tests for the observability subsystem (metrics registry + tracer)."""

import math
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import MetricsRegistry, QUANTILES, Tracer


class TestCounter:
    def test_starts_at_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("x").value() == 0.0
        assert registry.counter("x").total() == 0.0

    def test_increments(self):
        counter = MetricsRegistry().counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_are_separate_series(self):
        counter = MetricsRegistry().counter("x")
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.value(kind="a") == 1.0
        assert counter.value(kind="b") == 2.0
        assert counter.value() == 0.0  # unlabeled series untouched
        assert counter.total() == 3.0

    def test_label_order_is_canonical(self):
        counter = MetricsRegistry().counter("x")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0


class TestGauge:
    def test_set_and_read(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(7.0)
        assert gauge.value() == 7.0

    def test_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc(3)
        gauge.dec(1)
        assert gauge.value() == 2.0


class TestHistogram:
    def test_count_sum(self):
        hist = MetricsRegistry().histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(6.0)

    def test_quantiles(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(101):
            hist.observe(float(value))
        assert hist.quantile(0.5) == pytest.approx(50.0)
        assert hist.quantile(0.99) == pytest.approx(99.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 100.0

    def test_quantile_of_empty_is_nan(self):
        assert math.isnan(MetricsRegistry().histogram("h").quantile(0.5))

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h").quantile(1.5)

    def test_summary_shape(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(2.0)
        hist.observe(4.0)
        summary = hist.summary()
        assert summary["count"] == 2
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["min"] == 2.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(3.0)
        for q in QUANTILES:
            assert f"p{int(q * 100)}" in summary

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0, "sum": 0.0}

    def test_sliding_window_keeps_exact_count(self):
        """Quantiles slide; count/sum stay exact over the lifetime."""
        hist = MetricsRegistry().histogram("h", keep=4)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count() == 100
        # Window holds only the last 4 samples: 96..99.
        assert hist.quantile(0.0) == 96.0

    def test_rejects_bad_keep(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", keep=0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.counter("c").inc(3, kind="a")
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == 2.0
        assert snapshot["counters"]["c{kind=a}"] == 3.0
        assert snapshot["gauges"]["g"] == 1.5
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["spans"] == []

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        with registry.span("work", video="clip"):
            pass
        json.dumps(registry.snapshot())  # must not raise


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits", "cache lookups served").inc(5)
        registry.gauge("cache.bytes").set(128)
        text = registry.to_prometheus()
        assert "# TYPE cache_hits counter" in text
        assert "cache_hits 5" in text
        assert "# HELP cache_hits cache lookups served" in text
        assert "cache_bytes 128" in text

    def test_labels_rendered(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, kind="markov")
        assert 'c{kind="markov"} 2' in registry.to_prometheus()

    def test_histogram_rendered_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("stream.transfer_seconds")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        text = registry.to_prometheus()
        assert "# TYPE stream_transfer_seconds summary" in text
        assert 'stream_transfer_seconds{quantile="0.5"}' in text
        assert "stream_transfer_seconds_count 3" in text
        assert "stream_transfer_seconds_sum 0.6" in text

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestTracer:
    def test_span_records_duration_histogram(self):
        registry = MetricsRegistry()
        with registry.span("storage.read_segment", video="clip", tile=(0, 0)):
            pass
        hist = registry.histogram("storage.read_segment.seconds")
        assert hist.count() == 1
        assert hist.sum() >= 0.0

    def test_recent_filtered_by_name(self):
        registry = MetricsRegistry()
        with registry.span("a"):
            pass
        with registry.span("b"):
            pass
        recent = registry.tracer.recent(name="a")
        assert [span.name for span in recent] == ["a"]

    def test_span_note_adds_attrs(self):
        registry = MetricsRegistry()
        with registry.span("work") as span:
            span.note(segments=9)
        assert registry.tracer.recent()[-1].attrs["segments"] == 9

    def test_span_recorded_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("explodes"):
                raise RuntimeError("boom")
        assert registry.histogram("explodes.seconds").count() == 1

    def test_ring_is_bounded(self):
        tracer = Tracer(None, keep=4)
        for index in range(10):
            with tracer.span("s", index=index):
                pass
        recent = tracer.recent()
        assert len(recent) == 4
        assert recent[-1].attrs["index"] == 9


class TestConcurrency:
    """Parallel updates from a thread pool must land exactly."""

    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        workers, per_worker = 8, 2000

        def pound(_):
            for _ in range(per_worker):
                counter.inc()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(pound, range(workers)))
        assert counter.value() == workers * per_worker

    def test_labeled_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        workers, per_worker = 6, 1000

        def pound(worker):
            for _ in range(per_worker):
                counter.inc(kind=str(worker % 2))

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(pound, range(workers)))
        assert counter.total() == workers * per_worker
        assert counter.value(kind="0") == 3 * per_worker
        assert counter.value(kind="1") == 3 * per_worker

    def test_histogram_observations_are_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        workers, per_worker = 8, 1000

        def pound(_):
            for _ in range(per_worker):
                hist.observe(1.0)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(pound, range(workers)))
        assert hist.count() == workers * per_worker
        assert hist.sum() == pytest.approx(workers * per_worker)

    def test_get_or_create_race_yields_one_metric(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)
        metrics = []

        def create():
            barrier.wait()
            metrics.append(registry.counter("raced"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(metric is metrics[0] for metric in metrics)
