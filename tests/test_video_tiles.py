"""Unit tests for motion-constrained tiles and homomorphic operators."""

import numpy as np
import pytest

from repro.geometry.grid import TileGrid
from repro.video.frame import Frame, psnr
from repro.video.quality import Quality
from repro.video.tiles import TiledGop, TiledVideoCodec
from repro.workloads.videos import checkerboard_video


@pytest.fixture(scope="module")
def codec() -> TiledVideoCodec:
    return TiledVideoCodec(TileGrid(2, 4), width=64, height=32)


@pytest.fixture(scope="module")
def frames() -> list:
    return checkerboard_video(width=64, height=32, frames=4)


@pytest.fixture(scope="module")
def tiled(codec, frames) -> TiledGop:
    return codec.encode_gop(frames, Quality.HIGH)


class TestCodecValidation:
    def test_rejects_unaligned_grid(self):
        with pytest.raises(ValueError):
            TiledVideoCodec(TileGrid(2, 4), width=60, height=32)

    def test_rejects_wrong_frame_size(self, codec):
        with pytest.raises(ValueError):
            codec.encode_gop([Frame.blank(32, 32)], Quality.HIGH)

    def test_rejects_empty_gop(self, codec):
        with pytest.raises(ValueError):
            codec.encode_gop([], Quality.HIGH)


class TestEncodeDecode:
    def test_all_tiles_present(self, tiled, codec):
        assert set(tiled.payloads) == set(codec.grid.tiles())

    def test_decode_composites_faithfully(self, tiled, frames):
        decoded = tiled.decode()
        assert len(decoded) == len(frames)
        for original, restored in zip(frames, decoded):
            assert psnr(original, restored) > 30

    def test_partial_encode(self, codec, frames):
        subset = {(0, 0), (1, 3)}
        tiled = codec.encode_gop(frames, Quality.HIGH, tiles=subset)
        assert set(tiled.payloads) == subset

    def test_absent_tiles_decode_grey(self, codec, frames):
        tiled = codec.encode_gop(frames, Quality.HIGH, tiles={(0, 0)})
        decoded = tiled.decode()
        # Pixels far from tile (0,0) are the flat-grey placeholder.
        assert abs(int(decoded[0].y[-1, -1]) - 128) <= 1

    def test_decode_single_tile(self, tiled, codec, frames):
        tile_frames = tiled.decode_tile(0, 1)
        assert tile_frames[0].width == codec.tile_width
        reference = frames[0].crop(16, 0, 32, 16)
        assert psnr(reference, tile_frames[0]) > 30

    def test_decode_missing_tile(self, codec, frames):
        tiled = codec.encode_gop(frames, Quality.HIGH, tiles={(0, 0)})
        with pytest.raises(KeyError):
            tiled.decode_tile(1, 1)

    def test_mixed_quality_encode(self, codec, frames):
        quality_map = {tile: Quality.LOW for tile in codec.grid.tiles()}
        quality_map[(0, 0)] = Quality.HIGH
        tiled = codec.encode_gop_mixed(frames, quality_map)
        assert tiled.tile_quality(0, 0) is Quality.HIGH
        assert tiled.tile_quality(1, 1) is Quality.LOW
        assert len(tiled.payloads[(0, 0)]) > len(tiled.payloads[(0, 1)])


class TestHomomorphicOps:
    def test_select_subsets_bytes_untouched(self, tiled):
        subset = tiled.select({(0, 0), (0, 1)})
        assert subset.payloads[(0, 0)] is tiled.payloads[(0, 0)]
        assert set(subset.payloads) == {(0, 0), (0, 1)}

    def test_select_missing_tile(self, codec, frames):
        partial = codec.encode_gop(frames, Quality.HIGH, tiles={(0, 0)})
        with pytest.raises(KeyError):
            partial.select({(0, 1)})

    def test_union_disjoint(self, tiled):
        left = tiled.select({(0, 0)})
        right = tiled.select({(1, 1)})
        union = left.union(right)
        assert set(union.payloads) == {(0, 0), (1, 1)}

    def test_union_overlap_rejected(self, tiled):
        with pytest.raises(ValueError):
            tiled.select({(0, 0)}).union(tiled.select({(0, 0), (1, 1)}))

    def test_union_layout_mismatch(self, tiled, frames):
        other_codec = TiledVideoCodec(TileGrid(1, 1), 64, 32)
        other = other_codec.encode_gop(frames, Quality.HIGH)
        with pytest.raises(ValueError):
            tiled.union(other)

    def test_replace_prefers_other(self, codec, frames):
        base = codec.encode_gop(frames, Quality.LOW)
        patch = codec.encode_gop(frames, Quality.HIGH, tiles={(0, 2)})
        merged = base.replace(patch)
        assert merged.tile_quality(0, 2) is Quality.HIGH
        assert merged.tile_quality(0, 0) is Quality.LOW

    def test_select_then_union_reconstructs(self, tiled, frames):
        tiles = list(tiled.payloads)
        left = tiled.select(set(tiles[:3]))
        right = tiled.select(set(tiles[3:]))
        rebuilt = left.union(right)
        assert rebuilt.decode()[0].equals(tiled.decode()[0])

    def test_byte_size_sums_payloads(self, tiled):
        assert tiled.byte_size == sum(len(p) for p in tiled.payloads.values())


class TestSerialisation:
    def test_round_trip(self, tiled):
        rebuilt = TiledGop.from_bytes(tiled.to_bytes())
        assert rebuilt.payloads == tiled.payloads
        assert (rebuilt.width, rebuilt.height) == (tiled.width, tiled.height)
        assert rebuilt.grid == tiled.grid
        assert rebuilt.frame_count == tiled.frame_count

    def test_round_trip_with_absent_tiles(self, codec, frames):
        partial = codec.encode_gop(frames, Quality.MEDIUM, tiles={(1, 2)})
        rebuilt = TiledGop.from_bytes(partial.to_bytes())
        assert set(rebuilt.payloads) == {(1, 2)}

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            TiledGop.from_bytes(b"NOPE" + b"\x00" * 32)

    def test_truncated(self, tiled):
        with pytest.raises(ValueError):
            TiledGop.from_bytes(tiled.to_bytes()[:10])

    def test_pixel_rect(self, tiled):
        assert tiled.pixel_rect(0, 0) == (0, 0, 16, 16)
        assert tiled.pixel_rect(1, 3) == (48, 16, 64, 32)

    def test_pixel_rect_bounds(self, tiled):
        with pytest.raises(IndexError):
            tiled.pixel_rect(2, 0)


class TestMotionConstraint:
    def test_tile_bytes_independent_of_neighbours(self, codec, frames):
        """Editing one tile's content must not change other tiles' bytes —
        the motion-constraint property homomorphic ops rely on."""
        altered_frames = []
        for frame in frames:
            patch = Frame.blank(16, 16, luma=255)
            altered_frames.append(frame.paste(patch, 0, 0))  # only tile (0,0)
        original = codec.encode_gop(frames, Quality.HIGH)
        altered = codec.encode_gop(altered_frames, Quality.HIGH)
        assert original.payloads[(0, 0)] != altered.payloads[(0, 0)]
        for tile in codec.grid.tiles():
            if tile != (0, 0):
                assert original.payloads[tile] == altered.payloads[tile]


class TestConcat:
    def test_concat_decodes_to_concatenation(self, codec, frames):
        first = codec.encode_gop(frames[:2], Quality.HIGH)
        second = codec.encode_gop(frames[2:], Quality.HIGH)
        merged = TiledGop.concat([first, second])
        assert merged.frame_count == 4
        decoded = merged.decode()
        reference = first.decode() + second.decode()
        assert all(a.equals(b) for a, b in zip(decoded, reference))

    def test_concat_requires_same_tiles(self, codec, frames):
        first = codec.encode_gop(frames[:2], Quality.HIGH, tiles={(0, 0)})
        second = codec.encode_gop(frames[2:], Quality.HIGH, tiles={(0, 1)})
        with pytest.raises(ValueError):
            TiledGop.concat([first, second])

    def test_concat_rejects_layout_mismatch(self, codec, frames):
        other = TiledVideoCodec(TileGrid(1, 1), 64, 32)
        first = codec.encode_gop(frames[:2], Quality.HIGH)
        second = other.encode_gop(frames[2:], Quality.HIGH)
        with pytest.raises(ValueError):
            TiledGop.concat([first, second])

    def test_concat_empty(self):
        with pytest.raises(ValueError):
            TiledGop.concat([])

    def test_concat_mixed_qualities_per_tile(self, codec, frames):
        quality_map = {tile: Quality.LOW for tile in codec.grid.tiles()}
        quality_map[(0, 0)] = Quality.HIGH
        first = codec.encode_gop_mixed(frames[:2], quality_map)
        second = codec.encode_gop_mixed(frames[2:], quality_map)
        merged = TiledGop.concat([first, second])
        assert merged.tile_quality(0, 0) is Quality.HIGH
        assert merged.tile_quality(1, 1) is Quality.LOW
