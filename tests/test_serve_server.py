"""The asyncio segment server: endpoints, identity, concurrency, shutdown."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro import Quality
from repro.core.errors import SegmentNotFoundError
from repro.serve import HttpSegmentClient, ServerConfig, start_server
from repro.stream.dash import Manifest, SegmentKey


@pytest.fixture()
def server(session_db):
    handle = start_server(session_db.storage, ServerConfig(drain_timeout=2.0))
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with HttpSegmentClient(server.base_url) as client:
        yield client


class TestManifestEndpoint:
    def test_wire_manifest_equals_local_build(self, session_db, client):
        local = session_db.storage.build_manifest("clip")
        wire = client.fetch_manifest("clip")
        assert wire.segment_sizes == local.segment_sizes
        assert wire.grid == local.grid
        assert wire.qualities == local.qualities
        assert wire.window_count == local.window_count

    def test_unknown_video_is_not_found(self, client):
        with pytest.raises(SegmentNotFoundError):
            client.fetch_manifest("nope")

    def test_manifest_is_plain_json(self, server):
        with urllib.request.urlopen(f"{server.base_url}/manifest/clip") as response:
            assert response.headers["Content-Type"] == "application/json"
            Manifest.from_json(json.load(response))


class TestSegmentEndpoint:
    def test_every_segment_is_byte_identical_to_storage(self, session_db, client):
        manifest = session_db.storage.build_manifest("clip")
        for key in manifest.segment_sizes:
            wire = client.fetch_segment("clip", key)
            local = session_db.storage.read_segment(
                "clip", key.window, key.tile, key.quality
            )
            assert wire == local

    def test_missing_segment_is_404(self, client):
        with pytest.raises(SegmentNotFoundError):
            client.fetch_segment("clip", SegmentKey(999, (0, 0), Quality.HIGH))

    def test_malformed_path_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{server.base_url}/segment/clip/not/a/real/key")
        assert caught.value.code == 400

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{server.base_url}/frobnicate")
        assert caught.value.code == 404

    def test_error_responses_carry_the_class_name(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{server.base_url}/segment/clip/999/0/0/high")
        assert caught.value.code == 404
        assert caught.value.headers["X-Error"] == "SegmentNotFoundError"


class TestOperationalEndpoints:
    def test_healthz(self, client):
        assert client.healthy()

    def test_metrics_snapshot_reflects_traffic(self, session_db, client):
        manifest = client.fetch_manifest("clip")
        key = next(iter(manifest.segment_sizes))
        client.fetch_segment("clip", key)
        snapshot = client.fetch_metrics()
        counters = snapshot["counters"]
        assert any(key.startswith("serve.requests") for key in counters)
        assert counters.get("serve.bytes_sent", 0) > 0
        assert any(
            key.startswith("serve.request_seconds") for key in snapshot["histograms"]
        )

    def test_metrics_render_is_cached_for_the_ttl(self, session_db):
        """Within ``metrics_ttl`` the server re-serves the rendered
        snapshot; new traffic shows up only after the cache expires."""
        from repro.obs import MetricsRegistry
        from repro.serve import start_server

        handle = start_server(
            session_db.storage,
            ServerConfig(drain_timeout=2.0, metrics_ttl=30.0),
            registry=MetricsRegistry(),
        )
        try:
            with HttpSegmentClient(handle.base_url) as client:
                first = client.fetch_metrics()
                manifest = client.fetch_manifest("clip")
                key = next(iter(manifest.segment_sizes))
                client.fetch_segment("clip", key)
                second = client.fetch_metrics()
                assert second == first  # stale by design inside the TTL
                handle.server._metrics_cache = None  # expiry, without the wait
                third = client.fetch_metrics()
                assert third != first
        finally:
            handle.stop()


class TestConcurrency:
    def test_many_threads_fetch_identical_bytes(self, session_db, server):
        manifest = session_db.storage.build_manifest("clip")
        key = next(iter(sorted(manifest.segment_sizes, key=lambda k: k.to_path())))
        expected = session_db.storage.read_segment(
            "clip", key.window, key.tile, key.quality
        )
        results: list[bytes] = []
        errors: list[BaseException] = []

        def fetch():
            try:
                with HttpSegmentClient(server.base_url) as client:
                    results.append(client.fetch_segment("clip", key))
            except BaseException as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        threads = [threading.Thread(target=fetch) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 12
        assert all(result == expected for result in results)

    def test_keep_alive_serves_sequential_requests(self, session_db, client):
        manifest = client.fetch_manifest("clip")
        keys = sorted(manifest.segment_sizes, key=lambda k: k.to_path())[:6]
        for key in keys:
            assert client.fetch_segment("clip", key) == session_db.storage.read_segment(
                "clip", key.window, key.tile, key.quality
            )


class TestShutdown:
    def test_stop_is_prompt_with_idle_keepalive_connections(self, session_db):
        import time

        handle = start_server(session_db.storage, ServerConfig(drain_timeout=5.0))
        client = HttpSegmentClient(handle.base_url)
        client.fetch_manifest("clip")  # leaves a keep-alive connection open
        started = time.perf_counter()
        handle.stop()
        elapsed = time.perf_counter() - started
        client.close()
        assert elapsed < 2.0, f"drain of an idle connection took {elapsed:.1f}s"

    def test_stopped_server_refuses_connections(self, session_db):
        handle = start_server(session_db.storage)
        host, port = handle.address
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_stop_is_idempotent(self, session_db):
        handle = start_server(session_db.storage)
        handle.stop()
        handle.stop()


class TestAdmissionControl:
    """Load shedding: per-connection budgets and the in-flight ceiling."""

    def test_connection_budget_sheds_429_and_closes(self, session_db):
        import http.client

        handle = start_server(
            session_db.storage,
            ServerConfig(max_connection_requests=2, retry_after=1.5),
        )
        try:
            connection = http.client.HTTPConnection(*handle.address)
            for _ in range(2):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 429
            assert response.getheader("Retry-After") == "1.5"
            assert response.getheader("X-Error") == "TransientSegmentError"
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            handle.stop()

    def test_shed_request_maps_to_transient_with_retry_after(self, session_db):
        from repro.core.errors import TransientSegmentError

        handle = start_server(
            session_db.storage,
            ServerConfig(max_connection_requests=1, retry_after=0.25),
        )
        try:
            with HttpSegmentClient(handle.base_url) as client:
                client.fetch_metrics()
                with pytest.raises(TransientSegmentError) as caught:
                    client.fetch_metrics()
                assert caught.value.status == 429
                assert caught.value.retry_after == 0.25
        finally:
            handle.stop()

    def test_inflight_ceiling_sheds_503(self, session_db):
        import time

        from repro.core.errors import TransientSegmentError
        from repro.obs import MetricsRegistry
        from repro.serve.server import SegmentServer, ServerHandle
        from repro.stream.dash import SegmentKey

        class SlowStorage:
            def __init__(self, inner, delay):
                self.inner = inner
                self.delay = delay

            def build_manifest(self, name):
                return self.inner.build_manifest(name)

            def read_segment(self, *args, **kwargs):
                time.sleep(self.delay)
                return self.inner.read_segment(*args, **kwargs)

        manifest = session_db.storage.build_manifest("clip")
        key = next(iter(sorted(manifest.segment_sizes, key=lambda k: k.to_path())))
        registry = MetricsRegistry()
        handle = ServerHandle(
            SegmentServer(
                SlowStorage(session_db.storage, 0.3),
                ServerConfig(max_inflight=1, retry_after=0.1),
                registry,
            )
        )
        try:
            outcomes: list[object] = []

            def fetch():
                with HttpSegmentClient(handle.base_url) as client:
                    try:
                        outcomes.append(client.fetch_segment("clip", key))
                    except TransientSegmentError as error:
                        outcomes.append(error)

            threads = [threading.Thread(target=fetch) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            shed = [
                outcome
                for outcome in outcomes
                if isinstance(outcome, TransientSegmentError)
            ]
            served = [outcome for outcome in outcomes if isinstance(outcome, bytes)]
            assert served, "the admitted request(s) must still be served"
            assert shed, "6 concurrent requests past a ceiling of 1 must shed"
            assert all(error.status == 503 for error in shed)
            assert all(error.retry_after == 0.1 for error in shed)
            snapshot = registry.snapshot()
            assert snapshot["counters"].get("serve.shed{reason=overload}", 0) >= 1
            assert snapshot["gauges"].get("serve.inflight") == 0.0
        finally:
            handle.stop()


class TestStartupVerification:
    """ServerHandle.start() must verify, not assume, that the loop came up."""

    def test_bind_conflict_propagates_the_real_error(self, session_db):
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            with pytest.raises(OSError):
                start_server(session_db.storage, ServerConfig(port=port))
        finally:
            blocker.close()

    def test_loop_setup_failure_fails_fast_with_cause(self, session_db, monkeypatch):
        import asyncio
        import time

        def explode(loop):
            raise RuntimeError("loop exploded")

        monkeypatch.setattr(asyncio, "set_event_loop", explode)
        started = time.perf_counter()
        with pytest.raises(RuntimeError, match="loop exploded"):
            start_server(session_db.storage)
        # The pre-fix behaviour was a silent 10s hang (the wait() result
        # was ignored) followed by an assertion with no cause attached.
        assert time.perf_counter() - started < 5.0
