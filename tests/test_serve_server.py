"""The asyncio segment server: endpoints, identity, concurrency, shutdown."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro import Quality
from repro.core.errors import SegmentNotFoundError
from repro.serve import HttpSegmentClient, ServerConfig, start_server
from repro.stream.dash import Manifest, SegmentKey


@pytest.fixture()
def server(session_db):
    handle = start_server(session_db.storage, ServerConfig(drain_timeout=2.0))
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with HttpSegmentClient(server.base_url) as client:
        yield client


class TestManifestEndpoint:
    def test_wire_manifest_equals_local_build(self, session_db, client):
        local = session_db.storage.build_manifest("clip")
        wire = client.fetch_manifest("clip")
        assert wire.segment_sizes == local.segment_sizes
        assert wire.grid == local.grid
        assert wire.qualities == local.qualities
        assert wire.window_count == local.window_count

    def test_unknown_video_is_not_found(self, client):
        with pytest.raises(SegmentNotFoundError):
            client.fetch_manifest("nope")

    def test_manifest_is_plain_json(self, server):
        with urllib.request.urlopen(f"{server.base_url}/manifest/clip") as response:
            assert response.headers["Content-Type"] == "application/json"
            Manifest.from_json(json.load(response))


class TestSegmentEndpoint:
    def test_every_segment_is_byte_identical_to_storage(self, session_db, client):
        manifest = session_db.storage.build_manifest("clip")
        for key in manifest.segment_sizes:
            wire = client.fetch_segment("clip", key)
            local = session_db.storage.read_segment(
                "clip", key.window, key.tile, key.quality
            )
            assert wire == local

    def test_missing_segment_is_404(self, client):
        with pytest.raises(SegmentNotFoundError):
            client.fetch_segment("clip", SegmentKey(999, (0, 0), Quality.HIGH))

    def test_malformed_path_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{server.base_url}/segment/clip/not/a/real/key")
        assert caught.value.code == 400

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{server.base_url}/frobnicate")
        assert caught.value.code == 404

    def test_error_responses_carry_the_class_name(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{server.base_url}/segment/clip/999/0/0/high")
        assert caught.value.code == 404
        assert caught.value.headers["X-Error"] == "SegmentNotFoundError"


class TestOperationalEndpoints:
    def test_healthz(self, client):
        assert client.healthy()

    def test_metrics_snapshot_reflects_traffic(self, session_db, client):
        manifest = client.fetch_manifest("clip")
        key = next(iter(manifest.segment_sizes))
        client.fetch_segment("clip", key)
        snapshot = client.fetch_metrics()
        counters = snapshot["counters"]
        assert any(key.startswith("serve.requests") for key in counters)
        assert counters.get("serve.bytes_sent", 0) > 0
        assert any(
            key.startswith("serve.request_seconds") for key in snapshot["histograms"]
        )


class TestConcurrency:
    def test_many_threads_fetch_identical_bytes(self, session_db, server):
        manifest = session_db.storage.build_manifest("clip")
        key = next(iter(sorted(manifest.segment_sizes, key=lambda k: k.to_path())))
        expected = session_db.storage.read_segment(
            "clip", key.window, key.tile, key.quality
        )
        results: list[bytes] = []
        errors: list[BaseException] = []

        def fetch():
            try:
                with HttpSegmentClient(server.base_url) as client:
                    results.append(client.fetch_segment("clip", key))
            except BaseException as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        threads = [threading.Thread(target=fetch) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 12
        assert all(result == expected for result in results)

    def test_keep_alive_serves_sequential_requests(self, session_db, client):
        manifest = client.fetch_manifest("clip")
        keys = sorted(manifest.segment_sizes, key=lambda k: k.to_path())[:6]
        for key in keys:
            assert client.fetch_segment("clip", key) == session_db.storage.read_segment(
                "clip", key.window, key.tile, key.quality
            )


class TestShutdown:
    def test_stop_is_prompt_with_idle_keepalive_connections(self, session_db):
        import time

        handle = start_server(session_db.storage, ServerConfig(drain_timeout=5.0))
        client = HttpSegmentClient(handle.base_url)
        client.fetch_manifest("clip")  # leaves a keep-alive connection open
        started = time.perf_counter()
        handle.stop()
        elapsed = time.perf_counter() - started
        client.close()
        assert elapsed < 2.0, f"drain of an idle connection took {elapsed:.1f}s"

    def test_stopped_server_refuses_connections(self, session_db):
        handle = start_server(session_db.storage)
        host, port = handle.address
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_stop_is_idempotent(self, session_db):
        handle = start_server(session_db.storage)
        handle.stop()
        handle.stop()
