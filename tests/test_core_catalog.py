"""Unit tests for the catalog's name/version/layout bookkeeping."""

import pytest

from repro.core.catalog import Catalog, segment_file_name
from repro.core.errors import CatalogError
from repro.video.quality import Quality


@pytest.fixture()
def catalog(tmp_path) -> Catalog:
    return Catalog(tmp_path)


class TestNames:
    def test_accepts_reasonable_names(self, catalog):
        for name in ("venice", "Clip_01", "a.b-c"):
            catalog.validate_name(name)

    @pytest.mark.parametrize("name", ["", "has space", "../escape", "sl/ash", "-lead"])
    def test_rejects_bad_names(self, catalog, name):
        with pytest.raises(CatalogError):
            catalog.validate_name(name)

    def test_segment_file_name_format(self):
        assert (
            segment_file_name(3, (1, 2), Quality.LOW, 7) == "g00003_r1_c2_low_v7.seg"
        )


class TestLifecycle:
    def test_create_makes_directories(self, catalog):
        catalog.create("demo")
        assert catalog.exists("demo")
        assert catalog.segments_dir("demo").is_dir()

    def test_create_twice_fails(self, catalog):
        catalog.create("demo")
        with pytest.raises(CatalogError):
            catalog.create("demo")

    def test_list_videos_sorted(self, catalog):
        for name in ("zeta", "alpha", "mid"):
            catalog.create(name)
        assert catalog.list_videos() == ["alpha", "mid", "zeta"]

    def test_drop_removes_everything(self, catalog):
        catalog.create("demo")
        (catalog.segments_dir("demo") / "junk.seg").write_bytes(b"x")
        catalog.drop("demo")
        assert not catalog.exists("demo")

    def test_drop_missing_fails(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop("ghost")


class TestVersions:
    def test_versions_requires_existing_video(self, catalog):
        with pytest.raises(CatalogError):
            catalog.versions("ghost")

    def test_versions_requires_committed_metadata(self, catalog):
        catalog.create("demo")
        with pytest.raises(CatalogError):
            catalog.versions("demo")

    def test_versions_sorted(self, catalog):
        catalog.create("demo")
        for version in (3, 1, 2):
            catalog.metadata_path("demo", version).write_bytes(b"m")
        assert catalog.versions("demo") == [1, 2, 3]
        assert catalog.latest_version("demo") == 3

    def test_unrelated_files_ignored(self, catalog):
        catalog.create("demo")
        catalog.metadata_path("demo", 1).write_bytes(b"m")
        (catalog.video_dir("demo") / "notes.txt").write_bytes(b"x")
        assert catalog.versions("demo") == [1]
