"""The multi-process serve tier and the metrics merge behind it.

The fleet tests are end-to-end: N real worker processes share one
listening port, a real client fetches real segments, and the merged
``/metrics`` view must account for every worker. merge_snapshots gets
its own unit coverage because its arithmetic (pooled quantiles, the
count-weighted fallback) is what makes the fleet view trustworthy.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs import MetricsRegistry, merge_snapshots
from repro.serve import HttpSegmentClient, ServerConfig, start_server
from repro.serve.multiproc import MultiProcessServerHandle, _so_reuseport_available

_multiproc_possible = (
    _so_reuseport_available() or "fork" in multiprocessing.get_all_start_methods()
)

pytestmark = pytest.mark.skipif(
    not _multiproc_possible,
    reason="needs SO_REUSEPORT or the fork start method",
)


@pytest.fixture()
def fleet(session_db):
    handle = start_server(
        session_db.storage, ServerConfig(processes=2, drain_timeout=2.0)
    )
    yield handle
    handle.stop()


class TestFleetServing:
    def test_start_server_returns_the_multiproc_handle(self, fleet):
        assert isinstance(fleet, MultiProcessServerHandle)
        host, port = fleet.address
        assert fleet.base_url == f"http://{host}:{port}"

    def test_every_segment_is_byte_identical_to_storage(self, session_db, fleet):
        manifest = session_db.storage.build_manifest("clip")
        with HttpSegmentClient(fleet.base_url) as client:
            for key in manifest.segment_sizes:
                wire = client.fetch_segment("clip", key)
                local = session_db.storage.read_segment(
                    "clip", key.window, key.tile, key.quality
                )
                assert wire == local

    def test_merged_metrics_cover_the_whole_fleet(self, fleet):
        """/metrics on any worker reports workers: 2 and the summed
        request counters; /metrics/local identifies a single worker."""
        with HttpSegmentClient(fleet.base_url) as client:
            client.healthy()
            merged = client.fetch_metrics()
            assert merged["workers"] == 2
            assert "peer_errors" not in merged
            assert any(
                name.startswith("serve.requests") for name in merged["counters"]
            )
            local = client.fetch_metrics(local=True)
            assert local["worker"] in (0, 1)

    def test_stop_is_graceful_and_idempotent(self, session_db):
        handle = start_server(
            session_db.storage, ServerConfig(processes=2, drain_timeout=2.0)
        )
        workers = list(handle._workers)
        handle.stop()
        handle.stop()  # second stop must be a no-op, not an error
        for worker in workers:
            assert not worker.is_alive()
            # Graceful drain, not terminate/kill escalation.
            assert worker.exitcode == 0

    def test_memory_storage_is_rejected(self):
        class Memoryish:
            pass

        with pytest.raises(ValueError, match="disk-backed"):
            start_server(Memoryish(), ServerConfig(processes=2))


def _snapshot_with_traffic(latencies, counter_value=1.0) -> dict:
    registry = MetricsRegistry()
    registry.counter("serve.requests", "requests").labels().inc(counter_value)
    histogram = registry.histogram("serve.request_seconds", "latency").labels()
    for value in latencies:
        histogram.observe(value)
    return registry.snapshot(include_samples=True)


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        first = {"counters": {"a": 1.0, "b": 2.0}, "gauges": {"g": 5.0}}
        second = {"counters": {"a": 10.0}, "gauges": {"g": 7.0, "h": 1.0}}
        merged = merge_snapshots([first, second])
        assert merged["workers"] == 2
        assert merged["counters"] == {"a": 11.0, "b": 2.0}
        assert merged["gauges"] == {"g": 12.0, "h": 1.0}
        assert merged["spans"] == []

    def test_histogram_exact_fields_are_exact(self):
        merged = merge_snapshots(
            [
                _snapshot_with_traffic([0.1, 0.2, 0.3]),
                _snapshot_with_traffic([0.4, 0.5]),
            ]
        )
        summary = merged["histograms"]["serve.request_seconds"]
        assert summary["count"] == 5
        assert summary["sum"] == pytest.approx(1.5)
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.5)
        assert summary["mean"] == pytest.approx(0.3)

    def test_quantiles_pool_across_workers(self):
        """Pooled quantiles must reflect the union of the sample windows,
        not an average of per-worker quantiles: one worker holding all
        the slow requests must dominate the merged p99."""
        fast = _snapshot_with_traffic([0.001] * 99)
        slow = _snapshot_with_traffic([1.0] * 99)
        merged = merge_snapshots([fast, slow])
        summary = merged["histograms"]["serve.request_seconds"]
        assert summary["p50"] in (0.001, 1.0)
        assert summary["p99"] == pytest.approx(1.0)

    def test_sampleless_snapshots_fall_back_to_weighted_average(self):
        first = {
            "histograms": {
                "h": {"count": 3, "sum": 0.3, "min": 0.1, "max": 0.1, "p50": 0.1, "p90": 0.1, "p99": 0.1}
            }
        }
        second = {
            "histograms": {
                "h": {"count": 1, "sum": 0.5, "min": 0.5, "max": 0.5, "p50": 0.5, "p90": 0.5, "p99": 0.5}
            }
        }
        merged = merge_snapshots([first, second])
        summary = merged["histograms"]["h"]
        assert summary["count"] == 4
        assert summary["p50"] == pytest.approx((0.1 * 3 + 0.5 * 1) / 4)

    def test_empty_histograms_merge_to_zero(self):
        merged = merge_snapshots(
            [{"histograms": {"h": {"count": 0, "sum": 0.0}}}] * 2
        )
        assert merged["histograms"]["h"] == {"count": 0, "sum": 0.0}

    def test_single_snapshot_round_trips(self):
        snapshot = _snapshot_with_traffic([0.25, 0.75])
        merged = merge_snapshots([snapshot])
        assert merged["workers"] == 1
        assert merged["counters"]["serve.requests"] == 1.0
        assert merged["histograms"]["serve.request_seconds"]["count"] == 2


class TestMergeSnapshotsMixedSamples:
    """Regressions for histograms that only *some* workers sampled.

    A fleet snapshot is not uniform: a worker that answered ``/metrics``
    without ``include_samples``, or whose sample window rotated out,
    contributes quantile tags but no raw samples. Pooling in that mix
    used to compute merged quantiles from the sampled workers alone —
    silently dropping the other worker's entire distribution.
    """

    def test_mixed_sampled_and_sampleless_workers_average_not_pool(self):
        # Worker A: 9 fast requests with a sample window. Worker B: 9
        # slow requests, quantiles only. Pooling A's samples alone would
        # report p99 ~= 0.001; the honest merge weighs both equally.
        sampled = _snapshot_with_traffic([0.001] * 9)
        sampleless = {
            "histograms": {
                "serve.request_seconds": {
                    "count": 9, "sum": 9.0, "min": 1.0, "max": 1.0,
                    "p50": 1.0, "p90": 1.0, "p99": 1.0,
                }
            }
        }
        merged = merge_snapshots([sampled, sampleless])
        summary = merged["histograms"]["serve.request_seconds"]
        assert summary["count"] == 18
        assert summary["p99"] == pytest.approx((0.001 + 1.0) / 2)
        assert summary["max"] == pytest.approx(1.0)

    def test_empty_sample_list_is_sampleless(self):
        # "samples": [] (a rotated-out window) must behave exactly like
        # an absent key — fall back to the weighted average, never pool.
        empty_window = {
            "histograms": {
                "h": {
                    "count": 2, "sum": 1.0, "min": 0.5, "max": 0.5,
                    "p50": 0.5, "p90": 0.5, "p99": 0.5, "samples": [],
                }
            }
        }
        sampled = {
            "histograms": {
                "h": {
                    "count": 2, "sum": 0.2, "min": 0.1, "max": 0.1,
                    "p50": 0.1, "p90": 0.1, "p99": 0.1, "samples": [0.1, 0.1],
                }
            }
        }
        merged = merge_snapshots([empty_window, sampled])
        summary = merged["histograms"]["h"]
        assert summary["count"] == 4
        assert summary["p50"] == pytest.approx(0.3)

    def test_histogram_on_one_worker_keeps_its_quantiles(self):
        # The histogram exists on only one worker's snapshot and that
        # worker carried no samples: its own quantile tags must survive
        # the merge instead of the series being reported without them.
        only = {
            "histograms": {
                "h": {
                    "count": 5, "sum": 2.5, "min": 0.5, "max": 0.5,
                    "p50": 0.5, "p90": 0.5, "p99": 0.5, "samples": [],
                }
            }
        }
        other = {"histograms": {}}
        merged = merge_snapshots([only, other])
        summary = merged["histograms"]["h"]
        assert summary["count"] == 5
        assert summary["p50"] == pytest.approx(0.5)
        assert summary["p99"] == pytest.approx(0.5)

    def test_no_quantiles_anywhere_omits_the_tags(self):
        # When no live part reports a quantile there is nothing honest to
        # publish: the keys are omitted entirely, never invented as 0.0
        # (a p99 of zero reads as "everything was instant").
        bare = {"histograms": {"h": {"count": 3, "sum": 0.9, "min": 0.3, "max": 0.3}}}
        merged = merge_snapshots([bare, bare])
        summary = merged["histograms"]["h"]
        assert summary["count"] == 6
        for tag in ("p50", "p90", "p99"):
            assert tag not in summary

    def test_single_worker_fleet_with_empty_samples(self):
        snapshot = {
            "histograms": {
                "h": {
                    "count": 1, "sum": 0.2, "min": 0.2, "max": 0.2,
                    "p50": 0.2, "p90": 0.2, "p99": 0.2, "samples": [],
                }
            }
        }
        merged = merge_snapshots([snapshot])
        summary = merged["histograms"]["h"]
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["mean"] == pytest.approx(0.2)
