"""Unit tests for equirectangular and cubemap projections."""

import math

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI, AngularRect
from repro.geometry.projection import CubemapProjection, EquirectangularProjection


@pytest.fixture()
def projection() -> EquirectangularProjection:
    return EquirectangularProjection(width=64, height=32)


class TestEquirectangularMapping:
    def test_rejects_degenerate_raster(self):
        with pytest.raises(ValueError):
            EquirectangularProjection(1, 32)

    def test_pixel_centers_round_trip(self, projection):
        xs, ys = np.meshgrid(np.arange(64), np.arange(32))
        theta, phi = projection.pixel_to_angle(xs, ys)
        x_back, y_back = projection.angle_to_pixel(theta, phi)
        assert np.allclose(x_back, xs)
        assert np.allclose(y_back, ys)

    def test_first_column_near_theta_zero(self, projection):
        theta, _ = projection.pixel_to_angle(0, 0)
        assert theta == pytest.approx(math.pi / 64)  # half-pixel offset

    def test_rows_span_phi(self, projection):
        _, phi_top = projection.pixel_to_angle(0, 0)
        _, phi_bottom = projection.pixel_to_angle(0, 31)
        assert 0 < phi_top < phi_bottom < math.pi

    def test_theta_wraps(self, projection):
        x, _ = projection.angle_to_pixel(TWO_PI + 0.1, 1.0)
        x_ref, _ = projection.angle_to_pixel(0.1, 1.0)
        assert x == pytest.approx(x_ref)


class TestEquirectangularSampling:
    def test_sample_constant_plane(self, projection):
        plane = np.full((32, 64), 7.0)
        assert projection.sample(plane, 1.0, 1.0) == pytest.approx(7.0)

    def test_sample_matches_pixel_at_center(self, projection):
        plane = np.arange(32 * 64, dtype=np.float64).reshape(32, 64)
        theta, phi = projection.pixel_to_angle(10, 20)
        assert projection.sample(plane, theta, phi) == pytest.approx(plane[20, 10])

    def test_sample_interpolates_across_seam(self, projection):
        plane = np.zeros((32, 64))
        plane[:, 0] = 10.0
        plane[:, -1] = 30.0
        # Exactly on the seam between the last and first column.
        value = projection.sample(plane, 0.0, math.pi / 2)
        assert 10.0 < value < 30.0

    def test_sample_shape_mismatch_raises(self, projection):
        with pytest.raises(ValueError):
            projection.sample(np.zeros((16, 16)), 0.0, 1.0)

    def test_sample_vectorised(self, projection):
        plane = np.random.default_rng(0).uniform(0, 255, (32, 64))
        thetas = np.linspace(0.1, 6.0, 17)
        phis = np.linspace(0.1, 3.0, 17)
        values = projection.sample(plane, thetas, phis)
        assert values.shape == (17,)


class TestPixelRect:
    def test_full_sphere(self, projection):
        rect = AngularRect(0.0, TWO_PI, 0.0, math.pi)
        assert projection.pixel_rect(rect) == (0, 0, 64, 32)

    def test_quarter(self, projection):
        rect = AngularRect(0.0, math.pi / 2, 0.0, math.pi / 2)
        assert projection.pixel_rect(rect) == (0, 0, 16, 16)

    def test_wrapping_rect_rejected(self, projection):
        rect = AngularRect(3 * math.pi / 2, math.pi / 2, 0.0, 1.0)
        with pytest.raises(ValueError):
            projection.pixel_rect(rect)

    def test_grid_tiles_tile_the_raster(self, projection):
        from repro.geometry.grid import TileGrid

        grid = TileGrid(2, 4)
        covered = np.zeros((32, 64), dtype=int)
        for tile in grid.tiles():
            x0, y0, x1, y1 = projection.pixel_rect(grid.rect(*tile))
            covered[y0:y1, x0:x1] += 1
        assert np.all(covered == 1)


class TestSamplingDensity:
    def test_equator_is_minimum(self, projection):
        density = projection.sampling_density()
        assert np.argmin(density) in (15, 16)

    def test_poles_oversampled(self, projection):
        density = projection.sampling_density()
        assert density[0] > 10 * density[16]


class TestCubemap:
    def test_rejects_tiny_face(self):
        with pytest.raises(ValueError):
            CubemapProjection(1)

    def test_face_directions_are_unit(self):
        cubemap = CubemapProjection(8)
        for face in range(6):
            directions = cubemap.face_directions(face)
            assert np.allclose(np.linalg.norm(directions, axis=-1), 1.0)

    def test_face_index_bounds(self):
        with pytest.raises(IndexError):
            CubemapProjection(8).face_directions(6)

    def test_constant_plane_round_trip(self):
        cubemap = CubemapProjection(8)
        plane = np.full((32, 64), 42.0)
        faces = cubemap.from_equirectangular(plane)
        assert faces.shape == (6, 8, 8)
        assert np.allclose(faces, 42.0)
        assert cubemap.sample(faces, 1.0, 1.0) == pytest.approx(42.0)

    def test_smooth_field_round_trip_error_is_small(self):
        cubemap = CubemapProjection(32)
        projection = EquirectangularProjection(128, 64)
        xs, ys = np.meshgrid(np.arange(128), np.arange(64))
        theta, phi = projection.pixel_to_angle(xs, ys)
        plane = 100 + 50 * np.sin(theta) * np.sin(phi)
        faces = cubemap.from_equirectangular(plane)
        # Sample the cubemap back at equirect pixel directions (away from poles).
        sampled = cubemap.sample(faces, theta[16:48], phi[16:48])
        assert np.max(np.abs(sampled - plane[16:48])) < 4.0

    def test_six_face_names(self):
        assert len(CubemapProjection(4).face_names) == 6
