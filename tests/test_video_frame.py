"""Unit tests for YUV 4:2:0 frames."""

import math

import numpy as np
import pytest

from repro.video.frame import Frame, mse, psnr


def make_frame(width=16, height=8, luma=50) -> Frame:
    return Frame.blank(width, height, luma=luma)


class TestConstruction:
    def test_rejects_odd_dimensions(self):
        with pytest.raises(ValueError):
            Frame(
                y=np.zeros((7, 16), dtype=np.uint8),
                u=np.zeros((3, 8), dtype=np.uint8),
                v=np.zeros((3, 8), dtype=np.uint8),
            )

    def test_rejects_mismatched_chroma(self):
        with pytest.raises(ValueError):
            Frame(
                y=np.zeros((8, 16), dtype=np.uint8),
                u=np.zeros((8, 16), dtype=np.uint8),
                v=np.zeros((4, 8), dtype=np.uint8),
            )

    def test_rejects_non_uint8(self):
        with pytest.raises(TypeError):
            Frame(
                y=np.zeros((8, 16), dtype=np.float64),
                u=np.zeros((4, 8), dtype=np.uint8),
                v=np.zeros((4, 8), dtype=np.uint8),
            )

    def test_blank_dimensions(self):
        frame = Frame.blank(32, 16, luma=77)
        assert (frame.width, frame.height) == (32, 16)
        assert np.all(frame.y == 77)
        assert np.all(frame.u == 128)

    def test_from_luma_coerces_float(self):
        frame = Frame.from_luma(np.full((8, 16), 300.0))
        assert np.all(frame.y == 255)  # clipped


class TestRgbRoundTrip:
    def test_gray_round_trips_exactly(self):
        rgb = np.full((8, 16, 3), 128, dtype=np.uint8)
        frame = Frame.from_rgb(rgb)
        assert np.all(np.abs(frame.to_rgb().astype(int) - 128) <= 1)

    def test_primary_colors_survive(self):
        rgb = np.zeros((8, 16, 3), dtype=np.uint8)
        rgb[:, :8] = [255, 0, 0]
        rgb[:, 8:] = [0, 0, 255]
        recovered = Frame.from_rgb(rgb).to_rgb()
        # Chroma subsampling smears the boundary; check region interiors.
        assert recovered[4, 2, 0] > 200 and recovered[4, 2, 2] < 80
        assert recovered[4, 13, 2] > 200 and recovered[4, 13, 0] < 80

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Frame.from_rgb(np.zeros((8, 16), dtype=np.uint8))


class TestCropPaste:
    def test_crop_dimensions(self):
        frame = make_frame(32, 16)
        sub = frame.crop(4, 2, 20, 10)
        assert (sub.width, sub.height) == (16, 8)

    def test_crop_rejects_odd_bounds(self):
        with pytest.raises(ValueError):
            make_frame().crop(1, 0, 9, 8)

    def test_crop_rejects_out_of_bounds(self):
        with pytest.raises(ValueError):
            make_frame(16, 8).crop(0, 0, 18, 8)

    def test_crop_copies_pixels(self):
        base = np.arange(8 * 16, dtype=np.uint8).reshape(8, 16)
        frame = Frame.from_luma(base)
        sub = frame.crop(2, 2, 10, 6)
        assert np.array_equal(sub.y, base[2:6, 2:10])

    def test_paste_inverse_of_crop(self):
        frame = Frame.from_luma(
            np.random.default_rng(0).integers(0, 255, (16, 32), dtype=np.uint8).astype(np.uint8)
        )
        sub = frame.crop(8, 4, 24, 12)
        rebuilt = frame.paste(sub, 8, 4)
        assert rebuilt.equals(frame)

    def test_paste_rejects_odd_offset(self):
        with pytest.raises(ValueError):
            make_frame(32, 16).paste(make_frame(8, 8), 1, 0)

    def test_paste_rejects_overflow(self):
        with pytest.raises(ValueError):
            make_frame(16, 8).paste(make_frame(16, 8), 2, 0)

    def test_paste_does_not_mutate_original(self):
        frame = make_frame(16, 8, luma=10)
        frame.paste(make_frame(8, 8, luma=200), 0, 0)
        assert np.all(frame.y == 10)


class TestMetrics:
    def test_mse_zero_for_identical(self):
        frame = make_frame()
        assert mse(frame, frame) == 0.0

    def test_psnr_infinite_for_identical(self):
        frame = make_frame()
        assert psnr(frame, frame) == math.inf

    def test_mse_known_value(self):
        a = Frame.from_luma(np.zeros((8, 16)))
        b = Frame.from_luma(np.full((8, 16), 10.0))
        assert mse(a, b) == pytest.approx(100.0)

    def test_psnr_known_value(self):
        a = Frame.from_luma(np.zeros((8, 16)))
        b = Frame.from_luma(np.full((8, 16), 255.0))
        assert psnr(a, b) == pytest.approx(0.0)

    def test_mse_accepts_arrays(self):
        assert mse(np.zeros((4, 4)), np.ones((4, 4))) == pytest.approx(1.0)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_equals_is_pixelwise(self):
        a = make_frame(16, 8, luma=10)
        b = make_frame(16, 8, luma=10)
        assert a.equals(b)
        c = make_frame(16, 8, luma=11)
        assert not a.equals(c)
