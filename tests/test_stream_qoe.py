"""Unit tests for QoE accounting."""

import math

import pytest

from repro.stream.qoe import QoEReport, WindowRecord
from repro.video.quality import Quality


def make_record(
    window=0,
    stall=0.0,
    size=100,
    quality_map=None,
    visible=None,
    psnr=None,
) -> WindowRecord:
    quality_map = quality_map or {(0, 0): Quality.HIGH, (0, 1): Quality.LOW}
    return WindowRecord(
        window=window,
        decision_time=float(window),
        request_time=float(window),
        delivered_time=float(window) + 0.5,
        playback_start=float(window) + 1.0,
        stall_seconds=stall,
        bytes_sent=size,
        quality_map=quality_map,
        predicted_tiles={(0, 0)},
        ladder_best=Quality.HIGH,
        visible_tiles=visible if visible is not None else {(0, 0)},
        viewport_psnr=psnr,
    )


class TestWindowRecord:
    def test_visible_at_best_full(self):
        assert make_record().visible_at_best == 1.0

    def test_visible_at_best_partial(self):
        record = make_record(visible={(0, 0), (0, 1)})
        assert record.visible_at_best == 0.5

    def test_visible_at_best_no_visibility_is_nan(self):
        assert math.isnan(make_record(visible=set()).visible_at_best)

    def test_visible_tile_not_delivered_counts_as_miss(self):
        record = make_record(visible={(3, 3)})
        assert record.visible_at_best == 0.0


class TestQoEReport:
    def test_requires_records(self):
        with pytest.raises(ValueError):
            QoEReport([])

    def test_total_bytes(self):
        report = QoEReport([make_record(0, size=100), make_record(1, size=250)])
        assert report.total_bytes == 350

    def test_stall_aggregation(self):
        report = QoEReport(
            [make_record(0), make_record(1, stall=0.5), make_record(2, stall=1.5)]
        )
        assert report.stall_time == pytest.approx(2.0)
        assert report.stall_count == 2

    def test_mean_visible_at_best(self):
        report = QoEReport(
            [make_record(0), make_record(1, visible={(0, 0), (0, 1)})]
        )
        assert report.mean_visible_at_best == pytest.approx(0.75)

    def test_mean_viewport_psnr_skips_missing(self):
        report = QoEReport([make_record(0, psnr=40.0), make_record(1)])
        assert report.mean_viewport_psnr == pytest.approx(40.0)

    def test_mean_viewport_psnr_nan_when_never_probed(self):
        assert math.isnan(QoEReport([make_record(0)]).mean_viewport_psnr)

    def test_quality_switches_counts_visible_changes(self):
        first = make_record(0, quality_map={(0, 0): Quality.HIGH, (0, 1): Quality.LOW})
        second = make_record(
            1,
            quality_map={(0, 0): Quality.LOW, (0, 1): Quality.LOW},
            visible={(0, 0), (0, 1)},
        )
        report = QoEReport([first, second])
        assert report.quality_switches == 1

    def test_bytes_saved_vs(self):
        lean = QoEReport([make_record(0, size=400)])
        fat = QoEReport([make_record(0, size=1000)])
        assert lean.bytes_saved_vs(fat) == pytest.approx(0.6)

    def test_bytes_saved_rejects_zero_baseline(self):
        lean = QoEReport([make_record(0, size=0)])
        with pytest.raises(ValueError):
            lean.bytes_saved_vs(lean)

    def test_summary_keys(self):
        summary = QoEReport([make_record(0)]).summary()
        assert {
            "windows",
            "total_bytes",
            "stall_time_s",
            "stall_count",
            "visible_at_best",
            "viewport_psnr_db",
            "quality_switches",
        } <= set(summary)


class TestVisibleAtBestAcrossLadders:
    def test_uniform_medium_delivery_scores_zero(self):
        """Whole-sphere MEDIUM delivery never counts as 'at best': the
        metric is anchored to the ladder top, not the shipped maximum."""
        record = make_record(
            quality_map={(0, 0): Quality.MEDIUM, (0, 1): Quality.MEDIUM},
            visible={(0, 0), (0, 1)},
        )
        assert record.visible_at_best == 0.0

    def test_partial_store_resolution_counts_as_miss(self):
        record = make_record(
            quality_map={(0, 0): Quality.HIGH, (0, 1): Quality.LOW},
            visible={(0, 0), (0, 1)},
        )
        assert record.visible_at_best == 0.5
