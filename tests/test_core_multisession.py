"""Tests for shared-link multi-session delivery."""

import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.core.multisession import SharedLinkStreamer
from repro.stream.estimator import HarmonicMeanEstimator
from repro.stream.network import SimulatedLink
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

DURATION = 3.0


@pytest.fixture(scope="module")
def shared_db(tmp_path_factory):
    db = VisualCloud(tmp_path_factory.mktemp("shared"))
    config = IngestConfig(
        grid=TileGrid(2, 2),
        qualities=(Quality.HIGH, Quality.LOWEST),
        gop_frames=4,
        fps=4.0,
    )
    frames = synthetic_video("venice", width=64, height=32, fps=4, duration=DURATION, seed=15)
    db.ingest("clip", frames, config)
    return db


def make_sessions(count, predictor="static", estimator=False):
    population = ViewerPopulation(seed=3)
    sessions = []
    for user in range(count):
        config = SessionConfig(
            policy=PredictiveTilingPolicy(),
            bandwidth=ConstantBandwidth(1e9),  # ignored in shared mode
            predictor=predictor,
            margin=0,
            estimator=HarmonicMeanEstimator() if estimator else None,
        )
        sessions.append(("clip", population.trace(user, DURATION, rate=10.0), config))
    return sessions


class TestSharedLink:
    def test_rejects_empty(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        with pytest.raises(ValueError):
            streamer.serve_all([], SimulatedLink(ConstantBandwidth(1000)))

    def test_offsets_length_validated(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        with pytest.raises(ValueError):
            streamer.serve_all(
                make_sessions(2), SimulatedLink(ConstantBandwidth(1000)), [0.0]
            )

    def test_single_session_matches_private_link(self, shared_db):
        """With one session, shared-mode delivery must equal the
        single-session streamer byte for byte."""
        sessions = make_sessions(1)
        name, trace, config = sessions[0]
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        rate = 50_000.0
        shared_report = streamer.serve_all(
            sessions, SimulatedLink(ConstantBandwidth(rate))
        )[0]
        private_config = SessionConfig(
            policy=config.policy,
            bandwidth=ConstantBandwidth(rate),
            predictor="static",
            margin=0,
        )
        private_report = shared_db.serve(name, (trace, private_config))
        assert shared_report.total_bytes == private_report.total_bytes
        assert [r.quality_map for r in shared_report.records] == [
            r.quality_map for r in private_report.records
        ]

    def test_all_sessions_complete(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        reports = streamer.serve_all(
            make_sessions(4), SimulatedLink(ConstantBandwidth(100_000))
        )
        assert len(reports) == 4
        assert all(len(report.records) == 3 for report in reports)

    def test_generous_link_no_stalls(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        reports = streamer.serve_all(
            make_sessions(4), SimulatedLink(ConstantBandwidth(1e8))
        )
        assert all(report.stall_time == 0.0 for report in reports)

    def test_contention_causes_stalls(self, shared_db):
        """A link that serves one viewer fine must stall eight of them."""
        manifest = shared_db.storage.build_manifest("clip")
        one_viewer_rate = sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        ) / manifest.duration
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        solo = streamer.serve_all(
            make_sessions(1), SimulatedLink(ConstantBandwidth(one_viewer_rate))
        )
        crowd = streamer.serve_all(
            make_sessions(8), SimulatedLink(ConstantBandwidth(one_viewer_rate))
        )
        assert sum(report.stall_time for report in solo) == pytest.approx(0.0, abs=0.2)
        assert sum(report.stall_time for report in crowd) > 1.0

    def test_estimators_adapt_under_contention(self, shared_db):
        """Estimating clients observe contention and downgrade, stalling
        less than oracle-optimistic clients on the same link."""
        manifest = shared_db.storage.build_manifest("clip")
        rate = 2.0 * sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        ) / manifest.duration
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        blind = streamer.serve_all(
            make_sessions(8), SimulatedLink(ConstantBandwidth(rate))
        )
        adaptive = streamer.serve_all(
            make_sessions(8, estimator=True), SimulatedLink(ConstantBandwidth(rate))
        )
        blind_stalls = sum(report.stall_time for report in blind)
        adaptive_stalls = sum(report.stall_time for report in adaptive)
        assert adaptive_stalls <= blind_stalls

    def test_staggered_arrivals(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        reports = streamer.serve_all(
            make_sessions(2),
            SimulatedLink(ConstantBandwidth(1e6)),
            start_offsets=[0.0, 5.0],
        )
        assert reports[1].records[0].request_time >= 5.0
        assert reports[0].records[0].request_time < 1.0


def _contended_rate(shared_db, viewers=2.0):
    """A link rate that makes estimator decisions actually matter."""
    manifest = shared_db.storage.build_manifest("clip")
    full = sum(
        manifest.full_sphere_size(window, Quality.HIGH)
        for window in range(manifest.window_count)
    )
    return viewers * full / manifest.duration


def _record_tuples(report):
    """The schedule-visible fields of every window, for exact comparison."""
    return [
        (
            record.window,
            record.request_time,
            record.delivered_time,
            record.playback_start,
            record.stall_seconds,
            record.bytes_sent,
            record.quality_map,
        )
        for record in report.records
    ]


class TestEstimatorIsolation:
    """Regression for the cross-session estimator leak: one
    ``SessionConfig`` reused for N sessions must not share one
    ``ThroughputEstimator`` instance between them."""

    def test_shared_config_matches_private_configs(self, shared_db):
        """N sessions built from ONE config object must stream exactly as
        N sessions each holding their own config + estimator. On the old
        code the shared estimator mixed every session's samples (and the
        setup loop's reset wiped earlier sessions' state), skewing the
        bandwidth signal and the quality decisions."""
        population = ViewerPopulation(seed=3)
        traces = [population.trace(user, DURATION, rate=10.0) for user in range(4)]
        rate = _contended_rate(shared_db)

        def private_config():
            return SessionConfig(
                policy=PredictiveTilingPolicy(),
                bandwidth=ConstantBandwidth(1e9),
                predictor="static",
                margin=0,
                estimator=HarmonicMeanEstimator(),
            )

        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        one_config = private_config()
        shared_reports = streamer.serve_all(
            [("clip", trace, one_config) for trace in traces],
            SimulatedLink(ConstantBandwidth(rate)),
        )
        private_reports = streamer.serve_all(
            [("clip", trace, private_config()) for trace in traces],
            SimulatedLink(ConstantBandwidth(rate)),
        )
        for shared, private in zip(shared_reports, private_reports):
            assert _record_tuples(shared) == _record_tuples(private)

    def test_callers_estimator_object_untouched(self, shared_db):
        """``serve_all`` must neither reset nor feed the caller's
        estimator — sessions run on private copies."""
        estimator = HarmonicMeanEstimator()
        estimator.observe(12_345, 1.0)
        config = SessionConfig(
            policy=PredictiveTilingPolicy(),
            bandwidth=ConstantBandwidth(1e9),
            predictor="static",
            margin=0,
            estimator=estimator,
        )
        population = ViewerPopulation(seed=3)
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        streamer.serve_all(
            [
                ("clip", population.trace(user, DURATION, rate=10.0), config)
                for user in range(2)
            ],
            SimulatedLink(ConstantBandwidth(_contended_rate(shared_db))),
        )
        assert estimator.estimate() == pytest.approx(12_345.0)

    def test_sessions_observe_into_private_instances(self, shared_db):
        """Each session's samples must land in its own estimator copy.
        The probe records which instance every ``observe`` hit: two
        sessions sharing one config must feed two distinct instances,
        neither of them the caller's object."""

        class ProbeEstimator(HarmonicMeanEstimator):
            fed: set[int] = set()  # class attr: shared across deep copies

            def observe(self, size_bytes, duration_seconds):
                ProbeEstimator.fed.add(id(self))
                super().observe(size_bytes, duration_seconds)

        ProbeEstimator.fed.clear()
        probe = ProbeEstimator()
        config = SessionConfig(
            policy=PredictiveTilingPolicy(),
            bandwidth=ConstantBandwidth(1e9),
            predictor="static",
            margin=0,
            estimator=probe,
        )
        population = ViewerPopulation(seed=3)
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        streamer.serve_all(
            [
                ("clip", population.trace(user, DURATION, rate=10.0), config)
                for user in range(2)
            ],
            SimulatedLink(ConstantBandwidth(_contended_rate(shared_db))),
        )
        assert len(ProbeEstimator.fed) == 2
        assert id(probe) not in ProbeEstimator.fed


class TestSchedulerDifferential:
    """The heap scheduler must reproduce the naive rebuild-and-scan
    schedule exactly — same winner every window, same tie-breaks."""

    @pytest.mark.parametrize(
        "count, offsets, estimator, rate",
        [
            (4, None, False, 100_000.0),
            (4, [0.0, 0.4, 0.8, 1.2], False, 60_000.0),
            (8, None, True, None),  # None -> contended rate
            (3, [2.0, 0.0, 1.0], True, None),  # out-of-order arrivals
            (1, None, False, 50_000.0),
        ],
    )
    def test_heap_matches_naive(self, shared_db, count, offsets, estimator, rate):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        if rate is None:
            rate = _contended_rate(shared_db)
        heap_reports = streamer.serve_all(
            make_sessions(count, estimator=estimator),
            SimulatedLink(ConstantBandwidth(rate)),
            start_offsets=offsets,
            scheduler="heap",
        )
        naive_reports = streamer.serve_all(
            make_sessions(count, estimator=estimator),
            SimulatedLink(ConstantBandwidth(rate)),
            start_offsets=offsets,
            scheduler="naive",
        )
        assert len(heap_reports) == len(naive_reports)
        for heap_report, naive_report in zip(heap_reports, naive_reports):
            assert _record_tuples(heap_report) == _record_tuples(naive_report)

    def test_unknown_scheduler_rejected(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        with pytest.raises(ValueError, match="scheduler"):
            streamer.serve_all(
                make_sessions(1),
                SimulatedLink(ConstantBandwidth(1000)),
                scheduler="fifo",
            )


class TestServeAllMetrics:
    """`serve_all` through a VisualCloud instance populates the shared
    registry with cache, storage, and per-window streaming metrics."""

    def test_registry_populated_end_to_end(self, tmp_path):
        db = VisualCloud(tmp_path / "obsdb")
        config = IngestConfig(
            grid=TileGrid(2, 2),
            qualities=(Quality.HIGH, Quality.LOWEST),
            gop_frames=4,
            fps=4.0,
        )
        frames = synthetic_video(
            "venice", width=64, height=32, fps=4, duration=2.0, seed=15
        )
        db.ingest("clip", frames, config)
        population = ViewerPopulation(seed=3)
        sessions = [
            (
                "clip",
                population.trace(user, 2.0, rate=10.0),
                SessionConfig(
                    policy=PredictiveTilingPolicy(),
                    bandwidth=ConstantBandwidth(1e9),
                    predictor="static",
                    margin=0,
                    estimator=HarmonicMeanEstimator(),
                ),
            )
            for user in range(3)
        ]
        db.serve(
            "clip",
            [(trace, config) for _, trace, config in sessions],
            link=SimulatedLink(ConstantBandwidth(50_000.0)),
        )

        assert db.metrics.counter("stream.windows").total() > 0
        assert db.metrics.counter("stream.bytes_sent").total() > 0
        assert db.metrics.counter("storage.segments_read").total() > 0
        # Three viewers of one clip: the cache must have amortised reads.
        assert db.metrics.counter("cache.hits").total() > 0
        assert db.metrics.histogram("stream.transfer_seconds").count(mode="shared") > 0
        assert db.metrics.histogram("storage.read_segment.seconds").count() > 0

        snapshot = db.stats()["metrics"]
        assert snapshot["counters"]["storage.segments_read"] > 0
        assert any(key.startswith("stream.windows") for key in snapshot["counters"])

        prom = db.metrics.to_prometheus()
        assert "stream_windows" in prom
        assert "storage_read_segment_seconds_count" in prom
        assert 'quantile="0.5"' in prom
