"""Tests for shared-link multi-session delivery."""

import pytest

from repro import (
    ConstantBandwidth,
    IngestConfig,
    PredictiveTilingPolicy,
    Quality,
    SessionConfig,
    TileGrid,
    VisualCloud,
)
from repro.core.multisession import SharedLinkStreamer
from repro.stream.estimator import HarmonicMeanEstimator
from repro.stream.network import SimulatedLink
from repro.workloads.users import ViewerPopulation
from repro.workloads.videos import synthetic_video

DURATION = 3.0


@pytest.fixture(scope="module")
def shared_db(tmp_path_factory):
    db = VisualCloud(tmp_path_factory.mktemp("shared"))
    config = IngestConfig(
        grid=TileGrid(2, 2),
        qualities=(Quality.HIGH, Quality.LOWEST),
        gop_frames=4,
        fps=4.0,
    )
    frames = synthetic_video("venice", width=64, height=32, fps=4, duration=DURATION, seed=15)
    db.ingest("clip", frames, config)
    return db


def make_sessions(count, predictor="static", estimator=False):
    population = ViewerPopulation(seed=3)
    sessions = []
    for user in range(count):
        config = SessionConfig(
            policy=PredictiveTilingPolicy(),
            bandwidth=ConstantBandwidth(1e9),  # ignored in shared mode
            predictor=predictor,
            margin=0,
            estimator=HarmonicMeanEstimator() if estimator else None,
        )
        sessions.append(("clip", population.trace(user, DURATION, rate=10.0), config))
    return sessions


class TestSharedLink:
    def test_rejects_empty(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        with pytest.raises(ValueError):
            streamer.serve_all([], SimulatedLink(ConstantBandwidth(1000)))

    def test_offsets_length_validated(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        with pytest.raises(ValueError):
            streamer.serve_all(
                make_sessions(2), SimulatedLink(ConstantBandwidth(1000)), [0.0]
            )

    def test_single_session_matches_private_link(self, shared_db):
        """With one session, shared-mode delivery must equal the
        single-session streamer byte for byte."""
        sessions = make_sessions(1)
        name, trace, config = sessions[0]
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        rate = 50_000.0
        shared_report = streamer.serve_all(
            sessions, SimulatedLink(ConstantBandwidth(rate))
        )[0]
        private_config = SessionConfig(
            policy=config.policy,
            bandwidth=ConstantBandwidth(rate),
            predictor="static",
            margin=0,
        )
        private_report = shared_db.serve(name, trace, private_config)
        assert shared_report.total_bytes == private_report.total_bytes
        assert [r.quality_map for r in shared_report.records] == [
            r.quality_map for r in private_report.records
        ]

    def test_all_sessions_complete(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        reports = streamer.serve_all(
            make_sessions(4), SimulatedLink(ConstantBandwidth(100_000))
        )
        assert len(reports) == 4
        assert all(len(report.records) == 3 for report in reports)

    def test_generous_link_no_stalls(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        reports = streamer.serve_all(
            make_sessions(4), SimulatedLink(ConstantBandwidth(1e8))
        )
        assert all(report.stall_time == 0.0 for report in reports)

    def test_contention_causes_stalls(self, shared_db):
        """A link that serves one viewer fine must stall eight of them."""
        manifest = shared_db.storage.build_manifest("clip")
        one_viewer_rate = sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        ) / manifest.duration
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        solo = streamer.serve_all(
            make_sessions(1), SimulatedLink(ConstantBandwidth(one_viewer_rate))
        )
        crowd = streamer.serve_all(
            make_sessions(8), SimulatedLink(ConstantBandwidth(one_viewer_rate))
        )
        assert sum(report.stall_time for report in solo) == pytest.approx(0.0, abs=0.2)
        assert sum(report.stall_time for report in crowd) > 1.0

    def test_estimators_adapt_under_contention(self, shared_db):
        """Estimating clients observe contention and downgrade, stalling
        less than oracle-optimistic clients on the same link."""
        manifest = shared_db.storage.build_manifest("clip")
        rate = 2.0 * sum(
            manifest.full_sphere_size(window, Quality.HIGH)
            for window in range(manifest.window_count)
        ) / manifest.duration
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        blind = streamer.serve_all(
            make_sessions(8), SimulatedLink(ConstantBandwidth(rate))
        )
        adaptive = streamer.serve_all(
            make_sessions(8, estimator=True), SimulatedLink(ConstantBandwidth(rate))
        )
        blind_stalls = sum(report.stall_time for report in blind)
        adaptive_stalls = sum(report.stall_time for report in adaptive)
        assert adaptive_stalls <= blind_stalls

    def test_staggered_arrivals(self, shared_db):
        streamer = SharedLinkStreamer(shared_db.storage, shared_db.prediction)
        reports = streamer.serve_all(
            make_sessions(2),
            SimulatedLink(ConstantBandwidth(1e6)),
            start_offsets=[0.0, 5.0],
        )
        assert reports[1].records[0].request_time >= 5.0
        assert reports[0].records[0].request_time < 1.0
