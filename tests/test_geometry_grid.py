"""Unit tests for angular tile grids."""

import math

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.geometry.grid import TileGrid


class TestConstruction:
    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            TileGrid(0, 4)

    def test_rejects_zero_cols(self):
        with pytest.raises(ValueError):
            TileGrid(4, 0)

    def test_tile_count(self):
        assert TileGrid(3, 5).tile_count == 15

    def test_steps(self):
        grid = TileGrid(4, 8)
        assert grid.theta_step == pytest.approx(TWO_PI / 8)
        assert grid.phi_step == pytest.approx(math.pi / 4)

    def test_is_hashable_and_equatable(self):
        assert TileGrid(2, 2) == TileGrid(2, 2)
        assert len({TileGrid(2, 2), TileGrid(2, 2), TileGrid(2, 3)}) == 2


class TestIndexing:
    def test_row_major_iteration(self):
        grid = TileGrid(2, 3)
        assert list(grid.tiles()) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_index_round_trip(self):
        grid = TileGrid(3, 4)
        for tile in grid.tiles():
            assert grid.tile_at(grid.index_of(*tile)) == tile

    def test_index_of_out_of_bounds(self):
        with pytest.raises(IndexError):
            TileGrid(2, 2).index_of(2, 0)

    def test_tile_at_out_of_bounds(self):
        with pytest.raises(IndexError):
            TileGrid(2, 2).tile_at(4)


class TestRects:
    def test_rects_partition_the_sphere(self):
        grid = TileGrid(2, 4)
        total_span = sum(grid.rect(r, c).theta_span for c in range(4) for r in [0])
        assert total_span == pytest.approx(TWO_PI)

    def test_last_column_ends_at_two_pi(self):
        grid = TileGrid(1, 3)
        assert grid.rect(0, 2).theta1 == pytest.approx(TWO_PI)

    def test_last_row_ends_at_pi(self):
        grid = TileGrid(3, 1)
        assert grid.rect(2, 0).phi1 == pytest.approx(math.pi)

    def test_rect_bounds_check(self):
        with pytest.raises(IndexError):
            TileGrid(2, 2).rect(0, 5)


class TestTileOf:
    def test_center_of_each_tile_maps_back(self):
        grid = TileGrid(3, 4)
        for tile in grid.tiles():
            theta, phi = grid.rect(*tile).center()
            assert grid.tile_of(theta, phi) == tile

    def test_wraps_theta(self):
        grid = TileGrid(2, 4)
        assert grid.tile_of(-0.01, 1.0) == grid.tile_of(TWO_PI - 0.01, 1.0)

    def test_south_pole_in_last_row(self):
        grid = TileGrid(4, 4)
        row, _ = grid.tile_of(0.0, math.pi)
        assert row == 3

    def test_vectorised_matches_scalar(self):
        grid = TileGrid(3, 5)
        rng = np.random.default_rng(1)
        thetas = rng.uniform(0, TWO_PI, 100)
        phis = rng.uniform(0, math.pi, 100)
        vector = grid.tiles_of(thetas, phis)
        scalar = [grid.index_of(*grid.tile_of(t, p)) for t, p in zip(thetas, phis)]
        assert vector.tolist() == scalar


class TestNeighbors:
    def test_interior_tile_has_eight(self):
        grid = TileGrid(4, 6)
        assert len(grid.neighbors(1, 1)) == 8

    def test_wraps_through_azimuth_seam(self):
        grid = TileGrid(4, 6)
        neighbors = grid.neighbors(1, 0)
        assert (1, 5) in neighbors

    def test_does_not_wrap_over_poles(self):
        grid = TileGrid(4, 6)
        assert all(row >= 0 for row, _ in grid.neighbors(0, 0))
        assert len(grid.neighbors(0, 0)) == 5

    def test_deduplicates_on_narrow_grid(self):
        grid = TileGrid(3, 2)
        neighbors = grid.neighbors(1, 0)
        assert len(neighbors) == len(set(neighbors))

    def test_single_column_grid(self):
        grid = TileGrid(3, 1)
        assert grid.neighbors(1, 0) == [(0, 0), (2, 0)]


class TestExpand:
    def test_margin_zero_is_identity(self):
        grid = TileGrid(4, 4)
        tiles = {(1, 1), (2, 2)}
        assert grid.expand(tiles, margin=0) == tiles

    def test_margin_one_adds_ring(self):
        grid = TileGrid(8, 8)
        grown = grid.expand({(4, 4)}, margin=1)
        assert grown == {(r, c) for r in (3, 4, 5) for c in (3, 4, 5)}

    def test_margin_two_equals_double_expand(self):
        grid = TileGrid(8, 8)
        once = grid.expand(grid.expand({(4, 4)}, 1), 1)
        assert grid.expand({(4, 4)}, margin=2) == once

    def test_expand_saturates_at_full_grid(self):
        grid = TileGrid(2, 2)
        assert grid.expand({(0, 0)}, margin=3) == set(grid.tiles())
