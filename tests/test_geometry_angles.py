"""Unit tests for periodic angular arithmetic."""

import math

import numpy as np
import pytest

from repro.geometry.angles import (
    TWO_PI,
    AngularRect,
    angular_difference,
    clamp_phi,
    theta_interval_contains,
    theta_interval_intersects,
    unwrap_theta,
    wrap_theta,
)


class TestWrapTheta:
    def test_identity_inside_range(self):
        assert wrap_theta(1.0) == 1.0

    def test_negative_wraps_up(self):
        assert wrap_theta(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_full_turn_wraps_to_zero(self):
        assert wrap_theta(TWO_PI) == pytest.approx(0.0)

    def test_multiple_turns(self):
        assert wrap_theta(5 * TWO_PI + 0.25) == pytest.approx(0.25)

    def test_array_input(self):
        values = np.array([-0.1, 0.0, TWO_PI + 0.1])
        wrapped = wrap_theta(values)
        assert wrapped[0] == pytest.approx(TWO_PI - 0.1)
        assert wrapped[1] == 0.0
        assert wrapped[2] == pytest.approx(0.1)


class TestClampPhi:
    def test_inside_unchanged(self):
        assert clamp_phi(1.0) == 1.0

    def test_below_zero_clamps(self):
        assert clamp_phi(-0.5) == 0.0

    def test_above_pi_clamps(self):
        assert clamp_phi(4.0) == math.pi

    def test_array(self):
        out = clamp_phi(np.array([-1.0, 1.0, 5.0]))
        assert out.tolist() == [0.0, 1.0, math.pi]


class TestAngularDifference:
    def test_zero_for_equal(self):
        assert angular_difference(1.2, 1.2) == 0.0

    def test_simple_positive(self):
        assert angular_difference(1.5, 1.0) == pytest.approx(0.5)

    def test_shortest_path_through_seam(self):
        # From 350deg to 10deg the short way is +20deg, not -340.
        a = math.radians(10)
        b = math.radians(350)
        assert angular_difference(a, b) == pytest.approx(math.radians(20))

    def test_result_in_half_open_range(self):
        # Exactly opposite points give +pi, never -pi.
        assert angular_difference(0.0, math.pi) == pytest.approx(math.pi)

    def test_antisymmetric_off_seam(self):
        assert angular_difference(0.4, 1.0) == pytest.approx(-angular_difference(1.0, 0.4))

    def test_array(self):
        diffs = angular_difference(np.array([0.1, 6.2]), np.array([6.2, 0.1]))
        assert diffs[0] == pytest.approx(-diffs[1])


class TestUnwrapTheta:
    def test_monotone_without_wrap(self):
        values = np.array([0.1, 0.2, 0.3])
        assert np.allclose(unwrap_theta(values), values)

    def test_unwraps_forward_through_seam(self):
        values = np.array([6.0, 6.2, 0.1, 0.3])
        unwrapped = unwrap_theta(values)
        assert np.all(np.diff(unwrapped) > 0)
        assert unwrapped[-1] == pytest.approx(6.0 + (6.2 - 6.0) + (0.1 - 6.2 + TWO_PI) + 0.2)

    def test_unwraps_backward_through_seam(self):
        values = np.array([0.2, 0.05, 6.2])
        unwrapped = unwrap_theta(values)
        assert np.all(np.diff(unwrapped) < 0)

    def test_empty(self):
        assert unwrap_theta(np.array([])).size == 0

    def test_single(self):
        assert unwrap_theta(np.array([2.0])).tolist() == [2.0]


class TestThetaIntervalContains:
    def test_simple_inside(self):
        assert theta_interval_contains(0.0, 1.0, 0.5)

    def test_simple_outside(self):
        assert not theta_interval_contains(0.0, 1.0, 1.5)

    def test_half_open_start_inclusive(self):
        assert theta_interval_contains(0.5, 1.0, 0.5)

    def test_half_open_end_exclusive(self):
        assert not theta_interval_contains(0.0, 1.0, 1.0)

    def test_wrapping_interval(self):
        start, end = 3 * math.pi / 2, math.pi / 2
        assert theta_interval_contains(start, end, 0.0)
        assert not theta_interval_contains(start, end, math.pi)

    def test_full_circle_contains_everything(self):
        assert theta_interval_contains(0.0, TWO_PI, 5.0)


class TestThetaIntervalIntersects:
    def test_overlapping(self):
        assert theta_interval_intersects(0.0, 1.0, 0.5, 1.5)

    def test_disjoint(self):
        assert not theta_interval_intersects(0.0, 1.0, 2.0, 3.0)

    def test_wrap_overlap(self):
        assert theta_interval_intersects(6.0, 0.5, 0.2, 1.0)

    def test_wrap_disjoint(self):
        assert not theta_interval_intersects(6.0, 0.1, 1.0, 2.0)

    def test_touching_endpoints_do_not_intersect(self):
        assert not theta_interval_intersects(0.0, 1.0, 1.0, 2.0)

    def test_full_circle_intersects_anything(self):
        assert theta_interval_intersects(0.0, TWO_PI, 3.0, 3.1)


class TestAngularRect:
    def test_phi_order_validated(self):
        with pytest.raises(ValueError):
            AngularRect(0.0, 1.0, 2.0, 1.0)

    def test_phi_range_validated(self):
        with pytest.raises(ValueError):
            AngularRect(0.0, 1.0, -0.5, 1.0)

    def test_theta_span_simple(self):
        rect = AngularRect(0.0, math.pi, 0.0, 1.0)
        assert rect.theta_span == pytest.approx(math.pi)

    def test_theta_span_wrapping(self):
        rect = AngularRect(3 * math.pi / 2, math.pi / 2, 0.0, 1.0)
        assert rect.theta_span == pytest.approx(math.pi)

    def test_theta_span_full_circle(self):
        rect = AngularRect(0.0, TWO_PI, 0.0, math.pi)
        assert rect.theta_span == pytest.approx(TWO_PI)

    def test_contains_inside(self):
        rect = AngularRect(0.0, 1.0, 0.5, 1.5)
        assert rect.contains(0.5, 1.0)

    def test_contains_respects_phi(self):
        rect = AngularRect(0.0, 1.0, 0.5, 1.5)
        assert not rect.contains(0.5, 0.2)

    def test_contains_wrapping_theta(self):
        rect = AngularRect(6.0, 0.5, 0.0, math.pi)
        assert rect.contains(0.2, 1.0)
        assert not rect.contains(1.0, 1.0)

    def test_south_pole_belongs_to_bottom_rect(self):
        rect = AngularRect(0.0, 1.0, math.pi / 2, math.pi)
        assert rect.contains(0.5, math.pi)

    def test_intersects_in_both_axes(self):
        a = AngularRect(0.0, 1.0, 0.0, 1.0)
        b = AngularRect(0.5, 1.5, 0.5, 1.5)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_phi_disjoint(self):
        a = AngularRect(0.0, 1.0, 0.0, 1.0)
        b = AngularRect(0.0, 1.0, 1.0, 2.0)
        assert not a.intersects(b)

    def test_theta_disjoint_with_wrap(self):
        a = AngularRect(6.0, 0.2, 0.0, 1.0)
        b = AngularRect(1.0, 2.0, 0.0, 1.0)
        assert not a.intersects(b)

    def test_center_simple(self):
        rect = AngularRect(0.0, 1.0, 0.0, 1.0)
        assert rect.center() == (pytest.approx(0.5), pytest.approx(0.5))

    def test_center_wrapping(self):
        rect = AngularRect(TWO_PI - 0.5, 0.5, 0.0, 1.0)
        theta, _ = rect.center()
        assert theta == pytest.approx(0.0)
