"""The unified ``VisualCloud.serve`` entry point.

One method covers the whole delivery matrix — single simulated session,
shared-link contention, and real HTTP transport — and the delivery tier
is described by one :class:`repro.control.ClusterConfig`. These tests
pin four things: the removed PR 4-era shapes fail loudly, the
``transport=``/``base_url=`` kwargs still work for one release behind a
DeprecationWarning, dispatch errors fire before any work happens, and a
no-fault wire session is QoE-indistinguishable from its simulated twin.
"""

import json

import pytest

from repro import SessionConfig
from repro.control import ClusterConfig
from repro.serve import start_server
from repro.stream.abr import PredictiveTilingPolicy, UniformAdaptive
from repro.stream.network import ConstantBandwidth, SimulatedLink
from repro.workloads.users import ViewerPopulation


def _config(bandwidth=200_000, **overrides):
    defaults = dict(
        policy=UniformAdaptive(),
        bandwidth=ConstantBandwidth(bandwidth),
        predictor="static",
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


def _trace(session_db, user=0):
    meta = session_db.meta("clip")
    return ViewerPopulation(seed=2).trace(user, duration=meta.duration, rate=10.0)


def _summary_key(report):
    # json.dumps renders NaN stably, so reports whose PSNR fields are
    # NaN (no quality probe) still compare equal.
    return json.dumps(report.summary(), sort_keys=True)


class TestRemovedShims:
    def test_legacy_serve_trace_config_raises(self, session_db):
        # The config slot is keyword-only territory now, so the old
        # 3-positional shape dies at the signature.
        with pytest.raises(TypeError, match="positional"):
            session_db.serve("clip", _trace(session_db), _config())

    def test_legacy_serve_bare_trace_raises(self, session_db):
        with pytest.raises(TypeError, match="was removed"):
            session_db.serve("clip", _trace(session_db))

    def test_serve_all_is_gone(self, session_db):
        assert not hasattr(session_db, "serve_all")

    def test_new_forms_do_not_warn(self, session_db, recwarn):
        session_db.serve("clip", (_trace(session_db), _config()))
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestDeprecatedClusterKwargs:
    def test_transport_kwarg_warns_and_matches_cluster_form(self, session_db):
        trace, config = _trace(session_db), _config()
        with pytest.warns(DeprecationWarning, match="cluster=ClusterConfig"):
            legacy = session_db.serve("clip", (trace, config), transport="sim")
        modern = session_db.serve("clip", (trace, config), cluster=ClusterConfig())
        assert _summary_key(legacy) == _summary_key(modern)

    def test_kwargs_and_cluster_together_rejected(self, session_db):
        with pytest.raises(TypeError, match="not both"):
            session_db.serve(
                "clip",
                (_trace(session_db), _config()),
                cluster=ClusterConfig(),
                transport="sim",
            )

    def test_cluster_form_does_not_warn(self, session_db, recwarn):
        session_db.serve(
            "clip", (_trace(session_db), _config()), cluster=ClusterConfig()
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestReturnShapes:
    def test_single_pair_returns_one_report(self, session_db):
        report = session_db.serve("clip", (_trace(session_db), _config()))
        assert not isinstance(report, list)
        assert report.records

    def test_list_returns_reports_in_order(self, session_db):
        sessions = [(_trace(session_db, user), _config()) for user in range(3)]
        reports = session_db.serve("clip", sessions)
        assert isinstance(reports, list) and len(reports) == 3
        # Order is observable: each report replays its own trace, and
        # per-user traces differ, so summaries must line up one-to-one
        # with a sequential re-run.
        expected = [
            _summary_key(session_db.serve("clip", pair)) for pair in sessions
        ]
        assert [_summary_key(r) for r in reports] == expected

    def test_shared_link_single_pair_still_returns_one_report(self, session_db):
        report = session_db.serve(
            "clip",
            (_trace(session_db), _config()),
            link=SimulatedLink(ConstantBandwidth(100_000)),
        )
        assert not isinstance(report, list)


class TestHttpTransport:
    def test_wire_reports_match_simulated_reports(self, session_db):
        # The differential acceptance criterion: same traces, same
        # configs, no faults — the wire path must produce QoE reports
        # JSON-equal to the simulated path. Playback timing stays on the
        # session's bandwidth model; only the bytes travel differently.
        sessions = [(_trace(session_db, user), _config()) for user in range(2)]
        sim = [session_db.serve("clip", pair) for pair in sessions]
        handle = start_server(session_db.storage)
        try:
            wire = session_db.serve(
                "clip",
                sessions,
                cluster=ClusterConfig(transport="http", base_url=handle.base_url),
            )
        finally:
            handle.stop()
        assert [_summary_key(r) for r in wire] == [_summary_key(r) for r in sim]

    def test_http_uses_trained_predictors(self, session_db):
        meta = session_db.meta("clip")
        population = ViewerPopulation(seed=9)
        session_db.train_predictor(
            "clip",
            [population.trace(user, meta.duration, rate=10.0) for user in range(1, 5)],
        )
        config = _config(policy=PredictiveTilingPolicy(), predictor="markov", margin=0)
        trace = population.trace(0, meta.duration, rate=10.0)
        sim = session_db.serve("clip", (trace, config))
        handle = start_server(session_db.storage)
        try:
            wire = session_db.serve(
                "clip",
                (trace, config),
                cluster=ClusterConfig(transport="http", base_url=handle.base_url),
            )
        finally:
            handle.stop()
        assert _summary_key(wire) == _summary_key(sim)


class TestDispatchErrors:
    def test_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ClusterConfig(transport="carrier-pigeon")

    def test_unknown_transport_via_legacy_kwarg(self, session_db):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="transport"):
                session_db.serve(
                    "clip",
                    (_trace(session_db), _config()),
                    transport="carrier-pigeon",
                )

    def test_positional_config_rejected(self, session_db):
        # serve() takes only (name, sessions) positionally now; the old
        # third positional config slot is gone from the signature.
        with pytest.raises(TypeError, match="positional"):
            session_db.serve("clip", (_trace(session_db), _config()), _config())

    def test_http_requires_base_url(self):
        with pytest.raises(ValueError, match="base_url"):
            ClusterConfig(transport="http")

    def test_base_url_requires_http(self):
        with pytest.raises(ValueError, match="base_url"):
            ClusterConfig(transport="sim", base_url="http://127.0.0.1:1")

    def test_http_rejects_simulated_link(self, session_db):
        with pytest.raises(ValueError, match="link"):
            session_db.serve(
                "clip",
                (_trace(session_db), _config()),
                cluster=ClusterConfig(
                    transport="http", base_url="http://127.0.0.1:1"
                ),
                link=SimulatedLink(ConstantBandwidth(100_000)),
            )

    def test_start_offsets_require_a_link(self, session_db):
        with pytest.raises(ValueError, match="start_offsets"):
            session_db.serve(
                "clip", (_trace(session_db), _config()), start_offsets=[0.0]
            )

    def test_malformed_session_pair(self, session_db):
        with pytest.raises(TypeError, match="pairs"):
            session_db.serve("clip", [_trace(session_db)])
